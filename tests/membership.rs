//! End-to-end membership scenarios on the deterministic simulator:
//! formation, single-failure removal, false alarms, multiple failures,
//! rejoin and partitions — each checked against the protocol invariants.

use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::invariants;
use timewheel::CreatorState;
use tw_proto::{Duration, ProcessId};
use tw_sim::{ProcessStatus, SimTime};

/// Form the initial group of `n` and return (world, formation time).
fn formed_world(params: &TeamParams) -> (tw_sim::World<timewheel::harness::SimMember>, SimTime) {
    let mut w = team_world(params);
    let t = run_until_pred(&mut w, SimTime::from_secs(60), |w| {
        all_in_group(w, params.n)
    })
    .expect("initial group never formed");
    (w, t)
}

#[test]
fn initial_group_forms_for_many_team_sizes() {
    for n in [2, 3, 4, 5, 7, 9] {
        let params = TeamParams::new(n);
        let (w, t) = formed_world(&params);
        let cfg = params.protocol_config();
        assert!(
            t.as_micros() <= cfg.cycle().as_micros() * 6,
            "n={n}: formation took {t}"
        );
        invariants::assert_all(&w);
    }
}

#[test]
fn crashed_member_is_removed_within_bounded_time() {
    let params = TeamParams::new(5);
    let cfg = params.protocol_config();
    let (mut w, _) = formed_world(&params);
    let crash_at = w.now() + Duration::from_secs(1);
    w.crash_at(crash_at, ProcessId(2));
    let removed = run_until_pred(&mut w, crash_at + Duration::from_secs(20), |w| {
        (0..5u16).filter(|&i| i != 2).all(|i| {
            let m = &w.actor(ProcessId(i)).member;
            m.state() == CreatorState::FailureFree
                && m.view().len() == 4
                && !m.view().contains(ProcessId(2))
        })
    })
    .expect("crashed member never removed");
    // Single-failure recovery: detection (≤ 2D + tick) plus one ND ring
    // round (≤ (N−1)·(D+δ)) plus settle. Generously: 2 cycles.
    let elapsed = removed - crash_at;
    assert!(
        elapsed.as_micros() <= cfg.cycle().as_micros() * 2,
        "removal took {elapsed} (cycle = {})",
        cfg.cycle()
    );
    invariants::assert_all(&w);
}

#[test]
fn losing_one_decision_message_does_not_change_membership() {
    use tw_proto::Msg;
    use tw_sim::{Fault, MsgMatcher};
    let params = TeamParams::new(5);
    let (mut w, _) = formed_world(&params);
    // Drop the next decision from whoever sends it, for every receiver:
    // the group must recover via the single-failure election or the
    // wrong-suspicion path, with no membership change.
    let views_before: Vec<u64> = (0..5u16)
        .map(|i| w.actor(ProcessId(i)).member.view().id.seq)
        .collect();
    let t = w.now() + Duration::from_millis(50);
    w.add_fault_at(
        t,
        Fault::drop_next(
            MsgMatcher::any().matching(|m: &Msg| matches!(m, Msg::Decision(_))),
            4, // all four copies of one broadcast decision
        ),
    );
    w.run_for(Duration::from_secs(15));
    for i in 0..5u16 {
        let m = &w.actor(ProcessId(i)).member;
        assert_eq!(m.state(), CreatorState::FailureFree, "p{i} stuck");
        assert_eq!(m.view().len(), 5, "p{i} lost a member on a lost message");
        assert_eq!(
            m.view().id.seq,
            views_before[i as usize],
            "membership changed on a single lost decision"
        );
    }
    invariants::assert_all(&w);
}

#[test]
fn partial_decision_loss_triggers_wrong_suspicion_rescue() {
    use tw_proto::Msg;
    use tw_sim::{Fault, MsgMatcher};
    let params = TeamParams::new(5);
    let (mut w, _) = formed_world(&params);
    // Drop the next TWO decision datagrams to specific receivers only
    // (p3 and p4 miss it; others have it): classic false-alarm setup.
    let t = w.now() + Duration::from_millis(50);
    for target in [3u16, 4] {
        w.add_fault_at(
            t,
            Fault::drop_next(
                MsgMatcher::any()
                    .to(ProcessId(target))
                    .matching(|m: &Msg| matches!(m, Msg::Decision(_))),
                1,
            ),
        );
    }
    w.run_for(Duration::from_secs(15));
    for i in 0..5u16 {
        let m = &w.actor(ProcessId(i)).member;
        assert_eq!(m.state(), CreatorState::FailureFree, "p{i} stuck");
        assert_eq!(m.view().len(), 5, "false alarm must not remove members");
    }
    invariants::assert_all(&w);
}

#[test]
fn two_simultaneous_crashes_resolved_by_reconfiguration() {
    let params = TeamParams::new(5);
    let (mut w, _) = formed_world(&params);
    let crash_at = w.now() + Duration::from_secs(1);
    w.crash_at(crash_at, ProcessId(1));
    w.crash_at(crash_at, ProcessId(3));
    let formed = run_until_pred(&mut w, crash_at + Duration::from_secs(60), |w| {
        [0u16, 2, 4].iter().all(|&i| {
            let m = &w.actor(ProcessId(i)).member;
            m.state() == CreatorState::FailureFree && m.view().len() == 3
        })
    })
    .expect("survivors never reformed");
    let cfg = params.protocol_config();
    // Reconfiguration: detection + ~2 cycles of slots.
    assert!(
        (formed - crash_at).as_micros() <= cfg.cycle().as_micros() * 5,
        "multi-failure recovery took {}",
        formed - crash_at
    );
    for &i in &[0u16, 2, 4] {
        let v = w.actor(ProcessId(i)).member.view().clone();
        assert!(!v.contains(ProcessId(1)));
        assert!(!v.contains(ProcessId(3)));
    }
    invariants::assert_all(&w);
}

#[test]
fn crashed_member_rejoins_after_recovery() {
    let params = TeamParams::new(5);
    let (mut w, _) = formed_world(&params);
    let crash_at = w.now() + Duration::from_secs(1);
    w.crash_at(crash_at, ProcessId(2));
    // Let the removal happen, then recover.
    let recover_at = crash_at + Duration::from_secs(5);
    w.recover_at(recover_at, ProcessId(2));
    // Advance past the recovery before waiting on the rejoin predicate
    // (it would otherwise hold trivially before the crash executes).
    w.run_until(recover_at + Duration::from_millis(1));
    let rejoined = run_until_pred(&mut w, recover_at + Duration::from_secs(60), |w| {
        all_in_group(w, 5)
    })
    .expect("recovered member never rejoined");
    let m2 = &w.actor(ProcessId(2)).member;
    assert_eq!(m2.incarnation(), tw_proto::Incarnation(1));
    assert!(m2.view().contains(ProcessId(2)));
    let cfg = params.protocol_config();
    assert!(
        (rejoined - recover_at).as_micros() <= cfg.cycle().as_micros() * 8,
        "re-integration took {}",
        rejoined - recover_at
    );
    invariants::assert_all(&w);
}

#[test]
fn minority_partition_knows_it_is_out_of_date() {
    let params = TeamParams::new(5);
    let (mut w, _) = formed_world(&params);
    let cut = w.now() + Duration::from_secs(1);
    // {0,1,2} majority / {3,4} minority.
    w.partition_at(cut, &[&[0, 1, 2], &[3, 4]]);
    // Majority side reforms; minority must *know* it has no up-to-date
    // group (fail-awareness).
    run_until_pred(&mut w, cut + Duration::from_secs(60), |w| {
        [0u16, 1, 2].iter().all(|&i| {
            let m = &w.actor(ProcessId(i)).member;
            m.state() == CreatorState::FailureFree && m.view().len() == 3
        })
    })
    .expect("majority never reformed");
    // Give the minority time to notice.
    w.run_for(Duration::from_secs(5));
    for &i in &[3u16, 4] {
        let hw = w.hw_time(ProcessId(i));
        let m = &w.actor(ProcessId(i)).member;
        assert!(
            !m.is_up_to_date(hw),
            "p{i} in a minority partition claims an up-to-date group"
        );
    }
    invariants::assert_all(&w);
}

#[test]
fn healed_partition_reunites_the_team() {
    let params = TeamParams::new(5);
    let (mut w, _) = formed_world(&params);
    let cut = w.now() + Duration::from_secs(1);
    w.partition_at(cut, &[&[0, 1, 2], &[3, 4]]);
    run_until_pred(&mut w, cut + Duration::from_secs(60), |w| {
        [0u16, 1, 2].iter().all(|&i| {
            let m = &w.actor(ProcessId(i)).member;
            m.state() == CreatorState::FailureFree && m.view().len() == 3
        })
    })
    .expect("majority never reformed");
    let heal = w.now() + Duration::from_secs(2);
    w.heal_at(heal);
    let reunited = run_until_pred(&mut w, heal + Duration::from_secs(120), |w| {
        all_in_group(w, 5)
    });
    assert!(reunited.is_some(), "team never reunited after heal");
    invariants::assert_all(&w);
}

#[test]
fn majority_never_lost_across_all_views() {
    // A longer chaotic run: one crash, one recovery, then steady state.
    let params = TeamParams::new(7).seed(3);
    let (mut w, _) = formed_world(&params);
    w.crash_at(w.now() + Duration::from_secs(1), ProcessId(5));
    w.recover_at(w.now() + Duration::from_secs(6), ProcessId(5));
    w.run_for(Duration::from_secs(30));
    invariants::assert_all(&w);
    // The group should be whole again.
    assert!(all_in_group(&w, 7), "team did not fully reassemble");
}

#[test]
fn every_process_up_to_date_while_stable() {
    let params = TeamParams::new(5);
    let (mut w, _) = formed_world(&params);
    w.run_for(Duration::from_secs(5));
    for i in 0..5u16 {
        let p = ProcessId(i);
        assert_eq!(w.status(p), ProcessStatus::Up);
        let hw = w.hw_time(p);
        assert!(
            w.actor(p).member.is_up_to_date(hw),
            "p{i} not up-to-date during stable period"
        );
    }
}
