//! Atomic-broadcast semantics, end to end: the 3×3 semantics matrix in
//! failure-free runs, under message loss, and across membership changes
//! (§4.3 undeliverable handling).

use bytes::Bytes;
use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::invariants;
use tw_proto::{Atomicity, Duration, Ordering, ProcessId, Semantics};
use tw_sim::{LinkModel, SimTime};

type TeamWorld = tw_sim::World<timewheel::harness::SimMember>;

fn formed(params: &TeamParams) -> TeamWorld {
    let mut w = team_world(params);
    run_until_pred(&mut w, SimTime::from_secs(60), |w| {
        all_in_group(w, params.n)
    })
    .expect("group formation");
    w
}

/// Schedule `count` proposals from rotating senders, `gap` apart,
/// starting `after` from now.
fn inject_proposals(
    w: &mut TeamWorld,
    n: usize,
    count: usize,
    sem: Semantics,
    after: Duration,
    gap: Duration,
) {
    for k in 0..count {
        let sender = ProcessId((k % n) as u16);
        let t = w.now() + after + gap * k as i64;
        let payload = Bytes::from(format!("u{k}"));
        w.call_at(t, sender, move |a, ctx| {
            if let Ok(actions) = a.member.propose(ctx.now_hw(), payload, sem) {
                for act in actions {
                    match act {
                        timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                        timewheel::Action::Send(to, m) => ctx.send(to, m),
                        timewheel::Action::Deliver(d) => {
                            a.deliveries.push((ctx.now_hw(), d));
                        }
                        _ => {}
                    }
                }
            }
        });
    }
}

fn delivered_count(w: &TeamWorld, pid: u16) -> usize {
    w.actor(ProcessId(pid)).deliveries.len()
}

#[test]
fn all_nine_semantics_deliver_everywhere_failure_free() {
    for sem in Semantics::matrix() {
        let params = TeamParams::new(3).seed(11);
        let mut w = formed(&params);
        inject_proposals(
            &mut w,
            3,
            6,
            sem,
            Duration::from_millis(100),
            Duration::from_millis(40),
        );
        w.run_for(Duration::from_secs(10));
        for i in 0..3u16 {
            assert_eq!(
                delivered_count(&w, i),
                6,
                "{sem}: p{i} delivered {} of 6",
                delivered_count(&w, i)
            );
        }
        invariants::assert_all(&w);
    }
}

#[test]
fn mixed_semantics_in_one_run() {
    let params = TeamParams::new(5).seed(5);
    let mut w = formed(&params);
    let semantics: Vec<Semantics> = Semantics::matrix().collect();
    for (k, sem) in semantics.iter().enumerate() {
        let sender = ProcessId((k % 5) as u16);
        let t = w.now() + Duration::from_millis(100 + 30 * k as i64);
        let payload = Bytes::from(format!("m{k}"));
        let sem = *sem;
        w.call_at(t, sender, move |a, ctx| {
            if let Ok(actions) = a.member.propose(ctx.now_hw(), payload, sem) {
                for act in actions {
                    match act {
                        timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                        timewheel::Action::Send(to, m) => ctx.send(to, m),
                        timewheel::Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                        _ => {}
                    }
                }
            }
        });
    }
    w.run_for(Duration::from_secs(10));
    for i in 0..5u16 {
        assert_eq!(delivered_count(&w, i), 9, "p{i}");
    }
    invariants::assert_all(&w);
}

#[test]
fn lost_proposals_are_repaired_by_retransmission() {
    use tw_proto::Msg;
    use tw_sim::{Fault, MsgMatcher};
    let params = TeamParams::new(3).seed(17);
    let mut w = formed(&params);
    // Drop the first 12 proposal datagrams outright (a burst of omission
    // failures hitting only the data path — decisions keep flowing, so
    // membership must not change and the NACK/retransmission machinery
    // must repair every hole).
    let views_before: Vec<u64> = (0..3u16)
        .map(|i| w.actor(ProcessId(i)).member.view().id.seq)
        .collect();
    w.add_fault_at(
        w.now(),
        Fault::drop_next(
            MsgMatcher::any().matching(|m: &Msg| matches!(m, Msg::Proposal(_))),
            12,
        ),
    );
    inject_proposals(
        &mut w,
        3,
        30,
        Semantics::TOTAL_STRONG,
        Duration::from_millis(100),
        Duration::from_millis(25),
    );
    w.run_for(Duration::from_secs(30));
    for i in 0..3u16 {
        assert_eq!(
            delivered_count(&w, i),
            30,
            "p{i} delivered {} of 30 despite retransmission",
            delivered_count(&w, i)
        );
        assert_eq!(
            w.actor(ProcessId(i)).member.view().id.seq,
            views_before[i as usize],
            "data-path loss must not change membership"
        );
    }
    assert!(w.stats().kind("nack").sends > 0, "repair never triggered");
    invariants::assert_all(&w);
}

#[test]
fn uniform_loss_preserves_safety_even_with_churn() {
    // 5% loss on EVERY datagram, including decisions and election
    // messages: live members may be excluded and rejoin (the paper's
    // "limited divergence"), but every safety invariant must hold.
    let params = TeamParams::new(3)
        .seed(17)
        .link(LinkModel::default().with_drop_prob(0.05));
    let mut w = formed(&params);
    inject_proposals(
        &mut w,
        3,
        30,
        Semantics::TOTAL_STRONG,
        Duration::from_millis(100),
        Duration::from_millis(25),
    );
    w.run_for(Duration::from_secs(30));
    invariants::assert_all(&w);
    // The members that never left the group have everything.
    let max = (0..3u16).map(|i| delivered_count(&w, i)).max().unwrap();
    assert!(max >= 25, "even the best member delivered only {max}");
}

#[test]
fn time_ordered_updates_deliver_in_timestamp_order_across_senders() {
    let params = TeamParams::new(5).seed(23);
    let mut w = formed(&params);
    let sem = Semantics::new(Ordering::Time, Atomicity::Weak);
    inject_proposals(
        &mut w,
        5,
        20,
        sem,
        Duration::from_millis(100),
        Duration::from_millis(15),
    );
    w.run_for(Duration::from_secs(15));
    for i in 0..5u16 {
        let ds = &w.actor(ProcessId(i)).deliveries;
        assert_eq!(ds.len(), 20, "p{i}");
        let mut prev = None;
        for (_, d) in ds {
            if let Some(p) = prev {
                assert!(d.send_ts >= p, "p{i} delivered out of timestamp order");
            }
            prev = Some(d.send_ts);
        }
    }
    invariants::assert_all(&w);
}

#[test]
fn strict_atomicity_waits_for_stability_but_terminates() {
    let params = TeamParams::new(5).seed(29);
    let mut w = formed(&params);
    let sem = Semantics::new(Ordering::Unordered, Atomicity::Strict);
    inject_proposals(
        &mut w,
        5,
        10,
        sem,
        Duration::from_millis(100),
        Duration::from_millis(50),
    );
    // Strict updates need a full ack rotation (≈ one cycle per stability
    // round); give it time.
    w.run_for(Duration::from_secs(20));
    for i in 0..5u16 {
        assert_eq!(delivered_count(&w, i), 10, "p{i}");
    }
    invariants::assert_all(&w);
}

#[test]
fn proposals_in_flight_survive_a_decider_crash() {
    let params = TeamParams::new(5).seed(31);
    let mut w = formed(&params);
    // Fire a burst of total/strong proposals from p0 and p4, then crash
    // p2 in the middle of the burst.
    inject_proposals(
        &mut w,
        5,
        20,
        Semantics::TOTAL_STRONG,
        Duration::from_millis(50),
        Duration::from_millis(20),
    );
    let crash_at = w.now() + Duration::from_millis(250);
    w.crash_at(crash_at, ProcessId(2));
    w.run_for(Duration::from_secs(30));
    // Survivors agree on everything they delivered (invariants), and all
    // survivor-proposed updates are delivered by all survivors.
    let survivors = [0u16, 1, 3, 4];
    for &i in &survivors {
        let ds = &w.actor(ProcessId(i)).deliveries;
        // 16 of the 20 proposals come from survivors (every 5th from p2).
        let from_survivors = ds
            .iter()
            .filter(|(_, d)| d.id.proposer != ProcessId(2))
            .count();
        assert!(
            from_survivors >= 16,
            "p{i} delivered only {from_survivors} survivor updates"
        );
    }
    invariants::assert_all(&w);
}

#[test]
fn rejoined_member_receives_state_transfer() {
    let params = TeamParams::new(5).seed(37);
    let mut w = formed(&params);
    // Give the group an application snapshot to ship.
    for i in 0..5u16 {
        w.actor_mut(ProcessId(i))
            .member
            .set_app_snapshot(Bytes::from_static(b"snapshot-v1"));
    }
    let crash_at = w.now() + Duration::from_millis(500);
    w.crash_at(crash_at, ProcessId(2));
    let recover_at = crash_at + Duration::from_secs(4);
    w.recover_at(recover_at, ProcessId(2));
    w.run_until(recover_at + Duration::from_millis(1));
    run_until_pred(&mut w, recover_at + Duration::from_secs(60), |w| {
        all_in_group(w, 5)
    })
    .expect("rejoin");
    // The transfer datagram may still be in flight when the predicate
    // first holds.
    w.run_for(Duration::from_millis(200));
    let st = w
        .actor_mut(ProcessId(2))
        .member
        .take_transferred_state()
        .expect("no state transfer received");
    assert_eq!(st, Bytes::from_static(b"snapshot-v1"));
    invariants::assert_all(&w);
}

#[test]
fn post_rejoin_proposals_flow_to_everyone() {
    let params = TeamParams::new(5).seed(41);
    let mut w = formed(&params);
    let crash_at = w.now() + Duration::from_millis(500);
    w.crash_at(crash_at, ProcessId(2));
    let recover_at = crash_at + Duration::from_secs(4);
    w.recover_at(recover_at, ProcessId(2));
    w.run_until(recover_at + Duration::from_millis(1));
    run_until_pred(&mut w, recover_at + Duration::from_secs(60), |w| {
        all_in_group(w, 5)
    })
    .expect("rejoin");
    // Now the recovered member proposes; everyone must deliver.
    let before: Vec<usize> = (0..5u16).map(|i| delivered_count(&w, i)).collect();
    inject_proposals(
        &mut w,
        1, // only p... sender index below
        0,
        Semantics::UNORDERED_WEAK,
        Duration::ZERO,
        Duration::ZERO,
    );
    let t = w.now() + Duration::from_millis(100);
    w.call_at(t, ProcessId(2), |a, ctx| {
        if let Ok(actions) = a.member.propose(
            ctx.now_hw(),
            Bytes::from_static(b"back"),
            Semantics::TOTAL_STRONG,
        ) {
            for act in actions {
                match act {
                    timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                    timewheel::Action::Send(to, m) => ctx.send(to, m),
                    timewheel::Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                    _ => {}
                }
            }
        }
    });
    w.run_for(Duration::from_secs(10));
    for i in 0..5u16 {
        assert_eq!(
            delivered_count(&w, i),
            before[i as usize] + 1,
            "p{i} missed the rejoined member's proposal"
        );
    }
    invariants::assert_all(&w);
}
