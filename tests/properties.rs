//! Randomized whole-protocol property tests: arbitrary fault schedules
//! (crashes, recoveries, partitions, lossy links, client load) must never
//! violate the safety invariants, and deterministic replay must hold.

use bytes::Bytes;
use proptest::prelude::*;
use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::invariants;
use tw_proto::{Duration, ProcessId, Semantics};
use tw_sim::{LinkModel, SimTime};

#[derive(Debug, Clone)]
enum ChaosEvent {
    Crash {
        victim: u16,
        at_ms: i64,
    },
    Recover {
        victim: u16,
        after_ms: i64,
    },
    Partition {
        split: u16,
        at_ms: i64,
        heal_ms: i64,
    },
    Propose {
        sender: u16,
        at_ms: i64,
        sem_idx: usize,
    },
}

fn arb_event(n: u16) -> impl Strategy<Value = ChaosEvent> {
    prop_oneof![
        (0..n, 0i64..8_000).prop_map(|(victim, at_ms)| ChaosEvent::Crash { victim, at_ms }),
        (0..n, 500i64..8_000)
            .prop_map(|(victim, after_ms)| ChaosEvent::Recover { victim, after_ms }),
        (1..n, 0i64..6_000, 500i64..4_000).prop_map(|(split, at_ms, heal_ms)| {
            ChaosEvent::Partition {
                split,
                at_ms,
                heal_ms,
            }
        }),
        (0..n, 0i64..8_000, 0usize..9).prop_map(|(sender, at_ms, sem_idx)| {
            ChaosEvent::Propose {
                sender,
                at_ms,
                sem_idx,
            }
        }),
    ]
}

fn run_chaos(
    n: usize,
    seed: u64,
    drop_pct: f64,
    events: &[ChaosEvent],
) -> Vec<invariants::Violation> {
    let params = TeamParams::new(n)
        .seed(seed)
        .link(LinkModel::default().with_drop_prob(drop_pct));
    let mut w = team_world(&params);
    run_until_pred(&mut w, SimTime::from_secs(120), |w| all_in_group(w, n));
    let base = w.now();
    let sems: Vec<Semantics> = Semantics::matrix().collect();
    let mut crashed: std::collections::BTreeSet<u16> = Default::default();
    for ev in events {
        match ev {
            ChaosEvent::Crash { victim, at_ms } => {
                // Keep a majority alive (the paper's failure assumption:
                // a majority of the last group survives).
                if crashed.len() + 1 < n.div_ceil(2) && crashed.insert(*victim) {
                    w.crash_at(base + Duration::from_millis(*at_ms), ProcessId(*victim));
                }
            }
            ChaosEvent::Recover { victim, after_ms } => {
                if crashed.remove(victim) {
                    w.recover_at(
                        base + Duration::from_millis(8_000 + *after_ms),
                        ProcessId(*victim),
                    );
                }
            }
            ChaosEvent::Partition {
                split,
                at_ms,
                heal_ms,
            } => {
                let a: Vec<u16> = (0..*split).collect();
                let b: Vec<u16> = (*split..n as u16).collect();
                let t = base + Duration::from_millis(*at_ms);
                w.partition_at(t, &[&a, &b]);
                w.heal_at(t + Duration::from_millis(*heal_ms));
            }
            ChaosEvent::Propose {
                sender,
                at_ms,
                sem_idx,
            } => {
                let sem = sems[*sem_idx % sems.len()];
                let t = base + Duration::from_millis(*at_ms);
                let payload = Bytes::from(format!("c{at_ms}"));
                w.call_at(t, ProcessId(*sender), move |a, ctx| {
                    if let Ok(actions) = a.member.propose(ctx.now_hw(), payload, sem) {
                        for act in actions {
                            match act {
                                timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                                timewheel::Action::Send(to, m) => ctx.send(to, m),
                                timewheel::Action::Deliver(d) => {
                                    a.deliveries.push((ctx.now_hw(), d))
                                }
                                _ => {}
                            }
                        }
                    }
                });
            }
        }
    }
    w.run_until(base + Duration::from_secs(30));
    invariants::check_all(&w)
}

proptest! {
    // Each case simulates ~45 s of protocol time; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chaos_preserves_safety_n5(
        seed in 0u64..10_000,
        events in proptest::collection::vec(arb_event(5), 0..12),
    ) {
        let v = run_chaos(5, seed, 0.0, &events);
        prop_assert!(v.is_empty(), "violations: {v:#?}");
    }

    #[test]
    fn chaos_preserves_safety_lossy_n4(
        seed in 0u64..10_000,
        events in proptest::collection::vec(arb_event(4), 0..10),
    ) {
        let v = run_chaos(4, seed, 0.02, &events);
        prop_assert!(v.is_empty(), "violations: {v:#?}");
    }
}

#[test]
fn simulation_replay_is_bit_identical() {
    // Same seed, same script ⇒ identical observable history.
    let run = |seed: u64| {
        let params = TeamParams::new(5).seed(seed);
        let mut w = team_world(&params);
        run_until_pred(&mut w, SimTime::from_secs(60), |w| all_in_group(w, 5)).unwrap();
        w.crash_at(w.now() + Duration::from_secs(1), ProcessId(3));
        w.recover_at(w.now() + Duration::from_secs(5), ProcessId(3));
        w.run_for(Duration::from_secs(20));
        let views: Vec<_> = (0..5u16)
            .flat_map(|i| {
                w.actor(ProcessId(i))
                    .views
                    .iter()
                    .map(|(t, v)| (i, *t, v.id))
                    .collect::<Vec<_>>()
            })
            .collect();
        (w.stats().total_sends(), views)
    };
    assert_eq!(run(99), run(99));
}
