//! Soak test: a long, adversarial run mixing every fault class and all
//! nine semantics, ending in a stability window — the team must converge
//! back to the full group with every invariant intact.

use bytes::Bytes;
use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::invariants;
use tw_proto::{Duration, Msg, ProcessId, Semantics};
use tw_sim::{Fault, LinkModel, MsgMatcher, SimTime};

#[test]
fn two_minute_adversarial_soak_converges_clean() {
    let n = 5;
    let params = TeamParams::new(n)
        .seed(123_457)
        .link(LinkModel::default().with_drop_prob(0.01));
    let mut w = team_world(&params);
    run_until_pred(&mut w, SimTime::from_secs(60), |w| all_in_group(w, n)).expect("formation");
    let base = w.now();

    // Continuous mixed-semantics client load for the whole run.
    let sems: Vec<Semantics> = Semantics::matrix().collect();
    for k in 0..600usize {
        let sem = sems[k % sems.len()];
        let sender = ProcessId((k % n) as u16);
        let t = base + Duration::from_millis(100 + 150 * k as i64);
        let payload = Bytes::from(format!("s{k}"));
        w.call_at(t, sender, move |a, ctx| {
            if let Ok(actions) = a.member.propose(ctx.now_hw(), payload, sem) {
                for act in actions {
                    match act {
                        timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                        timewheel::Action::Send(to, m) => ctx.send(to, m),
                        timewheel::Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                        _ => {}
                    }
                }
            }
        });
    }

    // A rolling fault schedule: crashes, recoveries, partitions,
    // targeted decision drops — something every ~8 s.
    let s = |secs: i64| base + Duration::from_secs(secs);
    w.crash_at(s(5), ProcessId(1));
    w.recover_at(s(12), ProcessId(1));
    w.partition_at(s(20), &[&[0, 1, 2], &[3, 4]]);
    w.heal_at(s(28), );
    w.crash_at(s(38), ProcessId(0));
    w.crash_at(s(38), ProcessId(2));
    w.recover_at(s(46), ProcessId(0));
    w.recover_at(s(48), ProcessId(2));
    w.add_fault_at(
        s(56),
        Fault::drop_next(
            MsgMatcher::any().matching(|m: &Msg| matches!(m, Msg::Decision(_))),
            8,
        ),
    );
    w.crash_at(s(64), ProcessId(4));
    w.recover_at(s(70), ProcessId(4));
    w.partition_at(s(76), &[&[0, 1], &[2, 3, 4]]);
    w.heal_at(s(84));

    // Run through the chaos plus a long stability tail.
    w.run_until(s(120));
    let converged = run_until_pred(&mut w, s(240), |w| all_in_group(w, n));
    assert!(converged.is_some(), "team never reconverged after the soak");
    if std::env::var("TW_DEBUG").is_ok() {
        for i in 0..n as u16 {
            let a = w.actor(ProcessId(i));
            for ((t, d), vid) in a.deliveries.iter().zip(&a.delivery_views) {
                let id = format!("{}", d.id);
                if id == "p2:16" || id == "p4:12" {
                    eprintln!("DBG p{i} delivered {id} ord={:?} hw={} view={vid}", d.ordinal, t.0);
                }
            }
        }
    }
    invariants::assert_all(&w);

    // Liveness floor. Members that were excluded receive the missed
    // prefix as application snapshots, not deliveries — so the floor for
    // them is lower; p3 never crashed and sat in every majority, so it
    // must have delivered nearly everything that was actually proposed
    // (proposals scheduled while their sender was down are skipped).
    for i in 0..n as u16 {
        let got = w.actor(ProcessId(i)).deliveries.len();
        assert!(got >= 80, "p{i} delivered only {got} of 600 offered");
    }
    let p3_got = w.actor(ProcessId(3)).deliveries.len();
    assert!(
        p3_got >= 450,
        "the always-up member delivered only {p3_got} of 600 offered"
    );

    // And the protocol is (almost) quiet again. With the permanent 1%
    // background loss, sporadic lost decisions still trigger the
    // occasional no-decision repair — but the membership must not churn:
    // no view changes, and only a handful of repair messages.
    w.run_for(Duration::from_secs(15));
    let views_before: Vec<usize> = (0..n as u16)
        .map(|i| w.actor(ProcessId(i)).views.len())
        .collect();
    w.reset_stats();
    w.run_for(Duration::from_secs(10));
    let repair = w.stats().sends_of(&["no-decision", "join", "reconfig"]);
    assert!(
        repair < 12,
        "excessive membership traffic ({repair}) in the final stable window"
    );
    for i in 0..n as u16 {
        assert_eq!(
            w.actor(ProcessId(i)).views.len(),
            views_before[i as usize],
            "membership churned during the final stable window"
        );
    }
}
