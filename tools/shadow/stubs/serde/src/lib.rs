//! Offline stub of `serde`: re-exports no-op derives. The workspace's
//! protocol crates only *derive* Serialize/Deserialize; nothing in them
//! calls serde at runtime, so empty expansions typecheck fine.

pub use serde_derive::{Deserialize, Serialize};

/// Stub trait so `T: Serialize` bounds (if any appear) stay writable.
pub trait Serialize {}

/// Stub trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
