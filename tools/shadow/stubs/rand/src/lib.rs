//! Offline stub of the tiny `rand` 0.8 surface this workspace uses.
//!
//! Exists so `tools/shadow/check.sh` can typecheck and unit-test the
//! protocol crates in a container with no crates.io access. The real
//! build uses the real `rand`; this stub only mirrors the API shape
//! (deterministic splitmix64 behind `StdRng`), not its exact streams.

/// Core randomness source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values drawable from a [`RngCore`] (stand-in for `Standard: Distribution<T>`).
pub trait Rand {
    /// Draw one value.
    fn rand<R: RngCore + ?Sized>(r: &mut R) -> Self;
}

impl Rand for f64 {
    fn rand<R: RngCore + ?Sized>(r: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (r.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rand for u64 {
    fn rand<R: RngCore + ?Sized>(r: &mut R) -> Self {
        r.next_u64()
    }
}

impl Rand for u32 {
    fn rand<R: RngCore + ?Sized>(r: &mut R) -> Self {
        (r.next_u64() >> 32) as u32
    }
}

impl Rand for bool {
    fn rand<R: RngCore + ?Sized>(r: &mut R) -> Self {
        r.next_u64() & 1 == 1
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Draw a value of an inferred type.
    fn gen<T: Rand>(&mut self) -> T
    where
        Self: Sized,
    {
        T::rand(self)
    }

    /// Uniform draw from a half-open range (integers only, stub-grade).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        range.start + self.next_u64() % span.max(1)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stub of `rand::rngs::StdRng`: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
