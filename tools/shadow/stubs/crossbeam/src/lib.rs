//! Offline stub of the `crossbeam` API surface this workspace uses:
//! `channel::{unbounded, Sender, Receiver}`, the channel error types, and
//! a polling `select!` limited to the two-receivers-plus-default shape the
//! runtime's event loop relies on. Semantics match crossbeam where the
//! workspace can observe them (MPMC, disconnect on last sender/receiver
//! drop); performance does not need to.

/// Channel types mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        q: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `None` for unbounded channels, `Some(cap)` for bounded ones.
        cap: Option<usize>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The channel is disconnected (all receivers dropped).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Outcome of a non-blocking send attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// Outcome of a bounded-wait receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with nothing queued.
        Timeout,
        /// Empty and all senders dropped.
        Disconnected,
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                q: VecDeque::new(),
                senders: 1,
                receivers: 1,
                cap,
            }),
            cv: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded channel that holds at most `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    impl<T> Sender<T> {
        /// Queue a value; fails if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.q.push_back(value);
            drop(st);
            self.0.cv.notify_one();
            Ok(())
        }

        /// Queue a value without blocking; fails when the channel is at
        /// capacity or every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = st.cap {
                if st.q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.q.push_back(value);
            drop(st);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.q.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            match st.q.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Drain whatever is queued right now without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Values queued right now (like crossbeam's `Receiver::len`).
        pub fn len(&self) -> usize {
            self.0.lock().q.len()
        }

        /// True when nothing is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.q.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    pub use crate::select;
}

/// Stand-in for `crossbeam::channel::select!`, restricted to the one
/// shape this workspace uses: two `recv` arms plus a `default` timeout.
/// The arm bodies see the same `Result<T, RecvError>` binding the real
/// macro provides.
///
/// Two properties mirror the real macro and were violated by earlier
/// stub versions — both cost days of "single-vCPU livelock" mystery:
///
/// 1. **Arm bodies run *outside* the macro's internal wait loop.** The
///    wait loop only picks a ready arm; the body executes afterwards in
///    the caller's own context, so a `break`/`continue` inside an arm
///    targets the *caller's* loop (how the event loop shuts down), not
///    an invisible loop inside the macro.
/// 2. **Waiting blocks instead of sleeping.** The first arm is treated
///    as the hot channel: when both are empty the macro parks in its
///    `recv_timeout` (condvar wait, so a send wakes it immediately) in
///    slices of at most 500µs, re-checking the second arm and the
///    deadline between slices. The old flat 200µs `thread::sleep`
///    stretched every message hop to milliseconds under one vCPU and
///    starved real clusters into never forming a group.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $p1:pat => $b1:expr,
        recv($r2:expr) -> $p2:pat => $b2:expr,
        default($d:expr) => $bd:expr $(,)?
    ) => {{
        let mut __tw_sel_r1 = ::std::option::Option::None;
        let mut __tw_sel_r2 = ::std::option::Option::None;
        let __tw_sel_which: u8 = {
            let deadline = ::std::time::Instant::now() + $d;
            loop {
                match $r2.try_recv() {
                    ::std::result::Result::Ok(v) => {
                        __tw_sel_r2 = ::std::option::Option::Some(
                            ::std::result::Result::Ok(v),
                        );
                        break 2;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        __tw_sel_r2 = ::std::option::Option::Some(
                            ::std::result::Result::Err($crate::channel::RecvError),
                        );
                        break 2;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                let now = ::std::time::Instant::now();
                if now >= deadline {
                    break 0;
                }
                let slice =
                    ::std::cmp::min(deadline - now, ::std::time::Duration::from_micros(500));
                match $r1.recv_timeout(slice) {
                    ::std::result::Result::Ok(v) => {
                        __tw_sel_r1 = ::std::option::Option::Some(
                            ::std::result::Result::Ok(v),
                        );
                        break 1;
                    }
                    ::std::result::Result::Err($crate::channel::RecvTimeoutError::Disconnected) => {
                        __tw_sel_r1 = ::std::option::Option::Some(
                            ::std::result::Result::Err($crate::channel::RecvError),
                        );
                        break 1;
                    }
                    ::std::result::Result::Err($crate::channel::RecvTimeoutError::Timeout) => {}
                }
            }
        };
        match __tw_sel_which {
            1 => {
                let $p1: ::std::result::Result<_, $crate::channel::RecvError> =
                    __tw_sel_r1.take().expect("select: arm 1 chosen without a value");
                $b1
            }
            2 => {
                let $p2: ::std::result::Result<_, $crate::channel::RecvError> =
                    __tw_sel_r2.take().expect("select: arm 2 chosen without a value");
                $b2
            }
            _ => $bd,
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn try_recv_empty_then_disconnected() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_try_send_reports_full_then_disconnected() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn select_macro_drains_and_times_out() {
        let (tx1, rx1) = unbounded::<i32>();
        let (_tx2, rx2) = unbounded::<i32>();
        tx1.send(5).unwrap();
        let mut got = None;
        crate::select! {
            recv(rx1) -> m => got = m.ok(),
            recv(rx2) -> m => got = m.ok(),
            default(Duration::from_millis(5)) => {}
        }
        assert_eq!(got, Some(5));
        let mut timed_out = false;
        crate::select! {
            recv(rx1) -> m => { let _: Result<i32, _> = m; },
            recv(rx2) -> m => { let _: Result<i32, _> = m; },
            default(Duration::from_millis(5)) => timed_out = true,
        }
        assert!(timed_out);
    }
}
