//! Offline stub of the `bytes` 1.x surface this workspace uses:
//! [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits, backed by a
//! plain `Arc<Vec<u8>>` window. Semantics match the real crate for the
//! operations exercised here (little-endian gets/puts, `split_to`,
//! `advance`, `freeze`); performance characteristics do not matter for
//! the shadow check.

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a window into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Borrow a static slice (stub copies it).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy an arbitrary slice.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off the first `n` bytes into a new `Bytes`, advancing self.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// The viewed slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}
impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}
impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}
impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is it empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Append a slice (inherent on the real `BytesMut` too).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The current readable slice.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }
}

/// Write cursor into a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_split() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 5);
        let head = frozen.split_to(1);
        assert_eq!(head.as_slice(), &[7]);
        let mut rest = frozen;
        assert_eq!(rest.get_u32_le(), 0xdead_beef);
        assert_eq!(rest.remaining(), 0);
    }
}
