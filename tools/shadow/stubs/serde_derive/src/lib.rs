//! Offline stub of `serde_derive`: the derives expand to nothing, which
//! is enough to typecheck crates that derive but never *call* serde
//! (serialization is only exercised by the bench/root crates, which the
//! shadow check excludes).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
