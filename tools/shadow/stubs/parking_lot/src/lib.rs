//! Offline stub of the `parking_lot` API surface this workspace uses:
//! `Mutex` with a non-poisoning, `Result`-free `lock()`. Backed by
//! `std::sync::Mutex` with poison errors swallowed, which matches
//! parking_lot's observable behavior for these call sites.

use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;

/// A mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap a value in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
