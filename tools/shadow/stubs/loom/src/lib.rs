//! Offline stand-in for the `loom` model checker (tools/shadow only).
//!
//! The real crate executes each `loom::model` closure once per possible
//! thread interleaving, using its own `thread`/`sync` shims to enumerate
//! schedules. This stub degrades that to a *smoke run*: every shim is
//! the corresponding `std` item and `model` runs its closure exactly
//! once under whatever schedule the OS picks. That keeps the loom test
//! suite compiling and asserting offline; the exhaustive exploration
//! only happens in networked CI with the real crate.

/// Run the model body once (the real crate runs it per interleaving).
pub fn model<F>(f: F)
where
    F: FnOnce(),
{
    f();
}

/// `loom::thread` — plain `std::thread` here.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// `loom::sync` — plain `std::sync` here.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// `loom::sync::atomic` — plain `std::sync::atomic` here.
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}
