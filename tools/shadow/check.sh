#!/usr/bin/env bash
# Offline verification harness for the protocol crates.
#
# The dev container has no crates.io access, so the real workspace (which
# pulls rand/bytes/serde/... from the registry) cannot build there. This
# script copies the protocol, observability, runtime and RSM crates into
# tools/shadow/build/, rewrites their manifests against the
# API-compatible stub crates in tools/shadow/stubs/ (including crossbeam
# channels and parking_lot mutexes for the threaded executors), and runs
# `cargo check` + the crates' unit tests fully offline. CI and any networked checkout still use the real
# dependencies; nothing under tools/shadow participates in the real build.
#
# Usage: tools/shadow/check.sh [extra cargo test args]

set -euo pipefail

repo="$(cd "$(dirname "$0")/../.." && pwd)"
build="$repo/tools/shadow/build"
stubs="../../stubs" # relative to each copied crate

rm -rf "$build"
mkdir -p "$build"

# Keep compiled artifacts across runs (the build tree itself is wiped
# and re-copied each time, so a cached target dir only skips rebuilding
# crates whose sources are unchanged).
export CARGO_TARGET_DIR="$repo/tools/shadow/target-cache"

copy_crate() {
  local name="$1"
  mkdir -p "$build/$name"
  # -p keeps mtimes so the cached CARGO_TARGET_DIR stays valid for
  # crates whose sources did not change between runs.
  cp -rp "$repo/crates/$name/src" "$build/$name/src"
  # Integration tests ride along except the proptest-based ones (proptest
  # cannot be stubbed meaningfully).
  if [ -d "$repo/crates/$name/tests" ]; then
    mkdir -p "$build/$name/tests"
    find "$repo/crates/$name/tests" -maxdepth 1 -name '*.rs' ! -name 'prop_*.rs' \
      -exec cp -p {} "$build/$name/tests/" \;
  fi
}

copy_crate proto
copy_chaos_bin() {
  # The chaos harness binary lives in tw-bench, whose other experiment
  # bins need serde_json/criterion (not stubbed). Shadow-check the
  # binary alone as its own package so it cannot rot offline.
  mkdir -p "$build/chaos/src/bin"
  cp -p "$repo/crates/bench/src/bin/tw-chaos.rs" "$build/chaos/src/bin/tw-chaos.rs"
}
copy_chaos_bin
copy_probe_bins() {
  # Same pattern for the perf probes behind the bench gate: they are
  # deliberately serde_json/rand/criterion-free, so the shadow build
  # both compiles them and (for the pure-CPU codec probe) runs them.
  mkdir -p "$build/probes/src/bin"
  cp -p "$repo/crates/bench/src/bin/exp_proto_codec.rs" "$build/probes/src/bin/exp_proto_codec.rs"
  cp -p "$repo/crates/bench/src/bin/exp_hotpath.rs" "$build/probes/src/bin/exp_hotpath.rs"
  cp -p "$repo/crates/bench/src/bin/exp_obs_live.rs" "$build/probes/src/bin/exp_obs_live.rs"
}
copy_probe_bins
copy_crate obs
copy_crate clock
copy_crate sim
copy_crate core
copy_crate runtime
copy_crate rsm
copy_crate xtask

cat > "$build/xtask/Cargo.toml" <<EOF
[package]
name = "xtask"
version = "0.1.0"
edition = "2021"

[dependencies]

[lib]
path = "src/lib.rs"

[[bin]]
name = "xtask"
path = "src/main.rs"
EOF

cat > "$build/proto/Cargo.toml" <<EOF
[package]
name = "tw-proto"
version = "0.1.0"
edition = "2021"

[dependencies]
bytes = { path = "$stubs/bytes" }
serde = { path = "$stubs/serde", features = ["derive"] }
EOF

cat > "$build/obs/Cargo.toml" <<EOF
[package]
name = "tw-obs"
version = "0.1.0"
edition = "2021"

[dependencies]
tw-proto = { path = "../proto" }
bytes = { path = "$stubs/bytes" }
EOF

cat > "$build/clock/Cargo.toml" <<EOF
[package]
name = "tw-clock"
version = "0.1.0"
edition = "2021"

[dependencies]
tw-proto = { path = "../proto" }
serde = { path = "$stubs/serde", features = ["derive"] }
EOF

cat > "$build/sim/Cargo.toml" <<EOF
[package]
name = "tw-sim"
version = "0.1.0"
edition = "2021"

[dependencies]
tw-proto = { path = "../proto" }
tw-obs = { path = "../obs" }
rand = { path = "$stubs/rand" }
serde = { path = "$stubs/serde", features = ["derive"] }
EOF

cat > "$build/core/Cargo.toml" <<EOF
[package]
name = "timewheel"
version = "0.1.0"
edition = "2021"

[dependencies]
tw-proto = { path = "../proto" }
tw-obs = { path = "../obs" }
tw-clock = { path = "../clock" }
tw-sim = { path = "../sim" }
bytes = { path = "$stubs/bytes" }
serde = { path = "$stubs/serde", features = ["derive"] }
rand = { path = "$stubs/rand" }
EOF

cat > "$build/runtime/Cargo.toml" <<EOF
[package]
name = "tw-runtime"
version = "0.1.0"
edition = "2021"

[dependencies]
timewheel = { path = "../core" }
tw-proto = { path = "../proto" }
tw-obs = { path = "../obs" }
bytes = { path = "$stubs/bytes" }
crossbeam = { path = "$stubs/crossbeam" }
parking_lot = { path = "$stubs/parking_lot" }

[target.'cfg(loom)'.dependencies]
loom = { path = "$stubs/loom" }

[lints.rust]
unexpected_cfgs = { level = "warn", check-cfg = ["cfg(loom)"] }
EOF

cat > "$build/rsm/Cargo.toml" <<EOF
[package]
name = "tw-rsm"
version = "0.1.0"
edition = "2021"

[dependencies]
timewheel = { path = "../core" }
tw-proto = { path = "../proto" }
tw-sim = { path = "../sim" }
tw-runtime = { path = "../runtime" }
bytes = { path = "$stubs/bytes" }
parking_lot = { path = "$stubs/parking_lot" }
crossbeam = { path = "$stubs/crossbeam" }
serde = { path = "$stubs/serde", features = ["derive"] }
EOF

cat > "$build/chaos/Cargo.toml" <<EOF
[package]
name = "tw-chaos-shadow"
version = "0.1.0"
edition = "2021"

[dependencies]
timewheel = { path = "../core" }
tw-proto = { path = "../proto" }
tw-obs = { path = "../obs" }
tw-runtime = { path = "../runtime" }
bytes = { path = "$stubs/bytes" }

[[bin]]
name = "tw-chaos"
path = "src/bin/tw-chaos.rs"
EOF

cat > "$build/probes/Cargo.toml" <<EOF
[package]
name = "tw-probes-shadow"
version = "0.1.0"
edition = "2021"

[dependencies]
timewheel = { path = "../core" }
tw-proto = { path = "../proto" }
tw-obs = { path = "../obs" }
tw-runtime = { path = "../runtime" }
bytes = { path = "$stubs/bytes" }

[[bin]]
name = "exp_proto_codec"
path = "src/bin/exp_proto_codec.rs"

[[bin]]
name = "exp_hotpath"
path = "src/bin/exp_hotpath.rs"

[[bin]]
name = "exp_obs_live"
path = "src/bin/exp_obs_live.rs"
EOF

cat > "$build/Cargo.toml" <<EOF
[workspace]
resolver = "2"
members = ["proto", "obs", "clock", "sim", "core", "runtime", "rsm", "xtask", "chaos", "probes"]
EOF

cd "$build"
# The shadow copy lives outside the repo layout, so point the lint (and
# its workspace-lints-clean test) back at the real sources.
export TW_XTASK_ROOT="$repo"
cargo check --offline --workspace --all-targets

# The real-time cluster suites (cluster.rs, chaos_cluster.rs,
# ops_cluster.rs) spawn actual node threads and wait on wall-clock
# protocol deadlines; they run in release mode below, mirroring CI, so
# keep them out of this debug-mode workspace pass.
rm -f runtime/tests/cluster.rs runtime/tests/chaos_cluster.rs runtime/tests/ops_cluster.rs
cargo test --offline --workspace "$@" -- --skip "cluster::tests::"

# Real-time cluster suites, release mode as on CI. These were
# unrunnable offline while the `select!` stub slept between polls (on
# one vCPU the coarse sleep timer stretched every message hop to
# milliseconds and clusters never formed); the stub now blocks on the
# hot channel, so groups form in milliseconds and the full suites pass
# here.
cp -p "$repo/crates/runtime/tests/cluster.rs" \
      "$repo/crates/runtime/tests/chaos_cluster.rs" \
      "$repo/crates/runtime/tests/ops_cluster.rs" runtime/tests/
cargo test --offline --release -p tw-runtime \
  --test cluster --test chaos_cluster --test ops_cluster

# Concurrency static analysis over the real sources (TW_XTASK_ROOT above):
# the lock-order, blocking-call and unsafe-surface rules must report the
# workspace clean, mirroring CI's concurrency-analysis job.
cargo run --offline -q -p xtask --bin xtask -- lint-concurrency

# Loom model tests. Offline this is a smoke run — the loom stub executes
# each model body once under the OS schedule; networked CI substitutes
# the real crate and explores every interleaving. RUSTFLAGS differ from
# the main build, so a separate target cache keeps both incremental.
CARGO_TARGET_DIR="$repo/tools/shadow/target-cache/loom" \
  RUSTFLAGS="--cfg loom" \
  cargo test --offline -p tw-runtime --test loom

# The tw-trace analyzer CLI must build and run offline (its end-to-end
# behaviour is covered by core's recorder_analyze test above; this
# exercises the binary itself: usage text, and exit 2 on unreadable
# input).
cargo run --offline -q -p tw-obs --bin tw-trace -- --help
if cargo run --offline -q -p tw-obs --bin tw-trace -- /nonexistent.twrec 2>/dev/null; then
  echo "tw-trace: expected exit 2 on unreadable input" >&2
  exit 1
fi

# Perf-gate plumbing must work end to end offline: the pure-CPU codec
# probe runs for real (tiny iteration count), its JSON feeds the gate,
# and the gate's self-test proves it still trips on a doctored-slow
# fixture. The cluster probes (hot path, live-telemetry overhead) run
# real clusters at a smoke-sized update count — their numbers are
# meaningless on one vCPU, so they are tagged shadow-smoke and only
# self-gated; the point is that flood, ops scrape, live tail and JSON
# emission all work end to end.
cargo run --offline -q -p tw-probes-shadow --bin exp_proto_codec -- --iters 256 --out /tmp/shadow-codec.json
cargo run --offline -q --release -p tw-probes-shadow --bin exp_hotpath -- \
  --updates 2000 --machine shadow-smoke --out /tmp/shadow-hotpath.json
cargo run --offline -q --release -p tw-probes-shadow --bin exp_obs_live -- \
  --updates 2000 --machine shadow-smoke --out /tmp/shadow-obs-live.json
cargo run --offline -q -p xtask --bin xtask -- bench-gate --self-test
cargo run --offline -q -p xtask --bin xtask -- bench-gate \
  --baseline /tmp/shadow-codec.json --candidate /tmp/shadow-codec.json
cargo run --offline -q -p xtask --bin xtask -- bench-gate \
  --baseline /tmp/shadow-hotpath.json --candidate /tmp/shadow-hotpath.json
cargo run --offline -q -p xtask --bin xtask -- bench-gate \
  --baseline /tmp/shadow-obs-live.json --candidate /tmp/shadow-obs-live.json
