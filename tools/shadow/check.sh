#!/usr/bin/env bash
# Offline verification harness for the protocol crates.
#
# The dev container has no crates.io access, so the real workspace (which
# pulls rand/bytes/serde/... from the registry) cannot build there. This
# script copies the four pure protocol crates into tools/shadow/build/,
# rewrites their manifests against the API-compatible stub crates in
# tools/shadow/stubs/, and runs `cargo check` + the crates' unit tests
# fully offline. CI and any networked checkout still use the real
# dependencies; nothing under tools/shadow participates in the real build.
#
# Usage: tools/shadow/check.sh [extra cargo test args]

set -euo pipefail

repo="$(cd "$(dirname "$0")/../.." && pwd)"
build="$repo/tools/shadow/build"
stubs="../../stubs" # relative to each copied crate

rm -rf "$build"
mkdir -p "$build"

copy_crate() {
  local name="$1"
  mkdir -p "$build/$name"
  cp -r "$repo/crates/$name/src" "$build/$name/src"
  # Integration tests ride along except the proptest-based ones (proptest
  # cannot be stubbed meaningfully).
  if [ -d "$repo/crates/$name/tests" ]; then
    mkdir -p "$build/$name/tests"
    find "$repo/crates/$name/tests" -maxdepth 1 -name '*.rs' ! -name 'prop_*.rs' \
      -exec cp {} "$build/$name/tests/" \;
  fi
}

copy_crate proto
copy_crate clock
copy_crate sim
copy_crate core
copy_crate xtask

cat > "$build/xtask/Cargo.toml" <<EOF
[package]
name = "xtask"
version = "0.1.0"
edition = "2021"

[dependencies]

[lib]
path = "src/lib.rs"

[[bin]]
name = "xtask"
path = "src/main.rs"
EOF

cat > "$build/proto/Cargo.toml" <<EOF
[package]
name = "tw-proto"
version = "0.1.0"
edition = "2021"

[dependencies]
bytes = { path = "$stubs/bytes" }
serde = { path = "$stubs/serde", features = ["derive"] }
EOF

cat > "$build/clock/Cargo.toml" <<EOF
[package]
name = "tw-clock"
version = "0.1.0"
edition = "2021"

[dependencies]
tw-proto = { path = "../proto" }
serde = { path = "$stubs/serde", features = ["derive"] }
EOF

cat > "$build/sim/Cargo.toml" <<EOF
[package]
name = "tw-sim"
version = "0.1.0"
edition = "2021"

[dependencies]
tw-proto = { path = "../proto" }
rand = { path = "$stubs/rand" }
serde = { path = "$stubs/serde", features = ["derive"] }
EOF

cat > "$build/core/Cargo.toml" <<EOF
[package]
name = "timewheel"
version = "0.1.0"
edition = "2021"

[dependencies]
tw-proto = { path = "../proto" }
tw-clock = { path = "../clock" }
tw-sim = { path = "../sim" }
bytes = { path = "$stubs/bytes" }
serde = { path = "$stubs/serde", features = ["derive"] }
rand = { path = "$stubs/rand" }
EOF

cat > "$build/Cargo.toml" <<EOF
[workspace]
resolver = "2"
members = ["proto", "clock", "sim", "core", "xtask"]
EOF

cd "$build"
# The shadow copy lives outside the repo layout, so point the lint (and
# its workspace-lints-clean test) back at the real sources.
export TW_XTASK_ROOT="$repo"
cargo check --offline --workspace --all-targets
cargo test --offline --workspace "$@"
