//! Facade crate for the timewheel reproduction workspace.
pub use timewheel as core;
pub use tw_clock as clock;
pub use tw_proto as proto;
pub use tw_runtime as runtime;
pub use tw_sim as sim;

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use timewheel::prelude::*;

    pub use tw_sim::prelude::*;
}
