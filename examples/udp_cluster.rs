//! The paper's deployment shape, for real: a team speaking the binary
//! wire protocol over UDP sockets (localhost), hosted on the
//! single-threaded event-loop executor of §5.
//!
//! Run with: `cargo run --example udp_cluster`

use bytes::Bytes;
use std::time::Duration as StdDuration;
use timewheel::Config;
use tw_proto::{Duration, Semantics};
use tw_runtime::{spawn_udp_cluster, ExecutorKind, NodeOutput};

fn main() {
    let n = 4;
    let cfg = Config::for_team(n, Duration::from_millis(10));
    println!("binding {n} UDP nodes on 127.0.0.1 (ephemeral ports)…");
    let nodes = spawn_udp_cluster(ExecutorKind::EventLoop, cfg).expect("bind");

    for node in &nodes {
        let v = node
            .wait_for_view(n, StdDuration::from_secs(20))
            .expect("group formation over UDP");
        println!("{} joined {}", node.pid, v);
    }

    println!("\nbroadcasting 10 updates (total/strong) from rotating senders…");
    for k in 0..10usize {
        nodes[k % n].propose(Bytes::from(format!("op-{k}")), Semantics::TOTAL_STRONG);
        std::thread::sleep(StdDuration::from_millis(15));
    }

    for node in &nodes {
        let ds = node.wait_for_deliveries(10, StdDuration::from_secs(20));
        let order: Vec<String> = ds
            .iter()
            .map(|d| String::from_utf8_lossy(&d.payload).into_owned())
            .collect();
        println!("{} delivered {:?}", node.pid, order);
        assert_eq!(ds.len(), 10);
    }
    println!("\nall nodes delivered all updates in the same total order.");

    // Show the live view stream on shutdown of one node.
    println!("\nshutting down p3 — remaining nodes reform:");
    let mut iter = nodes.into_iter();
    let keep: Vec<_> = (0..3).map(|_| iter.next().unwrap()).collect();
    iter.next().unwrap().shutdown();
    for node in &keep {
        let deadline = std::time::Instant::now() + StdDuration::from_secs(20);
        loop {
            let left = deadline
                .checked_duration_since(std::time::Instant::now())
                .unwrap_or_default();
            match node.outputs.recv_timeout(left) {
                Ok(NodeOutput::View(v)) if v.len() == 3 => {
                    println!("{} installed {}", node.pid, v);
                    break;
                }
                Ok(_) => continue,
                Err(_) => panic!("{} never reformed", node.pid),
            }
        }
    }
    for node in keep {
        node.shutdown();
    }
    println!("done.");
}
