//! A replicated counter — the paper's motivating use case: a dependable
//! service implemented by a team of replicated servers that stay
//! consistent through the group communication service.
//!
//! Three real nodes (event-loop executor, in-process datagrams) each
//! apply totally-ordered, strongly-atomic increments to a local counter;
//! because every replica delivers the same updates in the same order, the
//! counters agree at every prefix.
//!
//! Run with: `cargo run --example replicated_counter`

use bytes::Bytes;
use std::time::Duration as StdDuration;
use timewheel::Config;
use tw_proto::{Duration, Semantics};
use tw_runtime::{spawn_cluster, ExecutorKind};

fn main() {
    let n = 3;
    let cfg = Config::for_team(n, Duration::from_millis(10));
    println!("starting {n} replicas (event-loop executor)…");
    let nodes = spawn_cluster(ExecutorKind::EventLoop, cfg);

    for node in &nodes {
        node.wait_for_view(n, StdDuration::from_secs(20))
            .expect("group formation");
    }
    println!("group formed.");

    // Clients at different replicas concurrently add amounts.
    let increments: &[(usize, i64)] = &[(0, 5), (1, 7), (2, 11), (0, -3), (1, 2), (2, 20)];
    for (replica, amount) in increments {
        nodes[*replica].propose(
            Bytes::from(amount.to_le_bytes().to_vec()),
            Semantics::TOTAL_STRONG,
        );
        std::thread::sleep(StdDuration::from_millis(20));
    }

    // Each replica applies deliveries to its own counter.
    let mut finals = Vec::new();
    for node in &nodes {
        let ds = node.wait_for_deliveries(increments.len(), StdDuration::from_secs(20));
        let mut counter = 0i64;
        let mut trace = Vec::new();
        for d in &ds {
            let amount = i64::from_le_bytes(d.payload.as_ref().try_into().expect("8 bytes"));
            counter += amount;
            trace.push(counter);
        }
        println!(
            "replica {}: applied {} increments, trajectory {:?}, final = {}",
            node.pid,
            ds.len(),
            trace,
            counter
        );
        finals.push((ds.len(), trace, counter));
    }
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged!"
    );
    println!("all replicas agree (identical trajectories, not just totals).");

    for node in nodes {
        node.shutdown();
    }
}
