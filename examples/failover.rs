//! Failure handling, narrated: watch the group creator's state machine
//! (paper Fig. 2) walk through a single-failure election, a false alarm,
//! and a multiple-failure reconfiguration.
//!
//! Run with: `cargo run --example failover`

use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use tw_proto::{Duration, Msg, ProcessId};
use tw_sim::{Fault, MsgMatcher, SimTime};

type TeamWorld = tw_sim::World<timewheel::harness::SimMember>;

/// Step the world, printing every member state change until `until`.
fn narrate(w: &mut TeamWorld, until: SimTime, n: usize) {
    let mut last = vec![String::new(); n];
    while w.now() < until {
        if !w.step() {
            break;
        }
        for i in 0..n as u16 {
            if w.status(ProcessId(i)) != tw_sim::ProcessStatus::Up {
                continue;
            }
            let m = &w.actor(ProcessId(i)).member;
            let s = format!("{:<18} {}", m.state().label(), m.view());
            if s != last[i as usize] {
                println!("  {}  p{i}: {s}", w.now());
                last[i as usize] = s;
            }
        }
    }
}

fn main() {
    let n = 5;
    let params = TeamParams::new(n);
    let mut w = team_world(&params);
    println!("=== formation ===");
    run_until_pred(&mut w, SimTime::from_secs(30), |w| all_in_group(w, n)).expect("formation");
    println!(
        "formed {} at {}",
        w.actor(ProcessId(0)).member.view(),
        w.now()
    );

    println!("\n=== scenario 1: crash one member (single-failure election) ===");
    let t = w.now() + Duration::from_millis(200);
    println!("crashing p2 at {}", t);
    w.crash_at(t, ProcessId(2));
    narrate(&mut w, t + Duration::from_secs(3), n);

    println!("\n=== scenario 2: false alarm (lost decision, wrong-suspicion rescue) ===");
    let t = w.now() + Duration::from_millis(200);
    println!("dropping one decision broadcast to two members at {}", t);
    for target in [3u16, 4] {
        w.add_fault_at(
            t,
            Fault::drop_next(
                MsgMatcher::any()
                    .to(ProcessId(target))
                    .matching(|m: &Msg| matches!(m, Msg::Decision(_))),
                1,
            ),
        );
    }
    narrate(&mut w, t + Duration::from_secs(3), n);
    println!("(note: states visit the election and return — membership unchanged)");

    println!("\n=== scenario 3: two simultaneous crashes (reconfiguration) ===");
    let t = w.now() + Duration::from_millis(200);
    println!("crashing p1 and p3 at {}", t);
    w.crash_at(t, ProcessId(1));
    w.crash_at(t, ProcessId(3));
    narrate(&mut w, t + Duration::from_secs(6), n);

    println!("\n=== scenario 4: recovery and re-integration ===");
    let t = w.now() + Duration::from_millis(200);
    println!("recovering p1, p2, p3 at {}", t);
    for p in [1u16, 2, 3] {
        w.recover_at(t, ProcessId(p));
    }
    narrate(&mut w, t + Duration::from_secs(10), n);

    println!("\nfinal views:");
    for i in 0..n as u16 {
        let m = &w.actor(ProcessId(i)).member;
        println!(
            "  p{i}: {:<18} {}  (views installed: {})",
            m.state().label(),
            m.view(),
            m.views_installed()
        );
    }
    timewheel::invariants::assert_all(&w);
    println!("all protocol invariants hold.");
}
