//! A replicated key-value store — the full "dependable service by a team
//! of replicated servers" stack from the paper's introduction, on real
//! threads:
//!
//!   client command → timewheel atomic broadcast (total/strong)
//!     → every replica applies it in the same order
//!     → membership protocol masks crashes and re-integrates recoveries.
//!
//! Run with: `cargo run --example kv_store`

use std::time::Duration as StdDuration;
use timewheel::Config;
use tw_proto::codec::{Decode, Encode};
use tw_proto::Duration;
use tw_rsm::{spawn_rsm_cluster, KvCmd, KvResponse, KvStore};
use tw_runtime::ExecutorKind;

fn main() {
    let n = 3;
    let cfg = Config::for_team(n, Duration::from_millis(10));
    println!("starting a replicated KV store on {n} replicas…");
    let replicas = spawn_rsm_cluster(ExecutorKind::EventLoop, cfg, KvStore::new);
    for r in &replicas {
        assert!(r.wait_for_view(n, StdDuration::from_secs(20)));
    }
    println!("group formed; serving.");
    let to = StdDuration::from_secs(10);

    // Writes land at different replicas; reads see them from anywhere.
    let ops = [
        (
            0,
            KvCmd::Put {
                key: "user:1".into(),
                value: "ada".into(),
            },
        ),
        (
            1,
            KvCmd::Put {
                key: "user:2".into(),
                value: "edsger".into(),
            },
        ),
        (
            2,
            KvCmd::Get {
                key: "user:1".into(),
            },
        ),
        (
            0,
            KvCmd::Cas {
                key: "user:1".into(),
                expect: Some("ada".into()),
                new: "ada lovelace".into(),
            },
        ),
        (
            1,
            KvCmd::Get {
                key: "user:1".into(),
            },
        ),
        (
            2,
            KvCmd::Del {
                key: "user:2".into(),
            },
        ),
    ];
    for (replica, cmd) in ops {
        let resp = replicas[replica]
            .execute(cmd.to_bytes(), to)
            .expect("execute");
        let decoded = KvResponse::from_bytes(&resp).unwrap();
        println!("  replica {replica}: {cmd:?}\n    → {decoded:?}");
    }

    // Every replica holds the identical store.
    std::thread::sleep(StdDuration::from_millis(300));
    for (i, r) in replicas.iter().enumerate() {
        r.with_machine(|m| {
            println!(
                "replica {i}: {} keys, user:1 = {:?}, applied {} commands",
                m.machine().len(),
                m.machine().get("user:1"),
                m.applied()
            );
            assert_eq!(m.machine().get("user:1"), Some(&"ada lovelace".to_string()));
            assert_eq!(m.machine().get("user:2"), None);
        });
    }
    println!("all replicas identical — the service state is consistent.");
    for r in replicas {
        r.shutdown();
    }
}
