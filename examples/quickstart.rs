//! Quickstart: a five-member timewheel group on the deterministic
//! simulator — formation, a few broadcasts with different semantics, and
//! the message-count ledger showing the failure-free claim (no
//! membership traffic at all while the group is stable).
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::Action;
use tw_proto::{Duration, ProcessId, Semantics};
use tw_sim::SimTime;

fn main() {
    let n = 5;
    let params = TeamParams::new(n);
    println!(
        "timewheel quickstart: team of {n}, delta = {}, D = {}, slot = {}",
        params.protocol_config().delta,
        params.protocol_config().big_d,
        params.protocol_config().slot_len,
    );

    let mut world = team_world(&params);
    let formed = run_until_pred(&mut world, SimTime::from_secs(30), |w| all_in_group(w, n))
        .expect("group formation");
    let view = world.actor(ProcessId(0)).member.view().clone();
    println!("group formed at {formed}: {view}");

    // Broadcast three updates with the three headline semantics.
    let semantics = [
        ("unordered/weak  ", Semantics::UNORDERED_WEAK),
        ("total/strong    ", Semantics::TOTAL_STRONG),
        ("time/strict     ", Semantics::TIME_STRICT),
    ];
    for (i, (_, sem)) in semantics.iter().enumerate() {
        let sender = ProcessId(i as u16);
        let payload = Bytes::from(format!("update-{i}"));
        let sem = *sem;
        world.call_at(
            world.now() + Duration::from_millis(50 * (i as i64 + 1)),
            sender,
            move |a, ctx| {
                if let Ok(actions) = a.member.propose(ctx.now_hw(), payload, sem) {
                    for act in actions {
                        match act {
                            Action::Broadcast(m) => ctx.broadcast(m),
                            Action::Send(to, m) => ctx.send(to, m),
                            Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                            _ => {}
                        }
                    }
                }
            },
        );
    }
    world.reset_stats();
    world.run_for(Duration::from_secs(5));

    println!("\ndeliveries at p0:");
    for (t, d) in &world.actor(ProcessId(0)).deliveries {
        println!(
            "  {t}  {}  [{}]  {:?}",
            d.id,
            d.semantics,
            std::str::from_utf8(&d.payload).unwrap_or("<bin>")
        );
    }

    println!("\nmessage ledger over the stable 5-second window:");
    for (kind, c) in world.stats().iter() {
        println!(
            "  {kind:<15} sends={:<6} delivered={:<6} dropped={}",
            c.sends, c.delivered, c.dropped
        );
    }
    let membership = world.stats().sends_of(&["no-decision", "join", "reconfig"]);
    println!("\nmembership-protocol messages during the stable period: {membership}");
    println!("(the paper's failure-free claim: this is always zero)");
}
