//! Fail-awareness under a network partition: the majority side reforms
//! and keeps serving; the minority side *knows* its group is out of date
//! (it never lies about being current); after healing, the team reunites.
//!
//! Run with: `cargo run --example partition_healing`

use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use tw_proto::{Duration, ProcessId};
use tw_sim::SimTime;

fn report(w: &tw_sim::World<timewheel::harness::SimMember>, n: usize) {
    for i in 0..n as u16 {
        let p = ProcessId(i);
        let hw = w.hw_time(p);
        let m = &w.actor(p).member;
        println!(
            "  p{i}: state={:<18} view={:<24} clock_synced={:<5} up_to_date={}",
            m.state().label(),
            m.view().to_string(),
            m.now_sync(hw).is_some(),
            m.is_up_to_date(hw),
        );
    }
}

fn main() {
    let n = 5;
    let params = TeamParams::new(n);
    let mut w = team_world(&params);
    run_until_pred(&mut w, SimTime::from_secs(30), |w| all_in_group(w, n)).expect("formation");
    println!("formed at {}:", w.now());
    report(&w, n);

    let cut = w.now() + Duration::from_millis(500);
    println!("\npartitioning {{p0,p1,p2}} | {{p3,p4}} at {cut} …");
    w.partition_at(cut, &[&[0, 1, 2], &[3, 4]]);
    w.run_until(cut + Duration::from_secs(8));
    println!("8 s into the partition:");
    report(&w, n);
    println!("\nnote: the minority members report up_to_date = false —");
    println!("fail-awareness means they *know* their view is stale.");

    let heal = w.now() + Duration::from_millis(500);
    println!("\nhealing at {heal} …");
    w.heal_at(heal);
    let reunited = run_until_pred(&mut w, heal + Duration::from_secs(120), |w| {
        all_in_group(w, n)
    })
    .expect("reunification");
    println!("reunited at {reunited}:");
    report(&w, n);
    timewheel::invariants::assert_all(&w);
    println!("\nall protocol invariants hold.");
}
