//! Property tests for flight-recorder crash consistency: for *any*
//! event stream, buffer capacity, truncation point and single-byte
//! corruption, the loader returns every complete segment before the
//! damage and reports (never swallows) the damage itself. The
//! exhaustive fixed-layout variant lives in `recorder_crash.rs`.

use proptest::prelude::*;
use tw_obs::recorder::{FlightRecorder, RecorderConfig, HEADER_LEN};
use tw_obs::recording::Recording;
use tw_obs::trace::TraceSink;
use tw_obs::{ClockStamp, TraceEvent};
use tw_proto::{AckBits, Duration, HwTime, ProcessId, SyncTime, ViewId};

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u16..16).prop_map(ProcessId)
}

fn arb_stamp() -> impl Strategy<Value = ClockStamp> {
    (any::<i64>(), any::<i64>()).prop_map(|(hw, sync)| ClockStamp {
        hw: HwTime(hw),
        sync: SyncTime(sync),
    })
}

fn arb_view() -> impl Strategy<Value = ViewId> {
    (any::<u64>(), arb_pid()).prop_map(|(seq, creator)| ViewId::new(seq, creator))
}

/// A few representative variants — including `ViewInstalled`, which
/// forces a spill and therefore exercises irregular segment sizes.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (arb_pid(), arb_stamp(), any::<i64>(), arb_view()).prop_map(|(pid, at, ts, view)| {
            TraceEvent::DecisionSent {
                pid,
                at,
                send_ts: SyncTime(ts),
                view,
            }
        }),
        (arb_pid(), arb_stamp(), arb_pid(), arb_view()).prop_map(|(pid, at, suspect, view)| {
            TraceEvent::SuspicionRaised {
                pid,
                at,
                suspect,
                view,
            }
        }),
        (arb_pid(), arb_stamp(), arb_view(), any::<u64>()).prop_map(
            |(pid, at, view, members)| TraceEvent::ViewInstalled {
                pid,
                at,
                view,
                members: AckBits(members),
            }
        ),
    ]
}

/// Record `events` through a real recorder and return the file bytes.
fn recorded(events: &[TraceEvent], capacity: usize, name: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("tw-obs-proprec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let cfg = RecorderConfig::new(ProcessId(0), 4, Duration::from_micros(7)).capacity(capacity);
    let rec = FlightRecorder::create(&path, cfg).unwrap();
    for ev in events {
        rec.record(ev);
    }
    drop(rec);
    std::fs::read(&path).unwrap()
}

/// The crash-consistency property both tests below assert: the loaded
/// events are a prefix of what was written, and damage implies a
/// report, never an error.
fn assert_prefix(original: &[TraceEvent], damaged: &[u8], label: &str) {
    let r = Recording::parse(damaged).unwrap_or_else(|e| panic!("{label}: load error {e}"));
    assert!(
        r.events.len() <= original.len(),
        "{label}: more events than written"
    );
    assert_eq!(
        r.events,
        original[..r.events.len()],
        "{label}: loaded events are not a prefix of the written stream"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_truncation_yields_a_prefix(
        events in proptest::collection::vec(arb_event(), 1..40),
        capacity in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = recorded(&events, capacity, "prop-trunc.twrec");
        let clean = Recording::parse(&bytes).unwrap();
        prop_assert_eq!(&clean.events, &events);
        prop_assert_eq!(clean.damage, None);

        let span = bytes.len() - HEADER_LEN;
        let cut = HEADER_LEN + ((span as f64) * cut_frac) as usize;
        assert_prefix(&events, &bytes[..cut.min(bytes.len())], "truncation");
    }

    #[test]
    fn any_single_byte_corruption_yields_a_prefix_and_is_reported(
        events in proptest::collection::vec(arb_event(), 1..40),
        capacity in 1usize..8,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let bytes = recorded(&events, capacity, "prop-flip.twrec");
        let span = bytes.len() - HEADER_LEN;
        let pos = HEADER_LEN + (((span - 1) as f64) * pos_frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= mask;

        let r = Recording::parse(&corrupt).unwrap();
        prop_assert!(r.damage.is_some(), "flip at {} went undetected", pos);
        assert_prefix(&events, &corrupt, "corruption");
    }
}
