//! Crash-consistency of the flight-recorder file format, checked
//! exhaustively (satellite of the flight-recorder PR; the proptest
//! variant lives in `prop_recorder.rs`).
//!
//! The recorder's contract after a torn write or bit rot is:
//!
//! * **every** complete segment before the damage loads, event for
//!   event;
//! * the damage is reported in [`Recording::damage`], never as a load
//!   error (only an unreadable file or broken header is fatal);
//! * nothing past the damage is trusted (no resynchronization).
//!
//! These tests enumerate *every* prefix truncation of a multi-segment
//! recording and *every* single-byte corruption position after the
//! header, instead of sampling: the file is a few hundred bytes, so the
//! exhaustive check is cheap and leaves no cut point to luck.

use tw_obs::recorder::{FlightRecorder, RecorderConfig, HEADER_LEN, SEGMENT_OVERHEAD};
use tw_obs::recording::{Damage, LoadError, Recording};
use tw_obs::trace::TraceSink;
use tw_obs::{ClockStamp, TraceEvent};
use tw_proto::{Duration, HwTime, ProcessId, SyncTime, ViewId};

/// A sample event. Not `ViewInstalled`: the recorder force-spills on
/// view installs, and these tests need the capacity-driven segment
/// layout to be exact.
fn ev(i: i64) -> TraceEvent {
    TraceEvent::DecisionSent {
        pid: ProcessId(1),
        at: ClockStamp {
            hw: HwTime(i),
            sync: SyncTime(i + 1),
        },
        send_ts: SyncTime(i + 1),
        view: ViewId::new(i as u64, ProcessId(0)),
    }
}

/// Record `n` events with the given buffer capacity and return the file
/// bytes plus the byte offset where each segment starts.
fn recorded(n: i64, capacity: usize, name: &str) -> (Vec<u8>, Vec<usize>) {
    let dir = std::env::temp_dir().join(format!("tw-obs-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let cfg = RecorderConfig::new(ProcessId(1), 3, Duration::from_micros(5)).capacity(capacity);
    let rec = FlightRecorder::create(&path, cfg).unwrap();
    for i in 0..n {
        rec.record(&ev(i));
    }
    drop(rec); // flush the tail
    let bytes = std::fs::read(&path).unwrap();

    // Walk the (clean) segment structure to find each segment's start.
    let mut starts = Vec::new();
    let mut off = HEADER_LEN;
    while off < bytes.len() {
        starts.push(off);
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += SEGMENT_OVERHEAD + len;
    }
    assert_eq!(off, bytes.len(), "clean file must end on a segment boundary");
    (bytes, starts)
}

/// The index of the segment a damaged byte offset falls into.
fn segment_of(starts: &[usize], file_len: usize, offset: usize) -> usize {
    assert!(offset >= HEADER_LEN && offset < file_len);
    starts.iter().rposition(|&s| s <= offset).unwrap()
}

#[test]
fn every_prefix_truncation_keeps_all_complete_segments() {
    const EVENTS: i64 = 9;
    const CAPACITY: usize = 3; // → three 3-event segments
    let (bytes, starts) = recorded(EVENTS, CAPACITY, "trunc.twrec");
    assert_eq!(starts.len(), 3);

    for cut in HEADER_LEN..=bytes.len() {
        let r = Recording::parse(&bytes[..cut]).unwrap_or_else(|e| {
            panic!("cut at {cut} must not be a load error: {e}");
        });
        // Complete segments strictly before the cut survive in full.
        let complete = starts
            .iter()
            .enumerate()
            .take_while(|&(i, _)| {
                let end = starts.get(i + 1).copied().unwrap_or(bytes.len());
                end <= cut
            })
            .count();
        assert_eq!(r.intact_segments as usize, complete, "cut at {cut}");
        let kept = (complete as i64) * (CAPACITY as i64);
        assert_eq!(r.events, (0..kept).map(ev).collect::<Vec<_>>(), "cut at {cut}");
        // A cut inside a segment is reported as a torn tail; a cut on a
        // boundary is indistinguishable from a shorter clean file.
        let on_boundary = cut == bytes.len() || starts.contains(&cut);
        if on_boundary {
            assert_eq!(r.damage, None, "cut at {cut}");
        } else {
            assert_eq!(
                r.damage,
                Some(Damage::TruncatedSegment {
                    index: complete as u64
                }),
                "cut at {cut}"
            );
        }
    }
}

#[test]
fn every_single_byte_corruption_keeps_all_segments_before_it() {
    const EVENTS: i64 = 9;
    const CAPACITY: usize = 3;
    let (bytes, starts) = recorded(EVENTS, CAPACITY, "flip.twrec");

    for pos in HEADER_LEN..bytes.len() {
        for mask in [0x01u8, 0xff] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= mask;
            let r = Recording::parse(&corrupt).unwrap_or_else(|e| {
                panic!("flip {mask:#04x} at {pos} must not be a load error: {e}");
            });
            let seg = segment_of(&starts, bytes.len(), pos);
            assert!(
                r.damage.is_some(),
                "flip {mask:#04x} at {pos} (segment {seg}) went undetected"
            );
            assert_eq!(
                r.intact_segments as usize, seg,
                "flip {mask:#04x} at {pos}: segments before segment {seg} must load"
            );
            let kept = (seg as i64) * (CAPACITY as i64);
            assert_eq!(
                r.events,
                (0..kept).map(ev).collect::<Vec<_>>(),
                "flip {mask:#04x} at {pos}"
            );
        }
    }
}

#[test]
fn header_corruption_in_the_magic_is_fatal_metadata_is_not() {
    let (bytes, _) = recorded(3, 3, "header.twrec");
    // Any flip inside the magic makes the file unrecognizable.
    for pos in 0..8 {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xff;
        assert!(
            matches!(Recording::parse(&corrupt), Err(LoadError::BadHeader(_))),
            "magic flip at {pos}"
        );
    }
    // Flips in pid/team/ε change metadata, not loadability.
    for pos in 8..HEADER_LEN {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xff;
        let r = Recording::parse(&corrupt).unwrap();
        assert_eq!(r.events.len(), 3, "metadata flip at {pos}");
        assert_eq!(r.damage, None, "metadata flip at {pos}");
    }
}

#[test]
fn appended_garbage_after_a_clean_file_is_reported_not_trusted() {
    let (bytes, starts) = recorded(6, 3, "append.twrec");
    let mut grown = bytes.clone();
    grown.extend_from_slice(&[0xAA; 5]); // shorter than a segment header
    let r = Recording::parse(&grown).unwrap();
    assert_eq!(r.intact_segments as usize, starts.len());
    assert_eq!(r.events.len(), 6);
    assert!(matches!(r.damage, Some(Damage::TruncatedSegment { .. })));
}
