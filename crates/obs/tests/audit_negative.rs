//! Negative coverage for the live invariant auditor: fabricate
//! deliberately corrupted trace streams and prove each online check can
//! actually fire.
//!
//! This mirrors `crates/core/tests/invariants_negative.rs` for the
//! offline checkers: an auditor that silently accepts garbage would turn
//! every runtime/soak assertion built on it into green noise. Each test
//! doctors the *minimal* broken stream for one invariant and asserts the
//! auditor flags it with the expected message — so stubbing a check out
//! fails these tests loudly.

use tw_obs::{Auditor, ClockStamp, SharedAuditor, TraceEvent, TraceSink};
use tw_proto::{
    AckBits, HwTime, Ordinal, ProcessId, ProposalId, Semantics, SyncTime, ViewId,
};

const N: usize = 5;

fn stamp(us: i64) -> ClockStamp {
    ClockStamp {
        hw: HwTime::from_micros(us),
        sync: SyncTime(us),
    }
}

fn view1() -> ViewId {
    ViewId::new(1, ProcessId(0))
}

fn installed(pid: u16, view: ViewId, members: u64, t_us: i64) -> TraceEvent {
    TraceEvent::ViewInstalled {
        pid: ProcessId(pid),
        at: stamp(t_us),
        view,
        members: AckBits(members),
    }
}

fn delivered(pid: u16, proposer: u16, seq: u64, sem: Semantics, send_us: i64) -> TraceEvent {
    TraceEvent::Delivered {
        pid: ProcessId(pid),
        at: stamp(send_us + 100),
        id: ProposalId::new(ProcessId(proposer), seq),
        ordinal: Some(Ordinal(seq)),
        semantics: sem,
        send_ts: SyncTime(send_us),
        view: view1(),
    }
}

/// A clean failure-free stream: full view everywhere, FIFO in-order
/// total-ordered deliveries. The baseline every doctored stream is a
/// one-event mutation of.
fn clean_stream() -> Vec<TraceEvent> {
    let mut evs = Vec::new();
    for p in 0..N as u16 {
        evs.push(installed(p, view1(), 0b1_1111, 100));
    }
    for seq in 1..=3u64 {
        for p in 0..N as u16 {
            evs.push(delivered(p, 0, seq, Semantics::TOTAL_STRONG, 200 + seq as i64));
        }
    }
    evs
}

fn audit(evs: &[TraceEvent]) -> Auditor {
    let mut a = Auditor::new(N);
    for ev in evs {
        a.observe(ev);
    }
    a
}

#[test]
fn clean_stream_passes() {
    let a = audit(&clean_stream());
    assert!(a.ok(), "unexpected violations: {:?}", a.violations());
}

#[test]
fn doctored_duplicate_delivery_is_flagged() {
    let mut evs = clean_stream();
    // p3 re-delivers proposer 0's seq 2.
    evs.push(delivered(3, 0, 2, Semantics::TOTAL_STRONG, 202));
    let a = audit(&evs);
    assert!(!a.ok(), "auditor accepted a duplicate delivery");
    assert!(
        a.violations().iter().any(|v| v.message.contains("twice")),
        "missing duplicate violation: {:?}",
        a.violations()
    );
}

#[test]
fn doctored_minority_view_is_flagged() {
    let mut evs = clean_stream();
    // p4 installs a two-member view of the five-process team.
    evs.push(installed(4, ViewId::new(2, ProcessId(4)), 0b1_0001, 900));
    let a = audit(&evs);
    assert!(!a.ok(), "auditor accepted a minority view");
    assert!(
        a.violations().iter().any(|v| v.check == "minority-view"),
        "missing minority violation: {:?}",
        a.violations()
    );
}

#[test]
fn doctored_fifo_inversion_is_flagged() {
    let mut evs = vec![installed(0, view1(), 0b1_1111, 100)];
    evs.push(delivered(0, 1, 2, Semantics::UNORDERED_WEAK, 210));
    evs.push(delivered(0, 1, 1, Semantics::UNORDERED_WEAK, 200));
    let a = audit(&evs);
    assert!(
        a.violations().iter().any(|v| v.check == "fifo"),
        "missing FIFO violation: {:?}",
        a.violations()
    );
}

#[test]
fn doctored_total_order_conflict_is_flagged() {
    let mut evs: Vec<TraceEvent> = (0..2u16)
        .map(|p| installed(p, view1(), 0b1_1111, 100))
        .collect();
    // Both members bind ordinal 1, but to different proposals.
    let mk = |pid: u16, proposer: u16| TraceEvent::Delivered {
        pid: ProcessId(pid),
        at: stamp(300),
        id: ProposalId::new(ProcessId(proposer), 1),
        ordinal: Some(Ordinal(1)),
        semantics: Semantics::TOTAL_STRONG,
        send_ts: SyncTime(200),
        view: view1(),
    };
    evs.push(mk(0, 1));
    evs.push(mk(1, 2));
    let a = audit(&evs);
    assert!(
        a.violations()
            .iter()
            .any(|v| v.check == "total-order"),
        "missing total-order violation: {:?}",
        a.violations()
    );
}

#[test]
fn doctored_time_order_inversion_is_flagged() {
    let mut evs = vec![installed(0, view1(), 0b1_1111, 100)];
    evs.push(delivered(0, 1, 1, Semantics::TIME_STRICT, 500));
    evs.push(delivered(0, 2, 1, Semantics::TIME_STRICT, 400));
    let a = audit(&evs);
    assert!(
        a.violations().iter().any(|v| v.check == "time-order"),
        "missing time-order violation: {:?}",
        a.violations()
    );
}

#[test]
fn doctored_view_disagreement_is_flagged() {
    let v = ViewId::new(2, ProcessId(1));
    let evs = vec![
        installed(0, v, 0b0_0111, 100),
        installed(1, v, 0b0_1110, 110), // same id, different member set
    ];
    let a = audit(&evs);
    assert!(
        a.violations()
            .iter()
            .any(|v| v.check == "view-agreement"),
        "missing view-agreement violation: {:?}",
        a.violations()
    );
}

#[test]
fn doctored_competing_majority_groups_are_flagged() {
    // Two different majority groups both complete at view seq 2.
    let evs = vec![
        installed(0, ViewId::new(2, ProcessId(0)), 0b0_0111, 100),
        installed(4, ViewId::new(2, ProcessId(4)), 0b1_1100, 110),
    ];
    let a = audit(&evs);
    assert!(
        a.violations()
            .iter()
            .any(|v| v.check == "competing-groups"),
        "missing competing-groups violation: {:?}",
        a.violations()
    );
}

#[test]
fn shared_auditor_flags_through_the_sink_interface() {
    // The runtime feeds the auditor through `TraceSink::record`; the
    // broken fixture must be caught on that path too.
    let shared = SharedAuditor::new(N);
    let sink: &dyn TraceSink = &shared;
    for ev in clean_stream() {
        sink.record(&ev);
    }
    assert!(shared.ok());
    sink.record(&delivered(3, 0, 2, Semantics::TOTAL_STRONG, 202));
    assert!(!shared.ok(), "sink path accepted a duplicate delivery");
    assert!(shared.violations().iter().any(|v| v.message.contains("twice")));
    let result = std::panic::catch_unwind(|| shared.assert_clean());
    assert!(result.is_err(), "assert_clean must panic on violations");
}
