//! Property tests for the trace-event wire codec: arbitrary events
//! round-trip, unknown tags are skipped without breaking the stream
//! (forward compatibility), and arbitrary byte soup never panics.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;
use tw_obs::codec::MAX_KNOWN_TAG;
use tw_obs::{ClockStamp, FaultKind, TraceEvent};
use tw_proto::codec::{Decode, Encode};
use tw_proto::{
    AckBits, Atomicity, HwTime, Ordinal, ProcessId, ProposalId, Semantics, SyncTime, ViewId,
};

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u16..64).prop_map(ProcessId)
}

fn arb_stamp() -> impl Strategy<Value = ClockStamp> {
    (any::<i64>(), any::<i64>()).prop_map(|(hw, sync)| ClockStamp {
        hw: HwTime(hw),
        sync: SyncTime(sync),
    })
}

fn arb_view() -> impl Strategy<Value = ViewId> {
    (any::<u64>(), arb_pid()).prop_map(|(seq, creator)| ViewId::new(seq, creator))
}

fn arb_sem() -> impl Strategy<Value = Semantics> {
    (
        prop_oneof![
            Just(tw_proto::Ordering::Unordered),
            Just(tw_proto::Ordering::Total),
            Just(tw_proto::Ordering::Time)
        ],
        prop_oneof![
            Just(Atomicity::Weak),
            Just(Atomicity::Strong),
            Just(Atomicity::Strict)
        ],
    )
        .prop_map(|(o, a)| Semantics::new(o, a))
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (arb_pid(), arb_stamp(), any::<i64>(), arb_view()).prop_map(|(pid, at, ts, view)| {
            TraceEvent::DecisionSent {
                pid,
                at,
                send_ts: SyncTime(ts),
                view,
            }
        }),
        (arb_pid(), arb_stamp(), arb_pid(), any::<i64>(), arb_view()).prop_map(
            |(pid, at, from, ts, view)| TraceEvent::DecisionReceived {
                pid,
                at,
                from,
                send_ts: SyncTime(ts),
                view,
            }
        ),
        (arb_pid(), arb_stamp(), arb_pid(), arb_view()).prop_map(|(pid, at, suspect, view)| {
            TraceEvent::SuspicionRaised {
                pid,
                at,
                suspect,
                view,
            }
        }),
        (arb_pid(), arb_stamp(), arb_pid(), any::<i64>(), arb_view()).prop_map(
            |(pid, at, suspect, ts, view)| TraceEvent::NoDecisionHop {
                pid,
                at,
                suspect,
                send_ts: SyncTime(ts),
                view,
            }
        ),
        (arb_pid(), arb_stamp(), arb_pid(), arb_view()).prop_map(|(pid, at, suspect, view)| {
            TraceEvent::WrongSuspicionRescue {
                pid,
                at,
                suspect,
                view,
            }
        }),
        (
            arb_pid(),
            arb_stamp(),
            any::<i64>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(pid, at, slot, listed, empty)| TraceEvent::ReconfigSlotFired {
                pid,
                at,
                slot,
                listed,
                empty,
            }),
        (arb_pid(), arb_stamp(), arb_view(), any::<u64>()).prop_map(
            |(pid, at, view, members)| TraceEvent::ViewInstalled {
                pid,
                at,
                view,
                members: AckBits(members),
            }
        ),
        (
            arb_pid(),
            arb_stamp(),
            arb_pid(),
            any::<u64>(),
            proptest::option::of(any::<u64>().prop_map(Ordinal)),
            arb_sem(),
            any::<i64>(),
            arb_view()
        )
            .prop_map(
                |(pid, at, proposer, seq, ordinal, semantics, ts, view)| TraceEvent::Delivered {
                    pid,
                    at,
                    id: ProposalId::new(proposer, seq),
                    ordinal,
                    semantics,
                    send_ts: SyncTime(ts),
                    view,
                }
            ),
        (
            arb_pid(),
            arb_stamp(),
            arb_view(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(pid, at, view, lost, orphaned, unknown)| TraceEvent::Purged {
                pid,
                at,
                view,
                lost,
                orphaned,
                unknown,
            }),
        (
            arb_pid(),
            arb_stamp(),
            (0..FaultKind::ALL.len()).prop_map(|i| FaultKind::ALL[i]),
            arb_pid(),
            any::<u32>()
        )
            .prop_map(|(pid, at, kind, target, arg)| TraceEvent::FaultInjected {
                pid,
                at,
                kind,
                target,
                arg,
            }),
        // Unknown events only exist with tags beyond the known range
        // (re-encoding one under a known tag would be a lie on the wire).
        ((MAX_KNOWN_TAG + 1)..=u8::MAX).prop_map(|tag| TraceEvent::Unknown { tag }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_event_round_trips(ev in arb_event()) {
        let bytes = ev.to_bytes();
        let back = TraceEvent::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn encoding_is_deterministic(ev in arb_event()) {
        prop_assert_eq!(ev.to_bytes(), ev.to_bytes());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; panicking or looping is not.
        let _ = TraceEvent::from_bytes(&bytes);
    }

    #[test]
    fn truncation_always_detected(ev in arb_event(), cut_frac in 0.0f64..1.0) {
        let bytes = ev.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(TraceEvent::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_tags_are_skipped_in_streams(
        evs in proptest::collection::vec(arb_event(), 0..8),
        future_tag in (MAX_KNOWN_TAG + 1)..=u8::MAX,
        future_payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // Interleave a frame from a "future" producer at the front; every
        // event behind it must still decode.
        let mut buf = BytesMut::new();
        future_tag.encode(&mut buf);
        (future_payload.len() as u16).encode(&mut buf);
        buf.put_slice(&future_payload);
        for ev in &evs {
            ev.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        prop_assert_eq!(
            TraceEvent::decode(&mut bytes).expect("skip future frame"),
            TraceEvent::Unknown { tag: future_tag }
        );
        for ev in &evs {
            prop_assert_eq!(&TraceEvent::decode(&mut bytes).expect("tail event"), ev);
        }
        prop_assert!(bytes.is_empty());
    }
}
