//! Reading flight-recorder files back into event streams, tolerating
//! torn tails.
//!
//! A recording written by [`crate::recorder::FlightRecorder`] may be
//! damaged in exactly the ways a crash (or a corrupted copy) produces:
//! a truncated final segment, or bytes flipped anywhere after the
//! header. The loader's contract — the crash-consistency contract the
//! property tests pin down — is:
//!
//! * every segment **before** the damage loads completely;
//! * damage is *reported* ([`Damage`]), never fatal: the only hard
//!   errors are an unreadable file or a broken header (without the
//!   header there is no recording to speak of).
//!
//! Detection is structural (a segment length that overruns the file) or
//! checksummed (CRC-32 mismatch over the payload). The loader does not
//! try to resynchronize past damage: frame lengths are not
//! self-delimiting under corruption, so anything after the first bad
//! segment is untrusted by design.

// tw-lint: allow-file(actor-io) -- the recording loader is the read side of the
// flight recorder's file format; it runs in analyzers and tests, never inside a
// simulated actor.

use crate::recorder::{crc32, FILE_MAGIC, HEADER_LEN, SEGMENT_OVERHEAD};
use crate::trace::TraceEvent;
use bytes::Bytes;
use std::fmt;
use std::path::Path;
use tw_proto::codec::Decode;
use tw_proto::{Duration, ProcessId};

/// Where and how a recording was damaged. The events of all segments
/// before the damage are still in [`Recording::events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Damage {
    /// The file ends in the middle of segment `index` (crash while
    /// spilling, or a truncated copy).
    TruncatedSegment {
        /// Zero-based index of the damaged segment.
        index: u64,
    },
    /// Segment `index` failed its CRC (bit rot, or a torn write that
    /// happened to keep the length plausible).
    CorruptSegment {
        /// Zero-based index of the damaged segment.
        index: u64,
    },
    /// Segment `index` passed its CRC but its payload did not parse as
    /// trace frames — a writer bug or deliberate tampering.
    UndecodableSegment {
        /// Zero-based index of the damaged segment.
        index: u64,
    },
}

impl fmt::Display for Damage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Damage::TruncatedSegment { index } => {
                write!(f, "segment {index} truncated (torn tail)")
            }
            Damage::CorruptSegment { index } => write!(f, "segment {index} failed CRC"),
            Damage::UndecodableSegment { index } => {
                write!(f, "segment {index} payload undecodable")
            }
        }
    }
}

/// Why a file could not be opened as a recording at all.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file is shorter than a header or does not start with
    /// [`FILE_MAGIC`].
    BadHeader(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "reading recording: {e}"),
            LoadError::BadHeader(why) => write!(f, "bad recording header: {why}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// One node's recording, loaded back into memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    /// The recorded member's process id (from the header).
    pub pid: ProcessId,
    /// Team size N at recording time (from the header; 0 if unknown).
    pub team: usize,
    /// The clock-sync deviation bound ε at recording time.
    pub epsilon: Duration,
    /// Every event from every intact segment, in write order.
    pub events: Vec<TraceEvent>,
    /// Segments that loaded completely.
    pub intact_segments: u64,
    /// The damage that ended the scan, if any.
    pub damage: Option<Damage>,
}

impl Recording {
    /// Load the recording at `path`. Damage after the header is
    /// reported in [`Recording::damage`], not returned as an error.
    pub fn load(path: impl AsRef<Path>) -> Result<Recording, LoadError> {
        let bytes = std::fs::read(path.as_ref())?;
        Recording::parse(&bytes)
    }

    /// Parse recording bytes (see [`Recording::load`]).
    pub fn parse(bytes: &[u8]) -> Result<Recording, LoadError> {
        if bytes.len() < HEADER_LEN {
            return Err(LoadError::BadHeader(format!(
                "{} bytes is shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if &bytes[..8] != FILE_MAGIC {
            return Err(LoadError::BadHeader(
                "missing TWFR0001 magic — not a flight recording".into(),
            ));
        }
        let pid = ProcessId(u16::from_le_bytes([bytes[8], bytes[9]]));
        let team = u16::from_le_bytes([bytes[10], bytes[11]]) as usize;
        let epsilon = Duration::from_micros(i64::from_le_bytes(
            bytes[12..20].try_into().expect("8 header bytes"),
        ));

        let mut events = Vec::new();
        let mut intact_segments = 0u64;
        let mut damage = None;
        let mut off = HEADER_LEN;
        while off < bytes.len() {
            let index = intact_segments;
            if bytes.len() - off < SEGMENT_OVERHEAD {
                damage = Some(Damage::TruncatedSegment { index });
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
            let start = off + SEGMENT_OVERHEAD;
            if bytes.len() - start < len {
                damage = Some(Damage::TruncatedSegment { index });
                break;
            }
            let payload = &bytes[start..start + len];
            if crc32(payload) != crc {
                damage = Some(Damage::CorruptSegment { index });
                break;
            }
            match decode_payload(payload) {
                Some(mut evs) => events.append(&mut evs),
                None => {
                    damage = Some(Damage::UndecodableSegment { index });
                    break;
                }
            }
            intact_segments += 1;
            off = start + len;
        }

        Ok(Recording {
            pid,
            team,
            epsilon,
            events,
            intact_segments,
            damage,
        })
    }
}

fn decode_payload(payload: &[u8]) -> Option<Vec<TraceEvent>> {
    let mut buf = Bytes::from(payload.to_vec());
    let mut out = Vec::new();
    while !buf.is_empty() {
        match TraceEvent::decode(&mut buf) {
            Ok(ev) => out.push(ev),
            Err(_) => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, RecorderConfig};
    use crate::trace::{ClockStamp, TraceSink};
    use std::path::PathBuf;
    use tw_proto::{HwTime, SyncTime, ViewId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tw-obs-recload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    // Not a ViewInstalled: the recorder force-spills on view installs,
    // and these tests need exact capacity-driven segment layout.
    fn ev(i: i64) -> TraceEvent {
        TraceEvent::DecisionSent {
            pid: ProcessId(2),
            at: ClockStamp {
                hw: HwTime(i),
                sync: SyncTime(i + 1),
            },
            send_ts: SyncTime(i + 1),
            view: ViewId::new(i as u64, ProcessId(0)),
        }
    }

    fn written(n: i64, capacity: usize, name: &str) -> Vec<u8> {
        let path = tmp(name);
        let cfg = RecorderConfig::new(ProcessId(2), 3, Duration::from_micros(9)).capacity(capacity);
        let rec = FlightRecorder::create(&path, cfg).unwrap();
        for i in 0..n {
            rec.record(&ev(i));
        }
        drop(rec);
        std::fs::read(&path).unwrap()
    }

    #[test]
    fn short_or_wrong_magic_is_a_header_error() {
        assert!(matches!(
            Recording::parse(b"TWFR"),
            Err(LoadError::BadHeader(_))
        ));
        let mut bytes = written(2, 10, "magic.twrec");
        bytes[0] = b'X';
        assert!(matches!(
            Recording::parse(&bytes),
            Err(LoadError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_tail_keeps_earlier_segments() {
        // 6 events, capacity 2 → three 2-event segments.
        let bytes = written(6, 2, "torn.twrec");
        // Cut in the middle of the last segment.
        let cut = bytes.len() - 3;
        let r = Recording::parse(&bytes[..cut]).unwrap();
        assert_eq!(r.intact_segments, 2);
        assert_eq!(r.events, (0..4).map(ev).collect::<Vec<_>>());
        assert!(matches!(r.damage, Some(Damage::TruncatedSegment { index: 2 })));
    }

    #[test]
    fn corrupt_middle_segment_stops_the_scan_there() {
        let bytes = written(6, 2, "corrupt.twrec");
        let mut bytes = bytes;
        // Flip a byte inside the second segment's payload. Segment
        // layout after the header: [len 4][crc 4][payload ...].
        let seg0_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
        let seg1_payload_start = 20 + 8 + seg0_len + 8;
        bytes[seg1_payload_start + 1] ^= 0xff;
        let r = Recording::parse(&bytes).unwrap();
        assert_eq!(r.intact_segments, 1);
        assert_eq!(r.events, (0..2).map(ev).collect::<Vec<_>>());
        assert!(matches!(r.damage, Some(Damage::CorruptSegment { index: 1 })));
    }

    #[test]
    fn damage_displays_human_readably() {
        assert!(Damage::TruncatedSegment { index: 3 }
            .to_string()
            .contains("torn tail"));
        assert!(Damage::CorruptSegment { index: 0 }.to_string().contains("CRC"));
        assert!(Damage::UndecodableSegment { index: 1 }
            .to_string()
            .contains("undecodable"));
    }
}
