//! Reading flight-recorder files back into event streams, tolerating
//! torn tails.
//!
//! A recording written by [`crate::recorder::FlightRecorder`] may be
//! damaged in exactly the ways a crash (or a corrupted copy) produces:
//! a truncated final segment, or bytes flipped anywhere after the
//! header. The loader's contract — the crash-consistency contract the
//! property tests pin down — is:
//!
//! * every segment **before** the damage loads completely;
//! * damage is *reported* ([`Damage`]), never fatal: the only hard
//!   errors are an unreadable file or a broken header (without the
//!   header there is no recording to speak of).
//!
//! Detection is structural (a segment length that overruns the file) or
//! checksummed (CRC-32 mismatch over the payload). The loader does not
//! try to resynchronize past damage: frame lengths are not
//! self-delimiting under corruption, so anything after the first bad
//! segment is untrusted by design.
//!
//! The decoding core is the incremental [`StreamReader`]: feed it byte
//! chunks in any sizes and it yields events as segments complete. The
//! file loader is one `feed` of the whole file followed by [`finish`]
//! ([`StreamReader::finish`]); the live tailer feeds TCP reads as they
//! arrive. Both therefore share one reader and one torn-stream
//! contract — a recording on disk and a trace stream on the wire are
//! the same TWFR bytes, damaged the same ways.

// tw-lint: allow-file(actor-io) -- the recording loader is the read side of the
// flight recorder's file format; it runs in analyzers and tests, never inside a
// simulated actor.

use crate::recorder::{crc32, FILE_MAGIC, HEADER_LEN, SEGMENT_OVERHEAD};
use crate::trace::TraceEvent;
use bytes::Bytes;
use std::fmt;
use std::path::Path;
use tw_proto::codec::Decode;
use tw_proto::{Duration, ProcessId};

/// Where and how a recording was damaged. The events of all segments
/// before the damage are still in [`Recording::events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Damage {
    /// The file ends in the middle of segment `index` (crash while
    /// spilling, or a truncated copy).
    TruncatedSegment {
        /// Zero-based index of the damaged segment.
        index: u64,
    },
    /// Segment `index` failed its CRC (bit rot, or a torn write that
    /// happened to keep the length plausible).
    CorruptSegment {
        /// Zero-based index of the damaged segment.
        index: u64,
    },
    /// Segment `index` passed its CRC but its payload did not parse as
    /// trace frames — a writer bug or deliberate tampering.
    UndecodableSegment {
        /// Zero-based index of the damaged segment.
        index: u64,
    },
}

impl fmt::Display for Damage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Damage::TruncatedSegment { index } => {
                write!(f, "segment {index} truncated (torn tail)")
            }
            Damage::CorruptSegment { index } => write!(f, "segment {index} failed CRC"),
            Damage::UndecodableSegment { index } => {
                write!(f, "segment {index} payload undecodable")
            }
        }
    }
}

/// Why a file could not be opened as a recording at all.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file is shorter than a header or does not start with
    /// [`FILE_MAGIC`].
    BadHeader(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "reading recording: {e}"),
            LoadError::BadHeader(why) => write!(f, "bad recording header: {why}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// The TWFR stream header: who recorded, at what team size, under what
/// clock-sync bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// The emitting member's process id.
    pub pid: ProcessId,
    /// Team size N at stream start (0 if unknown).
    pub team: usize,
    /// The clock-sync deviation bound ε.
    pub epsilon: Duration,
}

/// Incremental TWFR decoder — the one reader behind both the file
/// loader ([`Recording::parse`]) and the live tailer.
///
/// Feed it bytes in whatever chunks the carrier delivers; complete
/// segments decode immediately, partial ones wait for more input. Damage
/// semantics match the file loader exactly: a CRC or decode failure is
/// recorded ([`StreamReader::finish`]) and everything after it is
/// discarded (no resync); an incomplete tail only becomes
/// [`Damage::TruncatedSegment`] when the caller declares the stream over
/// by calling `finish` — mid-stream, a partial segment is just bytes
/// that have not arrived yet.
#[derive(Debug, Default)]
pub struct StreamReader {
    buf: Vec<u8>,
    header: Option<StreamHeader>,
    intact_segments: u64,
    damage: Option<Damage>,
    /// Set once the header failed to parse; every later feed re-fails.
    dead: bool,
}

impl StreamReader {
    /// A reader expecting a TWFR header first.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stream header, once its 20 bytes have arrived.
    pub fn header(&self) -> Option<&StreamHeader> {
        self.header.as_ref()
    }

    /// Segments decoded completely so far.
    pub fn intact_segments(&self) -> u64 {
        self.intact_segments
    }

    /// The damage that stopped decoding, if any has been detected yet.
    /// Truncation is only ever reported by [`StreamReader::finish`].
    pub fn damage(&self) -> Option<&Damage> {
        self.damage.as_ref()
    }

    /// Append `bytes` and decode every segment that is now complete,
    /// returning its events in write order. After detected damage the
    /// input is discarded (untrusted by design) and the result is
    /// empty. The only hard error is a malformed header.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<TraceEvent>, LoadError> {
        if self.dead {
            return Err(LoadError::BadHeader(
                "stream already failed header validation".into(),
            ));
        }
        if self.damage.is_some() {
            return Ok(Vec::new());
        }
        self.buf.extend_from_slice(bytes);

        if self.header.is_none() {
            if self.buf.len() < HEADER_LEN {
                return Ok(Vec::new());
            }
            if &self.buf[..8] != FILE_MAGIC {
                self.dead = true;
                return Err(LoadError::BadHeader(
                    "missing TWFR0001 magic — not a flight recording".into(),
                ));
            }
            let b = &self.buf;
            self.header = Some(StreamHeader {
                pid: ProcessId(u16::from_le_bytes([b[8], b[9]])),
                team: u16::from_le_bytes([b[10], b[11]]) as usize,
                epsilon: Duration::from_micros(i64::from_le_bytes(
                    b[12..20].try_into().expect("8 header bytes"),
                )),
            });
            self.buf.drain(..HEADER_LEN);
        }

        let mut events = Vec::new();
        let mut off = 0usize;
        while self.buf.len() - off >= SEGMENT_OVERHEAD {
            let len = u32::from_le_bytes(
                self.buf[off..off + 4].try_into().expect("4 bytes"),
            ) as usize;
            let crc = u32::from_le_bytes(
                self.buf[off + 4..off + 8].try_into().expect("4 bytes"),
            );
            let start = off + SEGMENT_OVERHEAD;
            if self.buf.len() - start < len {
                break; // partial segment — wait for more bytes
            }
            let index = self.intact_segments;
            let payload = &self.buf[start..start + len];
            if crc32(payload) != crc {
                self.damage = Some(Damage::CorruptSegment { index });
                break;
            }
            match decode_payload(payload) {
                Some(mut evs) => events.append(&mut evs),
                None => {
                    self.damage = Some(Damage::UndecodableSegment { index });
                    break;
                }
            }
            self.intact_segments += 1;
            off = start + len;
        }
        if self.damage.is_some() {
            self.buf.clear(); // everything past damage is untrusted
        } else {
            self.buf.drain(..off);
        }
        Ok(events)
    }

    /// Declare the stream over (EOF, connection drop) and report how it
    /// ended: previously detected damage, a truncated tail if any bytes
    /// are still pending (including an incomplete header), or `None`
    /// for a clean end on a segment boundary.
    pub fn finish(&self) -> Option<Damage> {
        if let Some(d) = &self.damage {
            return Some(d.clone());
        }
        if !self.buf.is_empty() {
            return Some(Damage::TruncatedSegment {
                index: self.intact_segments,
            });
        }
        None
    }
}

/// One node's recording, loaded back into memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    /// The recorded member's process id (from the header).
    pub pid: ProcessId,
    /// Team size N at recording time (from the header; 0 if unknown).
    pub team: usize,
    /// The clock-sync deviation bound ε at recording time.
    pub epsilon: Duration,
    /// Every event from every intact segment, in write order.
    pub events: Vec<TraceEvent>,
    /// Segments that loaded completely.
    pub intact_segments: u64,
    /// The damage that ended the scan, if any.
    pub damage: Option<Damage>,
}

impl Recording {
    /// Load the recording at `path`. Damage after the header is
    /// reported in [`Recording::damage`], not returned as an error.
    pub fn load(path: impl AsRef<Path>) -> Result<Recording, LoadError> {
        let bytes = std::fs::read(path.as_ref())?;
        Recording::parse(&bytes)
    }

    /// Parse recording bytes (see [`Recording::load`]). One `feed` of
    /// the whole file into the shared [`StreamReader`], then `finish` —
    /// so files and live streams cannot drift apart in how they decode.
    pub fn parse(bytes: &[u8]) -> Result<Recording, LoadError> {
        let mut reader = StreamReader::new();
        let events = reader.feed(bytes)?;
        let header = match reader.header() {
            Some(h) => *h,
            None => {
                return Err(LoadError::BadHeader(format!(
                    "{} bytes is shorter than the {HEADER_LEN}-byte header",
                    bytes.len()
                )))
            }
        };
        Ok(Recording {
            pid: header.pid,
            team: header.team,
            epsilon: header.epsilon,
            events,
            intact_segments: reader.intact_segments(),
            damage: reader.finish(),
        })
    }
}

fn decode_payload(payload: &[u8]) -> Option<Vec<TraceEvent>> {
    let mut buf = Bytes::from(payload.to_vec());
    let mut out = Vec::new();
    while !buf.is_empty() {
        match TraceEvent::decode(&mut buf) {
            Ok(ev) => out.push(ev),
            Err(_) => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, RecorderConfig};
    use crate::trace::{ClockStamp, TraceSink};
    use std::path::PathBuf;
    use tw_proto::{HwTime, SyncTime, ViewId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tw-obs-recload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    // Not a ViewInstalled: the recorder force-spills on view installs,
    // and these tests need exact capacity-driven segment layout.
    fn ev(i: i64) -> TraceEvent {
        TraceEvent::DecisionSent {
            pid: ProcessId(2),
            at: ClockStamp {
                hw: HwTime(i),
                sync: SyncTime(i + 1),
            },
            send_ts: SyncTime(i + 1),
            view: ViewId::new(i as u64, ProcessId(0)),
        }
    }

    fn written(n: i64, capacity: usize, name: &str) -> Vec<u8> {
        let path = tmp(name);
        let cfg = RecorderConfig::new(ProcessId(2), 3, Duration::from_micros(9)).capacity(capacity);
        let rec = FlightRecorder::create(&path, cfg).unwrap();
        for i in 0..n {
            rec.record(&ev(i));
        }
        drop(rec);
        std::fs::read(&path).unwrap()
    }

    #[test]
    fn short_or_wrong_magic_is_a_header_error() {
        assert!(matches!(
            Recording::parse(b"TWFR"),
            Err(LoadError::BadHeader(_))
        ));
        let mut bytes = written(2, 10, "magic.twrec");
        bytes[0] = b'X';
        assert!(matches!(
            Recording::parse(&bytes),
            Err(LoadError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_tail_keeps_earlier_segments() {
        // 6 events, capacity 2 → three 2-event segments.
        let bytes = written(6, 2, "torn.twrec");
        // Cut in the middle of the last segment.
        let cut = bytes.len() - 3;
        let r = Recording::parse(&bytes[..cut]).unwrap();
        assert_eq!(r.intact_segments, 2);
        assert_eq!(r.events, (0..4).map(ev).collect::<Vec<_>>());
        assert!(matches!(r.damage, Some(Damage::TruncatedSegment { index: 2 })));
    }

    #[test]
    fn corrupt_middle_segment_stops_the_scan_there() {
        let bytes = written(6, 2, "corrupt.twrec");
        let mut bytes = bytes;
        // Flip a byte inside the second segment's payload. Segment
        // layout after the header: [len 4][crc 4][payload ...].
        let seg0_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
        let seg1_payload_start = 20 + 8 + seg0_len + 8;
        bytes[seg1_payload_start + 1] ^= 0xff;
        let r = Recording::parse(&bytes).unwrap();
        assert_eq!(r.intact_segments, 1);
        assert_eq!(r.events, (0..2).map(ev).collect::<Vec<_>>());
        assert!(matches!(r.damage, Some(Damage::CorruptSegment { index: 1 })));
    }

    #[test]
    fn stream_reader_and_file_loader_agree_byte_for_byte() {
        // The shared-framing proof: the same recorder-written bytes,
        // decoded (a) in one shot by the file loader and (b) dribbled
        // into the incremental reader in awkward chunk sizes, must
        // yield identical headers, events and damage verdicts.
        let bytes = written(9, 2, "shared.twrec");
        let whole = Recording::parse(&bytes).unwrap();

        for chunk in [1usize, 3, 7, 64, bytes.len()] {
            let mut r = StreamReader::new();
            let mut events = Vec::new();
            for part in bytes.chunks(chunk) {
                events.extend(r.feed(part).unwrap());
            }
            let h = *r.header().expect("header after full feed");
            assert_eq!(h.pid, whole.pid);
            assert_eq!(h.team, whole.team);
            assert_eq!(h.epsilon, whole.epsilon);
            assert_eq!(events, whole.events, "chunk size {chunk}");
            assert_eq!(r.intact_segments(), whole.intact_segments);
            assert_eq!(r.finish(), whole.damage);
        }
    }

    #[test]
    fn stream_reader_waits_for_partial_segments_mid_stream() {
        let bytes = written(4, 2, "partial.twrec");
        let mut r = StreamReader::new();
        // Everything but the last 3 bytes: the final segment is
        // incomplete, which mid-stream is not damage.
        let cut = bytes.len() - 3;
        let early = r.feed(&bytes[..cut]).unwrap();
        assert_eq!(early, (0..2).map(ev).collect::<Vec<_>>());
        assert!(r.damage().is_none());
        // …but an EOF here is a torn tail.
        assert_eq!(
            r.finish(),
            Some(Damage::TruncatedSegment { index: 1 })
        );
        // The missing bytes arrive after all: the segment completes and
        // the same reader finishes clean.
        let late = r.feed(&bytes[cut..]).unwrap();
        assert_eq!(late, (2..4).map(ev).collect::<Vec<_>>());
        assert_eq!(r.finish(), None);
    }

    #[test]
    fn stream_reader_discards_everything_after_damage() {
        let mut bytes = written(6, 2, "streamcorrupt.twrec");
        let seg0_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
        let seg1_payload_start = 20 + 8 + seg0_len + 8;
        bytes[seg1_payload_start] ^= 0xff;
        let mut r = StreamReader::new();
        let events = r.feed(&bytes).unwrap();
        assert_eq!(events, (0..2).map(ev).collect::<Vec<_>>());
        assert_eq!(r.damage(), Some(&Damage::CorruptSegment { index: 1 }));
        // Later feeds are swallowed: no resync past damage.
        let more = written(2, 2, "streamcorrupt2.twrec");
        assert!(r.feed(&more[20..]).unwrap().is_empty());
        assert_eq!(
            r.finish(),
            Some(Damage::CorruptSegment { index: 1 })
        );
    }

    #[test]
    fn stream_reader_rejects_bad_magic_permanently() {
        let mut r = StreamReader::new();
        // Header split across feeds: no verdict until 20 bytes exist.
        assert!(r.feed(b"TWFR").unwrap().is_empty());
        assert!(r.header().is_none());
        assert!(matches!(
            r.feed(b"XXXXxxxxxxxxxxxxxxxx"),
            Err(LoadError::BadHeader(_))
        ));
        assert!(matches!(r.feed(b""), Err(LoadError::BadHeader(_))));
    }

    #[test]
    fn stream_reader_incomplete_header_is_truncation_at_finish() {
        let mut r = StreamReader::new();
        assert!(r.feed(b"TWFR00").unwrap().is_empty());
        assert_eq!(
            r.finish(),
            Some(Damage::TruncatedSegment { index: 0 })
        );
        // An empty stream, though, ends clean.
        assert_eq!(StreamReader::new().finish(), None);
    }

    #[test]
    fn damage_displays_human_readably() {
        assert!(Damage::TruncatedSegment { index: 3 }
            .to_string()
            .contains("torn tail"));
        assert!(Damage::CorruptSegment { index: 0 }.to_string().contains("CRC"));
        assert!(Damage::UndecodableSegment { index: 1 }
            .to_string()
            .contains("undecodable"));
    }
}
