//! Live invariant auditor over merged trace streams.
//!
//! The deterministic simulator checks the protocol's invariants offline
//! (`timewheel::invariants` walks complete delivery logs after a run).
//! A real cluster has no such log — but it *does* have the trace stream.
//! The [`Auditor`] tails the merged [`TraceEvent`] streams of all members
//! and re-checks the same family of claims **incrementally**, as events
//! arrive:
//!
//! * **No duplicate delivery** — a member never delivers the same
//!   proposal twice.
//! * **FIFO per proposer** — a member delivers a proposer's updates in
//!   ascending proposal-sequence order.
//! * **Time order** — time-ordered deliveries at one member carry
//!   non-decreasing synchronized send timestamps.
//! * **Total order** — two members never bind the same `(view, ordinal)`
//!   to different proposals, and ordinals at one member grow strictly
//!   within a view (prefix property).
//! * **Majority views** — every installed view contains a strict
//!   majority of the team (§3: only majority groups may form).
//! * **View agreement** — members installing the same view id agree on
//!   its membership, and at most one majority group completes per view
//!   sequence number.
//!
//! Scope: the auditor assumes one incarnation per member within the
//! audited window (recovery resets proposal sequence numbers, which
//! would trip the FIFO check). Soak tests that crash/recover members
//! should start a fresh auditor per epoch.
//!
//! Violations accumulate; they are never dropped. [`SharedAuditor`]
//! wraps the auditor for use as a live [`TraceSink`] behind the tracer
//! of every node in a cluster. Wiring a metrics [`Registry`] into the
//! auditor additionally exposes each check as a
//! `tw_audit_violations_total.<check>` counter, so live deployments can
//! alarm on invariant violations instead of only seeing them in test
//! assertions.

use crate::metrics::Registry;
use crate::trace::{TraceEvent, TraceSink};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use tw_proto::{AckBits, Ordinal, ProcessId, ProposalId, SyncTime, ViewId};

/// Every check the auditor (and the offline cross-node analyzer) can
/// flag. Wiring a registry pre-registers one counter per check at zero,
/// so dashboards see the metric before anything goes wrong.
pub const AUDIT_CHECKS: &[&str] = &[
    "duplicate-delivery",
    "fifo",
    "time-order",
    "total-order",
    "ordinal-prefix",
    "minority-view",
    "view-agreement",
    "competing-groups",
    "view-overlap",
    "oal-prefix",
    "clock-alignment",
];

/// Metric-name prefix for per-check violation counters.
pub const AUDIT_COUNTER_PREFIX: &str = "tw_audit_violations_total";

/// A single invariant violation: which check fired, and a
/// human-readable sentence saying why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable check label (one of [`AUDIT_CHECKS`]); doubles as the
    /// metric key suffix.
    pub check: &'static str,
    /// What happened, as a sentence.
    pub message: String,
}

impl Violation {
    /// A violation of `check` described by `message`.
    pub fn new(check: &'static str, message: impl Into<String>) -> Self {
        Violation {
            check,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.message)
    }
}

/// Incremental invariant checker over a merged trace stream.
#[derive(Debug)]
pub struct Auditor {
    team: usize,
    /// Proposals each member has delivered (duplicate detection).
    seen: BTreeMap<ProcessId, BTreeSet<ProposalId>>,
    /// Per observer, per proposer: highest delivered proposal seq.
    fifo: BTreeMap<ProcessId, BTreeMap<ProcessId, u64>>,
    /// Per observer: send timestamp of the last time-ordered delivery.
    time_order: BTreeMap<ProcessId, SyncTime>,
    /// Membership each view id was first installed with (agreement).
    installed: BTreeMap<ViewId, AckBits>,
    /// The view id that completed at each view sequence number.
    completed_by_seq: BTreeMap<u64, ViewId>,
    /// Global binding of `(view, ordinal)` to a proposal (total order).
    order: BTreeMap<(ViewId, Ordinal), ProposalId>,
    /// Per observer, per view: last delivered ordinal (prefix property).
    last_ordinal: BTreeMap<(ProcessId, ViewId), Ordinal>,
    violations: Vec<Violation>,
    /// Optional metrics registry; when wired, every flag also bumps
    /// `tw_audit_violations_total.<check>`.
    registry: Option<Arc<Registry>>,
}

impl Auditor {
    /// New auditor for a team of `team` members.
    pub fn new(team: usize) -> Self {
        Auditor {
            team,
            seen: BTreeMap::new(),
            fifo: BTreeMap::new(),
            time_order: BTreeMap::new(),
            installed: BTreeMap::new(),
            completed_by_seq: BTreeMap::new(),
            order: BTreeMap::new(),
            last_ordinal: BTreeMap::new(),
            violations: Vec::new(),
            registry: None,
        }
    }

    /// Expose violations as counters in `registry`: one
    /// `tw_audit_violations_total.<check>` per known check, all
    /// pre-registered at zero so the metrics exist before anything
    /// fires.
    pub fn wire_registry(&mut self, registry: Arc<Registry>) {
        for check in AUDIT_CHECKS {
            registry.counter(&format!("{AUDIT_COUNTER_PREFIX}.{check}"));
        }
        self.registry = Some(registry);
    }

    fn flag(&mut self, check: &'static str, msg: String) {
        if let Some(reg) = &self.registry {
            reg.counter(&format!("{AUDIT_COUNTER_PREFIX}.{check}")).inc();
        }
        self.violations.push(Violation::new(check, msg));
    }

    /// Feed one trace event into the checker.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Delivered {
                pid,
                id,
                ordinal,
                semantics,
                send_ts,
                view,
                ..
            } => self.on_delivered(pid, id, ordinal, semantics, send_ts, view),
            TraceEvent::ViewInstalled {
                pid, view, members, ..
            } => self.on_view_installed(pid, view, members),
            _ => {}
        }
    }

    fn on_delivered(
        &mut self,
        pid: ProcessId,
        id: ProposalId,
        ordinal: Option<Ordinal>,
        semantics: tw_proto::Semantics,
        send_ts: SyncTime,
        view: ViewId,
    ) {
        if !self.seen.entry(pid).or_default().insert(id) {
            self.flag("duplicate-delivery", format!("{pid} delivered {id} twice"));
        }

        let slot = self
            .fifo
            .entry(pid)
            .or_default()
            .entry(id.proposer)
            .or_insert(0);
        let prev_seq = *slot;
        if id.seq > prev_seq {
            *slot = id.seq;
        }
        if id.seq <= prev_seq {
            self.flag(
                "fifo",
                format!(
                    "{pid} violated FIFO: delivered {id} after seq {prev_seq} from {}",
                    id.proposer
                ),
            );
        }

        if semantics.ordering == tw_proto::Ordering::Time {
            let prev = self.time_order.get(&pid).copied();
            if let Some(prev) = prev {
                if send_ts < prev {
                    self.flag(
                        "time-order",
                        format!(
                            "{pid} delivered time-ordered {id} (send_ts {send_ts:?}) after {prev:?}"
                        ),
                    );
                }
            }
            let e = self.time_order.entry(pid).or_insert(send_ts);
            if send_ts > *e {
                *e = send_ts;
            }
        }

        if semantics.ordering == tw_proto::Ordering::Total {
            match ordinal {
                None => self.flag(
                    "total-order",
                    format!("{pid} delivered total-ordered {id} without an ordinal"),
                ),
                Some(ord) => {
                    let bound = *self.order.entry((view, ord)).or_insert(id);
                    if bound != id {
                        self.flag(
                            "total-order",
                            format!(
                                "total order disagreement at {view:?} ordinal {ord:?}: {bound} vs {id}"
                            ),
                        );
                    }
                    let prev = self.last_ordinal.get(&(pid, view)).copied();
                    if let Some(prev) = prev {
                        if ord <= prev {
                            self.flag(
                                "ordinal-prefix",
                                format!(
                                    "{pid} delivered ordinal {ord:?} after {prev:?} in {view:?}"
                                ),
                            );
                        }
                    }
                    let e = self.last_ordinal.entry((pid, view)).or_insert(ord);
                    if ord > *e {
                        *e = ord;
                    }
                }
            }
        }
    }

    fn on_view_installed(&mut self, pid: ProcessId, view: ViewId, members: AckBits) {
        if members.count() * 2 <= self.team {
            self.flag(
                "minority-view",
                format!(
                    "{pid} installed non-majority view {view:?} ({} of {})",
                    members.count(),
                    self.team
                ),
            );
        }
        match self.installed.get(&view).copied() {
            None => {
                self.installed.insert(view, members);
                let other = self.completed_by_seq.get(&view.seq).copied();
                match other {
                    Some(other) if other != view => {
                        self.flag(
                            "competing-groups",
                            format!(
                                "two completed majority groups at seq {}: {other:?} and {view:?}",
                                view.seq
                            ),
                        );
                    }
                    Some(_) => {}
                    None => {
                        self.completed_by_seq.insert(view.seq, view);
                    }
                }
            }
            Some(first) if first != members => {
                self.flag(
                    "view-agreement",
                    format!(
                        "view agreement broken for {view:?}: {pid} installed members {members:?}, first installer saw {first:?}"
                    ),
                );
            }
            Some(_) => {}
        }
    }

    /// All violations recorded so far, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no invariant has been violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a readable report if any invariant was violated.
    pub fn assert_clean(&self) {
        if !self.ok() {
            let mut report = String::from("invariant auditor found violations:\n");
            for v in &self.violations {
                report.push_str("  - ");
                report.push_str(&v.to_string());
                report.push('\n');
            }
            panic!("{report}");
        }
    }
}

/// A thread-safe handle to an [`Auditor`], usable as a live [`TraceSink`].
///
/// Clone one handle into the tracer of every node; events from all
/// members funnel into a single checker.
#[derive(Debug, Clone)]
pub struct SharedAuditor(Arc<Mutex<Auditor>>);

impl SharedAuditor {
    /// New shared auditor for a team of `team` members.
    pub fn new(team: usize) -> Self {
        SharedAuditor(Arc::new(Mutex::new(Auditor::new(team))))
    }

    /// Expose violations as counters in `registry` (see
    /// [`Auditor::wire_registry`]).
    pub fn wire_registry(&self, registry: Arc<Registry>) {
        self.lock().wire_registry(registry);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Auditor> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of all violations recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.lock().violations().to_vec()
    }

    /// True when no invariant has been violated.
    pub fn ok(&self) -> bool {
        self.lock().ok()
    }

    /// Panic with a readable report if any invariant was violated.
    pub fn assert_clean(&self) {
        self.lock().assert_clean();
    }
}

impl TraceSink for SharedAuditor {
    fn record(&self, ev: &TraceEvent) {
        self.lock().observe(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ClockStamp;
    use tw_proto::Semantics;

    fn delivered(pid: u16, proposer: u16, seq: u64) -> TraceEvent {
        TraceEvent::Delivered {
            pid: ProcessId(pid),
            at: ClockStamp::default(),
            id: ProposalId::new(ProcessId(proposer), seq),
            ordinal: None,
            semantics: Semantics::UNORDERED_WEAK,
            send_ts: SyncTime(0),
            view: ViewId::new(1, ProcessId(0)),
        }
    }

    #[test]
    fn clean_stream_stays_clean() {
        let mut a = Auditor::new(5);
        let view = ViewId::new(1, ProcessId(0));
        for p in 0..5u16 {
            a.observe(&TraceEvent::ViewInstalled {
                pid: ProcessId(p),
                at: ClockStamp::default(),
                view,
                members: AckBits(0b1_1111),
            });
        }
        for p in 0..5u16 {
            for seq in 1..=3 {
                a.observe(&delivered(p, 2, seq));
            }
        }
        assert!(a.ok(), "unexpected: {:?}", a.violations());
    }

    #[test]
    fn duplicate_delivery_is_flagged() {
        let mut a = Auditor::new(3);
        a.observe(&delivered(0, 1, 1));
        a.observe(&delivered(0, 1, 1));
        assert_eq!(a.violations().len(), 2); // duplicate + FIFO regression
        assert_eq!(a.violations()[0].check, "duplicate-delivery");
        assert!(a.violations()[0].message.contains("twice"));
    }

    #[test]
    fn fifo_regression_is_flagged() {
        let mut a = Auditor::new(3);
        a.observe(&delivered(0, 1, 2));
        a.observe(&delivered(0, 1, 1));
        assert!(a.violations().iter().any(|v| v.check == "fifo"));
    }

    #[test]
    fn minority_view_is_flagged() {
        let mut a = Auditor::new(5);
        a.observe(&TraceEvent::ViewInstalled {
            pid: ProcessId(0),
            at: ClockStamp::default(),
            view: ViewId::new(2, ProcessId(0)),
            members: AckBits(0b11),
        });
        assert_eq!(a.violations()[0].check, "minority-view");
        assert!(a.violations()[0].message.contains("non-majority"));
    }

    #[test]
    fn total_order_conflict_is_flagged() {
        let mut a = Auditor::new(3);
        let view = ViewId::new(1, ProcessId(0));
        let mk = |pid: u16, proposer: u16, seq: u64, ord: u64| TraceEvent::Delivered {
            pid: ProcessId(pid),
            at: ClockStamp::default(),
            id: ProposalId::new(ProcessId(proposer), seq),
            ordinal: Some(Ordinal(ord)),
            semantics: Semantics::TOTAL_STRONG,
            send_ts: SyncTime(0),
            view,
        };
        a.observe(&mk(0, 1, 1, 1));
        a.observe(&mk(1, 2, 1, 1)); // different proposal, same ordinal
        assert!(a
            .violations()
            .iter()
            .any(|v| v.check == "total-order" && v.message.contains("disagreement")));
    }

    #[test]
    fn wired_registry_counts_violations_per_check() {
        let registry = Arc::new(Registry::new());
        let mut a = Auditor::new(3);
        a.wire_registry(registry.clone());
        // Pre-registered at zero, present in the snapshot before any
        // violation.
        let snap = registry.snapshot();
        for check in AUDIT_CHECKS {
            let key = format!("{AUDIT_COUNTER_PREFIX}.{check}");
            assert_eq!(snap.counter(&key), 0, "{key} not pre-registered");
        }
        a.observe(&delivered(0, 1, 1));
        a.observe(&delivered(0, 1, 1)); // duplicate + FIFO regression
        assert_eq!(
            registry.counter_value("tw_audit_violations_total.duplicate-delivery"),
            1
        );
        assert_eq!(registry.counter_value("tw_audit_violations_total.fifo"), 1);
        assert_eq!(
            registry.counter_value("tw_audit_violations_total.minority-view"),
            0
        );
    }

    #[test]
    fn shared_auditor_funnels_from_sink() {
        let shared = SharedAuditor::new(3);
        let sink: &dyn TraceSink = &shared;
        sink.record(&delivered(0, 1, 1));
        sink.record(&delivered(0, 1, 1));
        assert!(!shared.ok());
        assert!(shared.violations()[0].message.contains("twice"));
    }
}
