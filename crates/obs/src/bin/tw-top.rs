//! `tw-top` — live cluster telemetry viewer over the per-node ops plane.
//!
//! Attaches to N nodes' ops endpoints (`tw_obs::server::OpsServer`,
//! spawned by `tw-runtime`'s `spawn_cluster_observed` /
//! `ChaosCluster::spawn_observed`), scrapes `/healthz`, `/status` and
//! `/metrics`, and renders one row per node: the member's own §6
//! fail-awareness verdict next to the runtime's self-observation
//! signals (tick lag, inbox depth, recorder backlog, mmsg batch fill).
//!
//! ```text
//! tw-top [FLAGS] <addr>...
//!   --interval-ms N   refresh period (default 1000)
//!   --timeout-ms N    per-request socket timeout (default 500)
//!   --once            one snapshot, then exit (CI mode)
//!   --json            with --once: emit a JSON array instead of a table
//! ```
//!
//! Exit status (with `--once`): 0 when every node answered, 1 when any
//! was unreachable, 2 on usage errors. Without `--once` it refreshes
//! until interrupted, showing unreachable nodes as `down`.

// tw-lint: allow-file(actor-io) -- tw-top is an operator CLI: its whole job
// is TCP scraping and terminal output; it never runs inside an actor.

use std::process::ExitCode;
use std::time::Duration;
use tw_obs::http_get;

const USAGE: &str =
    "usage: tw-top [--interval-ms N] [--timeout-ms N] [--once] [--json] <addr>...";

struct Options {
    interval: Duration,
    timeout: Duration,
    once: bool,
    json: bool,
    addrs: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        interval: Duration::from_millis(1000),
        timeout: Duration::from_millis(500),
        once: false,
        json: false,
        addrs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| "--interval-ms: not a number")?;
                opts.interval = Duration::from_millis(ms.max(10));
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| "--timeout-ms: not a number")?;
                opts.timeout = Duration::from_millis(ms.max(1));
            }
            "--once" => opts.once = true,
            "--json" => opts.json = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            addr => opts.addrs.push(addr.to_string()),
        }
    }
    if opts.addrs.is_empty() {
        return Err("no node addresses given".to_string());
    }
    if opts.json && !opts.once {
        return Err("--json requires --once".to_string());
    }
    Ok(opts)
}

/// What one scrape of one node yielded.
struct NodeSample {
    addr: String,
    reachable: bool,
    healthy: bool,
    /// The raw `/status` JSON body (empty when unreachable).
    status: String,
    /// The raw `/metrics` exposition (empty when unreachable).
    metrics: String,
}

fn scrape(addr: &str, timeout: Duration) -> NodeSample {
    let health = http_get(addr, "/healthz", timeout);
    let status = http_get(addr, "/status", timeout);
    let metrics = http_get(addr, "/metrics", timeout);
    match (health, status, metrics) {
        (Ok((hc, _)), Ok((200, sb)), Ok((200, mb))) => NodeSample {
            addr: addr.to_string(),
            reachable: true,
            healthy: hc == 200,
            status: sb,
            metrics: mb,
        },
        _ => NodeSample {
            addr: addr.to_string(),
            reachable: false,
            healthy: false,
            status: String::new(),
            metrics: String::new(),
        },
    }
}

/// Pull `"key":<integer>` out of a flat JSON object (the `/status`
/// payload is produced by our own server; no general parser needed).
fn json_i64(body: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = &body[at..];
    let end = rest
        .find(|c: char| c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The value of the (single) sample of `name` in an exposition text:
/// a line `name 3` or `name{pid="0"} 3`. Comments don't match; names
/// that are prefixes of longer names don't match.
fn metric_value(text: &str, name: &str) -> Option<i64> {
    for line in text.lines() {
        if !line.starts_with(name) {
            continue;
        }
        let rest = &line[name.len()..];
        let after_labels = if let Some(r) = rest.strip_prefix('{') {
            match r.find('}') {
                Some(i) => &r[i + 1..],
                None => continue,
            }
        } else {
            rest
        };
        if let Some(v) = after_labels.strip_prefix(' ') {
            if let Ok(n) = v.trim().parse() {
                return Some(n);
            }
        }
    }
    None
}

/// The p95 upper bound of a histogram, read from its cumulative
/// `_bucket` lines (ascending `le` order as rendered): the smallest
/// bucket bound covering ≥95% of the count, as its `le` string
/// (`"+Inf"` when the tail spills past the last finite bound).
fn hist_p95(text: &str, name: &str) -> Option<String> {
    let total = metric_value(text, &format!("{name}_count"))?;
    if total == 0 {
        return Some("-".to_string());
    }
    let target = (total * 95 + 99) / 100;
    let bucket = format!("{name}_bucket");
    for line in text.lines() {
        if !line.starts_with(bucket.as_str()) {
            continue;
        }
        let le = line
            .find("le=\"")
            .map(|i| &line[i + 4..])
            .and_then(|r| r.find('"').map(|j| &r[..j]))?;
        let cum: i64 = line.rsplit(' ').next()?.parse().ok()?;
        if cum >= target {
            return Some(le.to_string());
        }
    }
    None
}

/// Fields tw-top surfaces per node; every entry is (label, metric kind).
fn row(sample: &NodeSample) -> Vec<String> {
    if !sample.reachable {
        let mut r = vec![sample.addr.clone(), "down".to_string()];
        r.extend(vec!["-".to_string(); HEADERS.len() - 2]);
        return r;
    }
    let s = &sample.status;
    let m = &sample.metrics;
    let int = |v: Option<i64>| v.map_or("-".to_string(), |n| n.to_string());
    vec![
        sample.addr.clone(),
        if sample.healthy { "ok" } else { "lagging" }.to_string(),
        json_i64(s, "view_len").map_or("-".to_string(), |n| {
            format!("{n}@{}", json_i64(s, "view_seq").unwrap_or(0))
        }),
        int(metric_value(m, "deliveries_total")),
        int(metric_value(m, "views_installed_total")),
        int(metric_value(m, "tw_inbox_depth")),
        int(metric_value(m, "tw_inbox_dropped_total")),
        int(metric_value(m, "tw_recorder_buffered")),
        int(metric_value(m, "tw_mmsg_batch_fill")),
        hist_p95(m, "tick_lag_us").unwrap_or_else(|| "-".to_string()),
        hist_p95(m, "dispatch_latency_us").unwrap_or_else(|| "-".to_string()),
    ]
}

const HEADERS: [&str; 11] = [
    "ADDR", "HEALTH", "VIEW", "DELIV", "VIEWS", "INBOX", "SHED", "RECBUF", "BATCH",
    "TICKLAG_P95", "DISP_P95",
];

fn render_table(samples: &[NodeSample]) -> String {
    let rows: Vec<Vec<String>> = samples.iter().map(row).collect();
    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
    for r in &rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header: Vec<String> = HEADERS.iter().map(|h| h.to_string()).collect();
    let mut out = fmt_row(&header);
    for r in &rows {
        out.push('\n');
        out.push_str(&fmt_row(r));
    }
    out
}

/// Machine form for CI: `/status` is embedded verbatim (it is already
/// JSON from our own server), the selected metrics as integers.
fn render_json(samples: &[NodeSample]) -> String {
    let mut out = String::from("[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let int = |name: &str| {
            metric_value(&s.metrics, name).map_or("null".to_string(), |n| n.to_string())
        };
        out.push_str(&format!(
            "{{\"addr\":\"{}\",\"reachable\":{},\"healthy\":{},\"status\":{},\
             \"deliveries\":{},\"views_installed\":{},\"inbox_depth\":{},\
             \"inbox_dropped\":{},\"recorder_buffered\":{},\"batch_fill\":{}}}",
            s.addr,
            s.reachable,
            s.healthy,
            if s.status.is_empty() { "null" } else { &s.status },
            int("deliveries_total"),
            int("views_installed_total"),
            int("tw_inbox_depth"),
            int("tw_inbox_dropped_total"),
            int("tw_recorder_buffered"),
            int("tw_mmsg_batch_fill"),
        ));
    }
    out.push(']');
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tw-top: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    use std::io::Write as _;
    loop {
        let samples: Vec<NodeSample> = opts
            .addrs
            .iter()
            .map(|a| scrape(a, opts.timeout))
            .collect();
        if opts.once {
            let body = if opts.json {
                render_json(&samples)
            } else {
                render_table(&samples)
            };
            // Tolerate a closed pipe (`tw-top --once --json | head`):
            // truncated output is the reader's choice, not an error.
            let _ = writeln!(std::io::stdout(), "{body}");
            return if samples.iter().all(|s| s.reachable) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            };
        }
        // Clear + home, then the fresh table (plain ANSI, no TUI deps).
        let mut stdout = std::io::stdout();
        if write!(stdout, "\x1b[2J\x1b[H{}\n", render_table(&samples)).is_err() {
            // Live mode into a pipe that went away: stop redrawing.
            return ExitCode::SUCCESS;
        }
        let _ = stdout.flush();
        std::thread::sleep(opts.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: &str = "\
# HELP deliveries_total counter `deliveries`\n\
# TYPE deliveries_total counter\n\
deliveries_total{pid=\"0\"} 42\n\
# TYPE tw_inbox_depth gauge\n\
tw_inbox_depth{pid=\"0\"} -3\n\
# TYPE tick_lag_us histogram\n\
tick_lag_us_bucket{pid=\"0\",le=\"100\"} 10\n\
tick_lag_us_bucket{pid=\"0\",le=\"1000\"} 19\n\
tick_lag_us_bucket{pid=\"0\",le=\"+Inf\"} 20\n\
tick_lag_us_sum{pid=\"0\"} 5000\n\
tick_lag_us_count{pid=\"0\"} 20\n";

    #[test]
    fn metric_value_reads_labeled_samples_not_comments() {
        assert_eq!(metric_value(METRICS, "deliveries_total"), Some(42));
        assert_eq!(metric_value(METRICS, "tw_inbox_depth"), Some(-3));
        assert_eq!(metric_value(METRICS, "missing"), None);
    }

    #[test]
    fn p95_picks_the_covering_bucket() {
        // ceil(20 * 0.95) = 19, cumulative 19 is reached at le=1000.
        assert_eq!(hist_p95(METRICS, "tick_lag_us").as_deref(), Some("1000"));
    }

    #[test]
    fn status_json_fields_parse() {
        let body = "{\"pid\":3,\"up_to_date\":true,\"view_len\":5,\"view_seq\":12}";
        assert_eq!(json_i64(body, "view_len"), Some(5));
        assert_eq!(json_i64(body, "view_seq"), Some(12));
        assert_eq!(json_i64(body, "absent"), None);
    }

    #[test]
    fn json_snapshot_marks_unreachable_nodes() {
        let samples = vec![NodeSample {
            addr: "127.0.0.1:1".to_string(),
            reachable: false,
            healthy: false,
            status: String::new(),
            metrics: String::new(),
        }];
        let j = render_json(&samples);
        assert!(j.contains("\"reachable\":false"), "{j}");
        assert!(j.contains("\"status\":null"), "{j}");
    }
}
