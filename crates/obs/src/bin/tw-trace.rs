//! `tw-trace` — offline analyzer for timewheel flight recordings.
//!
//! Loads N per-node `.twrec` files (written by
//! `tw_obs::recorder::FlightRecorder`), aligns them on the synchronized
//! clock, reconstructs protocol spans, and reports:
//!
//! * an ASCII global timeline of the merged event stream;
//! * per-phase latency attribution (decision propagation, each hop of a
//!   single-failure recovery, reconfiguration) with p50/p95/p99;
//! * an offline audit of the merged stream — the live auditor's checks
//!   plus the cross-node ones (majority-view overlap, oal-prefix
//!   agreement, ε-causality).
//!
//! ```text
//! tw-trace [FLAGS] <recording>...
//!   --no-timeline          skip the ASCII timeline
//!   --deliveries           include Delivered events in the timeline
//!   --max-rows N           timeline row cap (default 200)
//!   --epsilon-us N         override the ε fuzz bound from the headers
//!   --expect-recovery      fail unless a completed recovery span exists
//!   --max-recovery-us N    fail if any recovery span exceeds N µs
//!   --json PATH            also write a machine-readable report
//! ```
//!
//! Exit status: 0 clean, 1 violations or unmet expectations, 2 usage /
//! unreadable input.

// tw-lint: allow-file(actor-io) -- tw-trace is the offline analyzer CLI: it
// exists to read recording files and print a report; it never runs inside an
// actor.

use std::process::ExitCode;
use tw_obs::analyze::{analyze, render_timeline, Analysis, TimelineOptions};
use tw_obs::recording::Recording;
use tw_obs::TraceSet;
use tw_proto::Duration;

const USAGE: &str = "usage: tw-trace [--no-timeline] [--deliveries] [--max-rows N] \
[--epsilon-us N] [--expect-recovery] [--max-recovery-us N] [--json PATH] <recording>...";

struct Options {
    timeline: bool,
    deliveries: bool,
    max_rows: usize,
    epsilon_us: Option<i64>,
    expect_recovery: bool,
    max_recovery_us: Option<i64>,
    json: Option<String>,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        timeline: true,
        deliveries: false,
        max_rows: 200,
        epsilon_us: None,
        expect_recovery: false,
        max_recovery_us: None,
        json: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
                .map(str::to_owned)
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--no-timeline" => opts.timeline = false,
            "--deliveries" => opts.deliveries = true,
            "--max-rows" => {
                opts.max_rows = value("--max-rows")?
                    .parse()
                    .map_err(|_| "--max-rows needs an integer".to_string())?;
            }
            "--epsilon-us" => {
                opts.epsilon_us = Some(
                    value("--epsilon-us")?
                        .parse()
                        .map_err(|_| "--epsilon-us needs an integer".to_string())?,
                );
            }
            "--expect-recovery" => opts.expect_recovery = true,
            "--max-recovery-us" => {
                opts.max_recovery_us = Some(
                    value("--max-recovery-us")?
                        .parse()
                        .map_err(|_| "--max-recovery-us needs an integer".to_string())?,
                );
            }
            "--json" => opts.json = Some(value("--json")?),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.files.is_empty() {
        return Err("no recordings given".into());
    }
    Ok(opts)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(analysis: &Analysis, recordings: &[Recording], failures: &[String]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"team\":{},\"epsilon_us\":{},\"events\":{},\"dropped\":{},",
        analysis.team,
        analysis.epsilon.as_micros(),
        analysis.merged.len(),
        analysis.dropped
    ));
    out.push_str("\"recordings\":[");
    for (i, r) in recordings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"pid\":{},\"events\":{},\"intact_segments\":{},\"damage\":{}}}",
            r.pid.0,
            r.events.len(),
            r.intact_segments,
            match &r.damage {
                Some(d) => format!("\"{}\"", json_escape(&d.to_string())),
                None => "null".into(),
            }
        ));
    }
    out.push_str("],\"recoveries\":[");
    for (i, r) in analysis.recoveries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"suspect\":{},\"hops\":{},\"installs\":{},\"rescued\":{},\"total_us\":{}}}",
            r.suspect.0,
            r.hops.len(),
            r.installs.len(),
            r.rescue.is_some(),
            match r.total() {
                Some(d) => d.as_micros().to_string(),
                None => "null".into(),
            }
        ));
    }
    out.push_str(&format!(
        "],\"decisions\":{},\"reconfigs\":{},",
        analysis.decisions.len(),
        analysis.reconfigs.len()
    ));
    out.push_str("\"faults\":{");
    for (i, (kind, count)) in analysis.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{kind}\":{count}"));
    }
    out.push_str("},");
    out.push_str("\"violations\":[");
    for (i, v) in analysis.audit.iter().chain(&analysis.cross).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"check\":\"{}\",\"message\":\"{}\"}}",
            json_escape(v.check),
            json_escape(&v.message)
        ));
    }
    out.push_str("],\"failures\":[");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(f)));
    }
    out.push_str("],\"latencies\":");
    out.push_str(&analysis.latencies.to_json());
    out.push('}');
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("tw-trace: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut recordings = Vec::new();
    for file in &opts.files {
        match Recording::load(file) {
            Ok(r) => {
                if let Some(d) = &r.damage {
                    eprintln!(
                        "tw-trace: {file}: {d}; kept {} events from {} intact segments",
                        r.events.len(),
                        r.intact_segments
                    );
                }
                recordings.push(r);
            }
            Err(e) => {
                eprintln!("tw-trace: {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut set = match TraceSet::new(recordings) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("tw-trace: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(eps) = opts.epsilon_us {
        set.epsilon = Duration::from_micros(eps);
    }

    let analysis = analyze(&set);

    println!(
        "tw-trace: {} recordings · team {} · ε {} · {} events merged ({} dropped)",
        set.recordings.len(),
        analysis.team,
        analysis.epsilon,
        analysis.merged.len(),
        analysis.dropped
    );

    if opts.timeline {
        println!();
        print!(
            "{}",
            render_timeline(
                &analysis.merged,
                analysis.team,
                TimelineOptions {
                    deliveries: opts.deliveries,
                    max_rows: opts.max_rows,
                },
            )
        );
    }

    println!();
    for d in &analysis.decisions {
        println!(
            "decision: {} sent ts {} in view {}.{} → {} receives",
            d.sender,
            d.send_ts,
            d.view.seq,
            d.view.creator,
            d.receives.len()
        );
    }
    for r in &analysis.recoveries {
        match (&r.rescue, r.total()) {
            (Some((by, _)), _) => println!(
                "recovery: suspect {} (first raised by {}) — wrong suspicion, rescued by {by}",
                r.suspect, r.first_suspicion.0
            ),
            (None, Some(total)) => {
                println!(
                    "recovery: suspect {} (first raised by {}) — {} hops, {} installs, total {}",
                    r.suspect,
                    r.first_suspicion.0,
                    r.hops.len(),
                    r.installs.len(),
                    total
                );
                for h in &r.hops {
                    println!("  hop {} at +{} (cost {})", h.pid, h.at, h.cost);
                }
            }
            (None, None) => println!(
                "recovery: suspect {} (first raised by {}) — incomplete ({} hops, {} installs)",
                r.suspect,
                r.first_suspicion.0,
                r.hops.len(),
                r.installs.len()
            ),
        }
    }
    for r in &analysis.reconfigs {
        println!(
            "reconfig: first slot by {} — {} slot messages, {} installs, total {}",
            r.first_slot.0,
            r.slots,
            r.installs.len(),
            match r.total() {
                Some(d) => d.to_string(),
                None => "incomplete".into(),
            }
        );
    }

    if !analysis.faults.is_empty() {
        let summary: Vec<String> = analysis
            .faults
            .iter()
            .map(|(kind, count)| format!("{kind}×{count}"))
            .collect();
        println!();
        println!(
            "adversarial run: {} injected faults ({})",
            analysis.faults.values().sum::<u64>(),
            summary.join(", ")
        );
    }

    println!();
    println!("latencies: {}", analysis.latencies.to_json());

    let mut failures: Vec<String> = Vec::new();
    for v in analysis.audit.iter().chain(&analysis.cross) {
        failures.push(v.to_string());
    }
    if opts.expect_recovery
        && !analysis
            .recoveries
            .iter()
            .any(|r| r.total().is_some() && !r.installs.is_empty())
    {
        failures.push("expected a completed recovery span, found none".into());
    }
    if let Some(cap) = opts.max_recovery_us {
        for r in &analysis.recoveries {
            if let Some(total) = r.total() {
                if total.as_micros() > cap {
                    failures.push(format!(
                        "recovery of {} took {} — over the {}us envelope",
                        r.suspect, total, cap
                    ));
                }
            }
        }
    }

    if let Some(path) = &opts.json {
        let json = report_json(&analysis, &set.recordings, &failures);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("tw-trace: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }

    if failures.is_empty() {
        println!("offline audit: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("offline audit: {} failure(s)", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
