//! Typed trace events and the pluggable sink they flow through.
//!
//! Every event names the emitting member and carries a [`ClockStamp`]:
//! the member's raw hardware clock reading *and* the synchronized time
//! its fail-aware clock translated it to. Consumers correlate events
//! across members on the synchronized component and diagnose clock
//! behaviour on the hardware component — exactly the two time bases the
//! paper's timed asynchronous model distinguishes.
//!
//! Events are plain `Copy` data over [`tw_proto`] vocabulary types; a
//! member set travels as an [`AckBits`] rank bitmask, so emitting an
//! event never allocates. When no sink is attached, [`Tracer::emit`]
//! does not even construct the event.

use std::fmt;
use std::sync::{Arc, Mutex};
use tw_proto::{AckBits, HwTime, Ordinal, ProcessId, ProposalId, Semantics, SyncTime, ViewId};

/// The hardware/synchronized clock pair an event is stamped with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockStamp {
    /// The member's hardware clock at the input that caused the event.
    pub hw: HwTime,
    /// The synchronized time the fail-aware clock mapped it to.
    pub sync: SyncTime,
}

/// The kind of fault a chaos harness injected into a run.
///
/// Each kind maps onto the timed-asynchronous failure model the paper
/// assumes (DESIGN.md §11): drop/duplicate/reorder/delay/corrupt are
/// omission or performance failures of the datagram service, cut/heal
/// describe the link matrix, and crash/restart/pause/resume are process
/// failures. The discriminant is the wire byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FaultKind {
    /// A datagram was discarded (omission failure).
    Drop = 0,
    /// A datagram was delivered twice.
    Duplicate = 1,
    /// A datagram was held back past later traffic (bounded reorder).
    Reorder = 2,
    /// A datagram was delayed (performance failure).
    Delay = 3,
    /// A datagram's bytes were corrupted, then dropped at decode
    /// (checksummed omission).
    Corrupt = 4,
    /// A directional link was cut.
    CutLink = 5,
    /// A directional link was healed.
    HealLink = 6,
    /// A node was crash-stopped.
    Crash = 7,
    /// A crashed node was restarted (rejoins via the §5 join path).
    Restart = 8,
    /// A node's event processing was paused (performance failure).
    Pause = 9,
    /// A paused node was resumed.
    Resume = 10,
}

impl FaultKind {
    /// Every kind, in wire-byte order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Delay,
        FaultKind::Corrupt,
        FaultKind::CutLink,
        FaultKind::HealLink,
        FaultKind::Crash,
        FaultKind::Restart,
        FaultKind::Pause,
        FaultKind::Resume,
    ];

    /// Stable label for metrics keys and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Delay => "delay",
            FaultKind::Corrupt => "corrupt",
            FaultKind::CutLink => "cut-link",
            FaultKind::HealLink => "heal-link",
            FaultKind::Crash => "crash",
            FaultKind::Restart => "restart",
            FaultKind::Pause => "pause",
            FaultKind::Resume => "resume",
        }
    }

    /// Decode a wire byte; `None` for values this version doesn't know.
    pub fn from_u8(b: u8) -> Option<FaultKind> {
        FaultKind::ALL.get(b as usize).copied()
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One protocol-visible transition, as observed by one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The member held the decider role and broadcast its decision.
    DecisionSent {
        /// Emitting member.
        pid: ProcessId,
        /// Local clocks at emission.
        at: ClockStamp,
        /// The decision's send timestamp.
        send_ts: SyncTime,
        /// The view the decision was sent in.
        view: ViewId,
    },
    /// The member accepted a decision from the rotation.
    DecisionReceived {
        /// Emitting member.
        pid: ProcessId,
        /// Local clocks at acceptance.
        at: ClockStamp,
        /// Who sent the decision.
        from: ProcessId,
        /// The decision's send timestamp.
        send_ts: SyncTime,
        /// The view the decision carried.
        view: ViewId,
    },
    /// The failure detector (or a concurring no-decision message) made
    /// this member suspect another.
    SuspicionRaised {
        /// Emitting member.
        pid: ProcessId,
        /// Local clocks when the suspicion was raised.
        at: ClockStamp,
        /// The suspected member.
        suspect: ProcessId,
        /// The view the suspicion arose in.
        view: ViewId,
    },
    /// The member sent its no-decision message — one hop of the §4.1
    /// single-failure ring.
    NoDecisionHop {
        /// Emitting member.
        pid: ProcessId,
        /// Local clocks at the send.
        at: ClockStamp,
        /// The suspect the ring is removing.
        suspect: ProcessId,
        /// The no-decision message's send timestamp.
        send_ts: SyncTime,
        /// The view the election belongs to.
        view: ViewId,
    },
    /// A member holding the allegedly missed decision became decider and
    /// rescued the rotation with no membership change (§4.2).
    WrongSuspicionRescue {
        /// Emitting (rescuing) member.
        pid: ProcessId,
        /// Local clocks at the rescue.
        at: ClockStamp,
        /// The wrongly suspected member.
        suspect: ProcessId,
        /// The view that was preserved.
        view: ViewId,
    },
    /// The member sent a reconfiguration message in its own slot (§4.2
    /// n-failure election).
    ReconfigSlotFired {
        /// Emitting member.
        pid: ProcessId,
        /// Local clocks at the send.
        at: ClockStamp,
        /// The timewheel slot index the message was sent in.
        slot: i64,
        /// Size of the reconfiguration-list carried.
        listed: u32,
        /// Whether the list was deliberately empty (mixed-election
        /// cooldown).
        empty: bool,
    },
    /// The member installed a new group view.
    ViewInstalled {
        /// Emitting member.
        pid: ProcessId,
        /// Local clocks at installation.
        at: ClockStamp,
        /// The installed view's identity.
        view: ViewId,
        /// The installed member set, as a rank bitmask.
        members: AckBits,
    },
    /// The member delivered an update to its application.
    Delivered {
        /// Emitting member.
        pid: ProcessId,
        /// Local clocks at delivery.
        at: ClockStamp,
        /// The delivered proposal.
        id: ProposalId,
        /// Its ordinal, when known at delivery time (unordered updates
        /// may legally deliver before ordering).
        ordinal: Option<Ordinal>,
        /// The semantics it was broadcast with.
        semantics: Semantics,
        /// Its synchronized send timestamp.
        send_ts: SyncTime,
        /// The view the member was in when it delivered.
        view: ViewId,
    },
    /// A new decider marked undeliverable proposals while creating a
    /// group (§4.3).
    Purged {
        /// Emitting (creating) member.
        pid: ProcessId,
        /// Local clocks at creation.
        at: ClockStamp,
        /// The freshly created view.
        view: ViewId,
        /// Proposals lost with the departed members (category 1).
        lost: u32,
        /// Order/atomicity orphans (categories 2–3).
        orphaned: u32,
        /// Unknown-dependency marks (category 4).
        unknown: u32,
    },
    /// A chaos harness injected a fault into the run. Emitted by the
    /// fault-injection transport and the chaos controller — never by the
    /// protocol — so recordings of adversarial runs are self-describing.
    FaultInjected {
        /// The node whose traffic or lifecycle was affected (for link
        /// faults, the sending side).
        pid: ProcessId,
        /// Injection time (the harness's clock; `sync` is its best
        /// global estimate).
        at: ClockStamp,
        /// What was injected.
        kind: FaultKind,
        /// The link's far end for link faults; `pid` itself for
        /// node-scoped faults (crash/restart/pause/resume).
        target: ProcessId,
        /// Kind-specific detail: hold/delay in milliseconds for
        /// `Reorder`/`Delay`, the flipped byte offset for `Corrupt`,
        /// the schedule step index for controller ops, else 0.
        arg: u32,
    },
    /// An event tag this consumer does not know (newer producer); the
    /// payload was skipped. Lets old auditors tail new clusters.
    Unknown {
        /// The unrecognized wire tag.
        tag: u8,
    },
}

impl TraceEvent {
    /// Static label for metrics keys and debug output.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::DecisionSent { .. } => "decision-sent",
            TraceEvent::DecisionReceived { .. } => "decision-received",
            TraceEvent::SuspicionRaised { .. } => "suspicion-raised",
            TraceEvent::NoDecisionHop { .. } => "no-decision-hop",
            TraceEvent::WrongSuspicionRescue { .. } => "wrong-suspicion-rescue",
            TraceEvent::ReconfigSlotFired { .. } => "reconfig-slot-fired",
            TraceEvent::ViewInstalled { .. } => "view-installed",
            TraceEvent::Delivered { .. } => "delivered",
            TraceEvent::Purged { .. } => "purged",
            TraceEvent::FaultInjected { .. } => "fault-injected",
            TraceEvent::Unknown { .. } => "unknown",
        }
    }

    /// The emitting member, when known.
    pub fn pid(&self) -> Option<ProcessId> {
        match self {
            TraceEvent::DecisionSent { pid, .. }
            | TraceEvent::DecisionReceived { pid, .. }
            | TraceEvent::SuspicionRaised { pid, .. }
            | TraceEvent::NoDecisionHop { pid, .. }
            | TraceEvent::WrongSuspicionRescue { pid, .. }
            | TraceEvent::ReconfigSlotFired { pid, .. }
            | TraceEvent::ViewInstalled { pid, .. }
            | TraceEvent::Delivered { pid, .. }
            | TraceEvent::Purged { pid, .. }
            | TraceEvent::FaultInjected { pid, .. } => Some(*pid),
            TraceEvent::Unknown { .. } => None,
        }
    }

    /// The event's clock stamp, when known.
    pub fn stamp(&self) -> Option<ClockStamp> {
        match self {
            TraceEvent::DecisionSent { at, .. }
            | TraceEvent::DecisionReceived { at, .. }
            | TraceEvent::SuspicionRaised { at, .. }
            | TraceEvent::NoDecisionHop { at, .. }
            | TraceEvent::WrongSuspicionRescue { at, .. }
            | TraceEvent::ReconfigSlotFired { at, .. }
            | TraceEvent::ViewInstalled { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Purged { at, .. }
            | TraceEvent::FaultInjected { at, .. } => Some(*at),
            TraceEvent::Unknown { .. } => None,
        }
    }
}

/// Where trace events go. Implementations must tolerate concurrent
/// `record` calls (cluster members emit from their own threads).
pub trait TraceSink: Send + Sync {
    /// Consume one event. Called on the emitting member's thread; keep it
    /// cheap.
    fn record(&self, ev: &TraceEvent);
}

/// A member's handle on its (optional) trace sink.
///
/// `Tracer` is deliberately cheap to clone and carry inside protocol
/// state: a disabled tracer is a `None` and [`Tracer::emit`] never even
/// builds the event, so tracing costs nothing unless a sink is attached.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<dyn TraceSink>>);

impl Tracer {
    /// A tracer with no sink: every emit is a no-op.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer feeding `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer(Some(sink))
    }

    /// Is a sink attached?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event produced by `make` — if and only if a sink is
    /// attached. The closure keeps the disabled path free of even the
    /// event construction.
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.record(&make());
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "Tracer(attached)"
        } else {
            "Tracer(disabled)"
        })
    }
}

/// A sink that buffers every event in memory — the test workhorse.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// An empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.lock().clone()
    }

    /// Take (and clear) everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.lock())
    }

    /// How many events were recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl TraceSink for VecSink {
    fn record(&self, ev: &TraceEvent) {
        self.lock().push(*ev);
    }
}

/// Fans every event out to several sinks, in order — e.g. a node's
/// flight recorder plus a cluster-wide live auditor.
#[derive(Default)]
pub struct TeeSink(Vec<Arc<dyn TraceSink>>);

impl TeeSink {
    /// A tee over `sinks`, invoked in the given order.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        TeeSink(sinks)
    }
}

impl TraceSink for TeeSink {
    fn record(&self, ev: &TraceEvent) {
        for sink in &self.0 {
            sink.record(ev);
        }
    }
}

impl fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TeeSink({} sinks)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent::DecisionSent {
            pid: ProcessId(1),
            at: ClockStamp {
                hw: HwTime(10),
                sync: SyncTime(12),
            },
            send_ts: SyncTime(12),
            view: ViewId::new(3, ProcessId(0)),
        }
    }

    #[test]
    fn disabled_tracer_never_builds_the_event() {
        let t = Tracer::disabled();
        let mut built = false;
        t.emit(|| {
            built = true;
            sample()
        });
        assert!(!built);
        assert!(!t.is_enabled());
    }

    #[test]
    fn vec_sink_records_in_order() {
        let sink = Arc::new(VecSink::new());
        let t = Tracer::new(sink.clone());
        assert!(t.is_enabled());
        t.emit(sample);
        t.emit(|| TraceEvent::Unknown { tag: 200 });
        let evs = sink.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].label(), "decision-sent");
        assert_eq!(evs[0].pid(), Some(ProcessId(1)));
        assert_eq!(evs[1].pid(), None);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn tee_sink_fans_out_to_every_sink() {
        let a = Arc::new(VecSink::new());
        let b = Arc::new(VecSink::new());
        let tee = TeeSink::new(vec![
            a.clone() as Arc<dyn TraceSink>,
            b.clone() as Arc<dyn TraceSink>,
        ]);
        let t = Tracer::new(Arc::new(tee));
        t.emit(sample);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn cloned_tracers_share_the_sink() {
        let sink = Arc::new(VecSink::new());
        let t = Tracer::new(sink.clone());
        let t2 = t.clone();
        t.emit(sample);
        t2.emit(sample);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn labels_and_stamps_cover_all_variants() {
        let at = ClockStamp::default();
        let pid = ProcessId(0);
        let view = ViewId::new(1, pid);
        let all = [
            sample(),
            TraceEvent::DecisionReceived {
                pid,
                at,
                from: ProcessId(1),
                send_ts: SyncTime(1),
                view,
            },
            TraceEvent::SuspicionRaised {
                pid,
                at,
                suspect: ProcessId(1),
                view,
            },
            TraceEvent::NoDecisionHop {
                pid,
                at,
                suspect: ProcessId(1),
                send_ts: SyncTime(1),
                view,
            },
            TraceEvent::WrongSuspicionRescue {
                pid,
                at,
                suspect: ProcessId(1),
                view,
            },
            TraceEvent::ReconfigSlotFired {
                pid,
                at,
                slot: 7,
                listed: 2,
                empty: false,
            },
            TraceEvent::ViewInstalled {
                pid,
                at,
                view,
                members: AckBits(0b111),
            },
            TraceEvent::Delivered {
                pid,
                at,
                id: ProposalId::new(pid, 1),
                ordinal: Some(Ordinal(4)),
                semantics: Semantics::TOTAL_STRONG,
                send_ts: SyncTime(1),
                view,
            },
            TraceEvent::Purged {
                pid,
                at,
                view,
                lost: 1,
                orphaned: 2,
                unknown: 0,
            },
            TraceEvent::FaultInjected {
                pid,
                at,
                kind: FaultKind::Drop,
                target: ProcessId(1),
                arg: 0,
            },
        ];
        let labels: std::collections::BTreeSet<_> = all.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), all.len(), "labels must be distinct");
        for e in &all {
            assert!(e.pid().is_some());
            assert!(e.stamp().is_some());
        }
    }

    #[test]
    fn fault_kinds_roundtrip_with_distinct_labels() {
        let labels: std::collections::BTreeSet<_> =
            FaultKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(labels.len(), FaultKind::ALL.len());
        for (i, k) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(*k as u8, i as u8, "wire byte must match position");
            assert_eq!(FaultKind::from_u8(*k as u8), Some(*k));
        }
        assert_eq!(FaultKind::from_u8(FaultKind::ALL.len() as u8), None);
    }
}
