//! Wire codec for trace events: `tag(u8) · len(u16) · payload`.
//!
//! The explicit payload length is what buys forward compatibility in
//! both directions:
//!
//! * an **unknown tag** decodes to [`TraceEvent::Unknown`] — the payload
//!   is skipped, and the rest of the stream stays parseable;
//! * a **known tag with extra trailing payload bytes** (a newer producer
//!   appended fields) still decodes: parsing reads the fields it knows
//!   and discards the remainder of the frame.
//!
//! Field encodings reuse [`tw_proto::codec`]'s little-endian primitives,
//! so trace frames and protocol datagrams share one wire vocabulary.
//! Decoding is total: arbitrary bytes either decode or return a
//! [`WireError`], never panic (fuzzed in `tests/prop_codec.rs`).

use crate::trace::{ClockStamp, FaultKind, TraceEvent};
use bytes::{BufMut, Bytes, BytesMut};
use tw_proto::codec::{Decode, Encode, WireError};
use tw_proto::{HwTime, Ordinal, SyncTime};

/// Highest event tag this version of the crate produces.
pub const MAX_KNOWN_TAG: u8 = 9;

impl Encode for ClockStamp {
    fn encode(&self, buf: &mut BytesMut) {
        self.hw.encode(buf);
        self.sync.encode(buf);
    }
}

impl Decode for ClockStamp {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ClockStamp {
            hw: HwTime::decode(buf)?,
            sync: SyncTime::decode(buf)?,
        })
    }
}

fn encode_ordinal_opt(o: &Option<Ordinal>, buf: &mut BytesMut) {
    match o {
        Some(v) => {
            true.encode(buf);
            v.encode(buf);
        }
        None => false.encode(buf),
    }
}

fn decode_ordinal_opt(buf: &mut Bytes) -> Result<Option<Ordinal>, WireError> {
    if bool::decode(buf)? {
        Ok(Some(Ordinal::decode(buf)?))
    } else {
        Ok(None)
    }
}

impl TraceEvent {
    /// The variant's wire tag. [`TraceEvent::Unknown`] re-encodes under
    /// the tag it was decoded with (and an empty payload).
    pub fn tag(&self) -> u8 {
        match self {
            TraceEvent::DecisionSent { .. } => 0,
            TraceEvent::DecisionReceived { .. } => 1,
            TraceEvent::SuspicionRaised { .. } => 2,
            TraceEvent::NoDecisionHop { .. } => 3,
            TraceEvent::WrongSuspicionRescue { .. } => 4,
            TraceEvent::ReconfigSlotFired { .. } => 5,
            TraceEvent::ViewInstalled { .. } => 6,
            TraceEvent::Delivered { .. } => 7,
            TraceEvent::Purged { .. } => 8,
            TraceEvent::FaultInjected { .. } => 9,
            TraceEvent::Unknown { tag } => *tag,
        }
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        match self {
            TraceEvent::DecisionSent {
                pid,
                at,
                send_ts,
                view,
            } => {
                pid.encode(buf);
                at.encode(buf);
                send_ts.encode(buf);
                view.encode(buf);
            }
            TraceEvent::DecisionReceived {
                pid,
                at,
                from,
                send_ts,
                view,
            } => {
                pid.encode(buf);
                at.encode(buf);
                from.encode(buf);
                send_ts.encode(buf);
                view.encode(buf);
            }
            TraceEvent::SuspicionRaised {
                pid,
                at,
                suspect,
                view,
            }
            | TraceEvent::WrongSuspicionRescue {
                pid,
                at,
                suspect,
                view,
            } => {
                pid.encode(buf);
                at.encode(buf);
                suspect.encode(buf);
                view.encode(buf);
            }
            TraceEvent::NoDecisionHop {
                pid,
                at,
                suspect,
                send_ts,
                view,
            } => {
                pid.encode(buf);
                at.encode(buf);
                suspect.encode(buf);
                send_ts.encode(buf);
                view.encode(buf);
            }
            TraceEvent::ReconfigSlotFired {
                pid,
                at,
                slot,
                listed,
                empty,
            } => {
                pid.encode(buf);
                at.encode(buf);
                slot.encode(buf);
                listed.encode(buf);
                empty.encode(buf);
            }
            TraceEvent::ViewInstalled {
                pid,
                at,
                view,
                members,
            } => {
                pid.encode(buf);
                at.encode(buf);
                view.encode(buf);
                members.encode(buf);
            }
            TraceEvent::Delivered {
                pid,
                at,
                id,
                ordinal,
                semantics,
                send_ts,
                view,
            } => {
                pid.encode(buf);
                at.encode(buf);
                id.encode(buf);
                encode_ordinal_opt(ordinal, buf);
                semantics.encode(buf);
                send_ts.encode(buf);
                view.encode(buf);
            }
            TraceEvent::Purged {
                pid,
                at,
                view,
                lost,
                orphaned,
                unknown,
            } => {
                pid.encode(buf);
                at.encode(buf);
                view.encode(buf);
                lost.encode(buf);
                orphaned.encode(buf);
                unknown.encode(buf);
            }
            TraceEvent::FaultInjected {
                pid,
                at,
                kind,
                target,
                arg,
            } => {
                pid.encode(buf);
                at.encode(buf);
                (*kind as u8).encode(buf);
                target.encode(buf);
                arg.encode(buf);
            }
            TraceEvent::Unknown { .. } => {}
        }
    }

    fn decode_payload(tag: u8, buf: &mut Bytes) -> Result<TraceEvent, WireError> {
        Ok(match tag {
            0 => TraceEvent::DecisionSent {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                send_ts: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
            },
            1 => TraceEvent::DecisionReceived {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                from: Decode::decode(buf)?,
                send_ts: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
            },
            2 => TraceEvent::SuspicionRaised {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                suspect: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
            },
            3 => TraceEvent::NoDecisionHop {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                suspect: Decode::decode(buf)?,
                send_ts: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
            },
            4 => TraceEvent::WrongSuspicionRescue {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                suspect: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
            },
            5 => TraceEvent::ReconfigSlotFired {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                slot: Decode::decode(buf)?,
                listed: Decode::decode(buf)?,
                empty: Decode::decode(buf)?,
            },
            6 => TraceEvent::ViewInstalled {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
                members: Decode::decode(buf)?,
            },
            7 => TraceEvent::Delivered {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                id: Decode::decode(buf)?,
                ordinal: decode_ordinal_opt(buf)?,
                semantics: Decode::decode(buf)?,
                send_ts: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
            },
            8 => TraceEvent::Purged {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                view: Decode::decode(buf)?,
                lost: Decode::decode(buf)?,
                orphaned: Decode::decode(buf)?,
                unknown: Decode::decode(buf)?,
            },
            9 => TraceEvent::FaultInjected {
                pid: Decode::decode(buf)?,
                at: Decode::decode(buf)?,
                kind: {
                    let b = u8::decode(buf)?;
                    FaultKind::from_u8(b).ok_or(WireError::BadTag {
                        what: "fault kind",
                        tag: b,
                    })?
                },
                target: Decode::decode(buf)?,
                arg: Decode::decode(buf)?,
            },
            _ => unreachable!("caller routes unknown tags"),
        })
    }
}

impl Encode for TraceEvent {
    fn encode(&self, buf: &mut BytesMut) {
        let mut payload = BytesMut::with_capacity(64);
        self.encode_payload(&mut payload);
        self.tag().encode(buf);
        debug_assert!(payload.len() <= u16::MAX as usize);
        (payload.len() as u16).encode(buf);
        buf.put_slice(&payload);
    }
}

impl Decode for TraceEvent {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let tag = u8::decode(buf)?;
        let len = u16::decode(buf)? as usize;
        if buf.len() < len {
            return Err(WireError::UnexpectedEof {
                what: "trace event payload",
            });
        }
        let mut payload = buf.split_to(len);
        if tag > MAX_KNOWN_TAG {
            // Newer producer: skip the frame, keep the stream parseable.
            return Ok(TraceEvent::Unknown { tag });
        }
        // Trailing payload bytes (fields appended by a newer producer)
        // are deliberately ignored.
        TraceEvent::decode_payload(tag, &mut payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_proto::{AckBits, ProcessId, ProposalId, Semantics, ViewId};

    fn stamp(hw: i64, sync: i64) -> ClockStamp {
        ClockStamp {
            hw: HwTime(hw),
            sync: SyncTime(sync),
        }
    }

    fn all_variants() -> Vec<TraceEvent> {
        let pid = ProcessId(3);
        let view = ViewId::new(7, ProcessId(1));
        let at = stamp(1_000, 1_002);
        vec![
            TraceEvent::DecisionSent {
                pid,
                at,
                send_ts: SyncTime(5),
                view,
            },
            TraceEvent::DecisionReceived {
                pid,
                at,
                from: ProcessId(2),
                send_ts: SyncTime(5),
                view,
            },
            TraceEvent::SuspicionRaised {
                pid,
                at,
                suspect: ProcessId(4),
                view,
            },
            TraceEvent::NoDecisionHop {
                pid,
                at,
                suspect: ProcessId(4),
                send_ts: SyncTime(6),
                view,
            },
            TraceEvent::WrongSuspicionRescue {
                pid,
                at,
                suspect: ProcessId(0),
                view,
            },
            TraceEvent::ReconfigSlotFired {
                pid,
                at,
                slot: -3,
                listed: 4,
                empty: true,
            },
            TraceEvent::ViewInstalled {
                pid,
                at,
                view,
                members: AckBits(0b1_0111),
            },
            TraceEvent::Delivered {
                pid,
                at,
                id: ProposalId::new(ProcessId(2), 9),
                ordinal: Some(Ordinal(11)),
                semantics: Semantics::TOTAL_STRONG,
                send_ts: SyncTime(4),
                view,
            },
            TraceEvent::Delivered {
                pid,
                at,
                id: ProposalId::new(ProcessId(2), 10),
                ordinal: None,
                semantics: Semantics::UNORDERED_WEAK,
                send_ts: SyncTime(5),
                view,
            },
            TraceEvent::Purged {
                pid,
                at,
                view,
                lost: 1,
                orphaned: 2,
                unknown: 3,
            },
            TraceEvent::FaultInjected {
                pid,
                at,
                kind: FaultKind::Corrupt,
                target: ProcessId(1),
                arg: 17,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for ev in all_variants() {
            let bytes = ev.to_bytes();
            let back = TraceEvent::from_bytes(&bytes).unwrap();
            assert_eq!(back, ev, "roundtrip of {}", ev.label());
        }
    }

    #[test]
    fn a_stream_of_events_decodes_in_sequence() {
        let evs = all_variants();
        let mut buf = BytesMut::new();
        for ev in &evs {
            ev.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        for ev in &evs {
            assert_eq!(&TraceEvent::decode(&mut bytes).unwrap(), ev);
        }
        assert!(bytes.is_empty());
    }

    #[test]
    fn unknown_tag_skips_payload_and_keeps_stream() {
        // Frame a fictitious tag-42 event with 5 payload bytes, followed
        // by a real event.
        let mut buf = BytesMut::new();
        42u8.encode(&mut buf);
        5u16.encode(&mut buf);
        buf.put_slice(&[9, 9, 9, 9, 9]);
        let real = all_variants().remove(0);
        real.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(
            TraceEvent::decode(&mut bytes).unwrap(),
            TraceEvent::Unknown { tag: 42 }
        );
        assert_eq!(TraceEvent::decode(&mut bytes).unwrap(), real);
        assert!(bytes.is_empty());
    }

    #[test]
    fn known_tag_with_appended_fields_still_decodes() {
        // A newer producer appends bytes to a DecisionSent payload; we
        // must parse the fields we know and skip the rest of the frame.
        let ev = all_variants().remove(0);
        let mut payload = BytesMut::new();
        ev.encode_payload(&mut payload);
        payload.put_slice(&[1, 2, 3]);
        let mut buf = BytesMut::new();
        ev.tag().encode(&mut buf);
        (payload.len() as u16).encode(&mut buf);
        buf.put_slice(&payload);
        let mut bytes = buf.freeze();
        assert_eq!(TraceEvent::decode(&mut bytes).unwrap(), ev);
        assert!(bytes.is_empty());
    }

    #[test]
    fn truncated_input_errors_without_panicking() {
        let full = all_variants().remove(7).to_bytes(); // Delivered
        for cut in 0..full.len() {
            let r = TraceEvent::from_bytes(&full[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn bad_fault_kind_byte_errors_without_panicking() {
        // Frame a FaultInjected event whose kind byte is a value this
        // version does not know: decoding must fail cleanly, not panic
        // and not alias onto another kind.
        let pid = ProcessId(2);
        let mut payload = BytesMut::new();
        pid.encode(&mut payload);
        stamp(5, 6).encode(&mut payload);
        255u8.encode(&mut payload);
        pid.encode(&mut payload);
        0u32.encode(&mut payload);
        let mut buf = BytesMut::new();
        9u8.encode(&mut buf);
        (payload.len() as u16).encode(&mut buf);
        buf.put_slice(&payload);
        let mut bytes = buf.freeze();
        assert!(matches!(
            TraceEvent::decode(&mut bytes),
            Err(WireError::BadTag {
                what: "fault kind",
                tag: 255
            })
        ));
    }

    #[test]
    fn unknown_reencodes_as_empty_frame() {
        let ev = TraceEvent::Unknown { tag: 99 };
        let bytes = ev.to_bytes();
        assert_eq!(bytes.len(), 3); // tag + zero length
        assert_eq!(TraceEvent::from_bytes(&bytes).unwrap(), ev);
    }
}
