//! A lock-minimal metrics registry: named counters, gauges and bucketed
//! latency histograms.
//!
//! Registration takes a short mutex hold on a `BTreeMap`; the returned
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles update shared atomics with no lock
//! at all, so hot protocol paths pay one `fetch_add` per event. All keys
//! and snapshot orderings are `BTreeMap`-based, so two runs that count
//! the same events export byte-identical JSON — the property the
//! determinism lint protects everywhere else in the workspace.
//!
//! Histogram values are integer microseconds: bucket bounds, counts and
//! sums are all `u64`, keeping the crate free of floating point. Even
//! the percentile summaries in snapshots ([`HistogramSnapshot::quantile`]
//! and the `p50`/`p95`/`p99` JSON fields) are integer rank arithmetic
//! over the buckets: a quantile is reported as the upper bound of the
//! bucket containing its rank — a deterministic upper estimate, never an
//! interpolation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default histogram bucket upper bounds for latencies, in microseconds
/// (roughly logarithmic from 1 µs to 1 s).
pub const LATENCY_BOUNDS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000,
];

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not in any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A gauge handle: a level that can move both ways (inbox depth,
/// recorder buffer occupancy, batch fill). Cloning shares the cell.
///
/// Signed by design — a gauge is a *level*, not a rate, and transient
/// levels (e.g. a backlog delta) can legitimately dip below zero.
/// Unlike counters, a gauge's snapshot delta is the later level itself:
/// subtracting two levels would yield a meaningless slope sample.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge (not in any registry), starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level up by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Move the level down by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing; an implicit overflow
    /// bucket catches everything above the last bound.
    bounds: Vec<u64>,
    /// One cell per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A bucketed histogram handle. Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A free-standing histogram over `bounds` (inclusive upper bounds,
    /// strictly increasing).
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of counters, gauges and histograms.
///
/// The mutex guards only (de)registration and snapshotting; updates go
/// through the handles and never touch it.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, registering it at zero on first use.
    /// The same name always yields handles on the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Counter::new();
        inner.counters.insert(name.to_owned(), c.clone());
        c
    }

    /// The gauge named `name`, registering it at zero on first use.
    /// The same name always yields handles on the same cell.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::new();
        inner.gauges.insert(name.to_owned(), g.clone());
        g
    }

    /// Current level of the gauge named `name` (zero if absent).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.lock().gauges.get(name).map(Gauge::get).unwrap_or(0)
    }

    /// The histogram named `name`, registering it over `bounds` on first
    /// use (later calls reuse the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = Histogram::new(bounds);
        inner.histograms.insert(name.to_owned(), h.clone());
        h
    }

    /// Current value of the counter named `name` (zero if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).map(Counter::get).unwrap_or(0)
    }

    /// Zero every counter, gauge and histogram, keeping all handles
    /// valid.
    pub fn reset(&self) {
        let inner = self.lock();
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.snapshot(), f)
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one more entry than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The `num/den` quantile (e.g. `quantile(95, 100)` for p95) as the
    /// inclusive upper bound of the bucket holding that rank.
    ///
    /// Integer-only by design: the rank is `ceil(count · num / den)`
    /// (computed in `u128`, so it cannot overflow), and the answer is a
    /// bucket *bound*, not an interpolated value — an upper estimate
    /// with error bounded by the bucket width. Returns `None` when the
    /// histogram is empty or the rank falls in the overflow bucket
    /// (above every finite bound, so no finite estimate exists).
    pub fn quantile(&self, num: u64, den: u64) -> Option<u64> {
        if self.count == 0 || den == 0 {
            return None;
        }
        let num = self.count as u128 * num as u128;
        let den = den as u128;
        let rank = ((num + den - 1) / den).max(1);
        let mut seen: u128 = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += *b as u128;
            if seen >= rank {
                return self.bounds.get(i).copied();
            }
        }
        None
    }

    fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let same_shape = earlier.bounds == self.bounds;
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let e = if same_shape {
                        earlier.buckets.get(i).copied().unwrap_or(0)
                    } else {
                        0
                    };
                    b.saturating_sub(e)
                })
                .collect(),
            count: self
                .count
                .saturating_sub(if same_shape { earlier.count } else { 0 }),
            sum: self
                .sum
                .saturating_sub(if same_shape { earlier.sum } else { 0 }),
        }
    }
}

/// A deterministic point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The counter named `name` (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge named `name` (zero if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The change from `earlier` to `self`, per metric. Metrics absent
    /// from `earlier` count from zero; a reset in between saturates to
    /// zero instead of underflowing. Gauges are *levels*, so the delta
    /// keeps the later level unchanged rather than subtracting.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        match earlier.histograms.get(k) {
                            Some(e) => h.delta(e),
                            None => h.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Render as a JSON object. Keys appear in `BTreeMap` order, so the
    /// output is deterministic for a given snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push_str(":{\"bounds\":");
            push_json_u64s(&mut out, &h.bounds);
            out.push_str(",\"buckets\":");
            push_json_u64s(&mut out, &h.buckets);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            for (label, num) in [("p50", 50u64), ("p95", 95), ("p99", 99)] {
                if let Some(q) = h.quantile(num, 100) {
                    out.push_str(",\"");
                    out.push_str(label);
                    out.push_str("\":");
                    out.push_str(&q.to_string());
                }
            }
            out.push_str(",\"sum\":");
            out.push_str(&h.sum.to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_u64s(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_cell() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x"), 3);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("absent"), 0);
    }

    #[test]
    fn histogram_buckets_by_inclusive_bound() {
        let h = Histogram::new(&[10, 100]);
        h.record(5);
        h.record(10);
        h.record(11);
        h.record(1_000); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 5 + 10 + 11 + 1_000);
    }

    #[test]
    fn snapshot_delta_subtracts_per_metric() {
        let r = Registry::new();
        let c = r.counter("sends.decision");
        let h = r.histogram("lat", &[10]);
        c.add(5);
        h.record(3);
        let before = r.snapshot();
        c.add(2);
        h.record(30);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter("sends.decision"), 2);
        assert_eq!(d.histograms["lat"].count, 1);
        assert_eq!(d.histograms["lat"].buckets, vec![0, 1]);
        assert_eq!(d.histograms["lat"].sum, 30);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("a");
        let h = r.histogram("b", &[1]);
        c.inc();
        h.record(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.counter_value("a"), 1);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").add(2);
        r.gauge("depth").set(-3);
        r.histogram("lat", &[5, 50]).record(7);
        let j = r.snapshot().to_json();
        assert_eq!(
            j,
            "{\"counters\":{\"a\":2,\"z\":1},\"gauges\":{\"depth\":-3},\
             \"histograms\":{\"lat\":{\"bounds\":[5,50],\
             \"buckets\":[0,1,0],\"count\":1,\"p50\":50,\"p95\":50,\"p99\":50,\"sum\":7}}}"
        );
        // Stable across snapshots.
        assert_eq!(j, r.snapshot().to_json());
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new(&[10, 100, 1_000]);
        for _ in 0..50 {
            h.record(5); // bucket ≤10
        }
        for _ in 0..45 {
            h.record(50); // bucket ≤100
        }
        for _ in 0..5 {
            h.record(500); // bucket ≤1000
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(50, 100), Some(10)); // rank 50 is the last ≤10
        assert_eq!(s.quantile(95, 100), Some(100)); // rank 95 is the last ≤100
        assert_eq!(s.quantile(99, 100), Some(1_000));
        assert_eq!(s.quantile(100, 100), Some(1_000));
    }

    #[test]
    fn quantiles_of_empty_or_overflowed_histograms_are_absent() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.snapshot().quantile(50, 100), None);
        // Everything above the last bound: no finite estimate, and the
        // JSON omits the percentile keys rather than inventing a bound.
        h.record(11);
        let s = h.snapshot();
        assert_eq!(s.quantile(50, 100), None);
        let r = Registry::new();
        let rh = r.histogram("over", &[10]);
        rh.record(11);
        let j = r.snapshot().to_json();
        assert!(!j.contains("p50"), "{j}");
        // A mixed histogram still reports the quantiles that resolve.
        rh.record(1);
        let s = r.snapshot();
        assert_eq!(s.histograms["over"].quantile(50, 100), Some(10));
        assert_eq!(s.histograms["over"].quantile(99, 100), None);
        let j = s.to_json();
        assert!(j.contains("\"p50\":10"), "{j}");
        assert!(!j.contains("p99"), "{j}");
    }

    #[test]
    fn gauge_handles_share_the_cell_and_move_both_ways() {
        let r = Registry::new();
        let a = r.gauge("inbox.depth");
        let b = r.gauge("inbox.depth");
        a.set(10);
        b.add(5);
        a.sub(20);
        assert_eq!(r.gauge_value("inbox.depth"), -5);
        assert_eq!(b.get(), -5);
        assert_eq!(r.gauge_value("absent"), 0);
        assert_eq!(r.snapshot().gauge("inbox.depth"), -5);
    }

    #[test]
    fn gauge_delta_keeps_the_later_level() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(100);
        let before = r.snapshot();
        g.set(40);
        let after = r.snapshot();
        // Levels are not rates: the delta reports where the gauge *is*.
        assert_eq!(after.delta(&before).gauge("depth"), 40);
    }

    #[test]
    fn reset_zeroes_gauges_but_keeps_handles() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(7);
        r.reset();
        assert_eq!(g.get(), 0);
        g.add(3);
        assert_eq!(r.gauge_value("depth"), 3);
    }

    #[test]
    fn json_escapes_odd_names() {
        let r = Registry::new();
        r.counter("we\"ird\\name").inc();
        let j = r.snapshot().to_json();
        assert!(j.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn latency_bounds_are_increasing() {
        assert!(LATENCY_BOUNDS_US.windows(2).all(|w| w[0] < w[1]));
    }
}
