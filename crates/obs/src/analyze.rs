//! Offline cross-node trace analysis: merge per-node recordings on the
//! synchronized clock, reconstruct protocol spans, attribute per-phase
//! latency, and audit the merged stream.
//!
//! The paper's fail-aware clock synchronization guarantees that two
//! synchronized clocks deviate by at most ε — which makes the `sync`
//! component of every [`ClockStamp`] a *global* coordinate, accurate to
//! ε. This module exploits exactly that: recordings from N nodes merge
//! into one timeline by sorting on synchronized time (ties broken by
//! process id and per-node order, so the merge is deterministic), and ε
//! is the fuzz bound — any apparent causality inversion larger than ε
//! (a decision *received* more than ε before it was *sent*) is flagged,
//! anything within ε is clock noise and clamped.
//!
//! Reconstructed spans mirror the paper's timed claims:
//!
//! * **decision lifecycle** (§4.1) — one `DecisionSent`, matched to the
//!   `DecisionReceived` it caused at every other member; propagation
//!   latency per receiver.
//! * **single-failure recovery** (§4.2) — first `SuspicionRaised` for a
//!   suspect, every `NoDecisionHop` of the ring, and the survivors'
//!   installations of the suspect-free view, with the latency of each
//!   hop attributed.
//! * **reconfiguration** (§4.4) — first `ReconfigSlotFired` through the
//!   resulting view installations.
//!
//! The merged stream is also re-run through the live [`Auditor`] plus
//! two checks only an *offline, complete* view can make: majority-view
//! overlap between consecutive views, and oal-prefix agreement (every
//! member's delivered ordinals form a gapless prefix of the view's
//! global ordinal chain).
//!
//! Everything here is pure: recordings in, report out. File I/O lives in
//! [`crate::recording`] and the `tw-trace` binary.

use crate::audit::{Auditor, Violation};
use crate::metrics::{Registry, Snapshot, LATENCY_BOUNDS_US};
use crate::recording::Recording;
use crate::trace::TraceEvent;
use std::collections::{BTreeMap, BTreeSet};
use tw_proto::{AckBits, Duration, Ordinal, ProcessId, SyncTime, ViewId};

/// A set of per-node recordings, validated for joint analysis.
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// The recordings, one per node, sorted by process id.
    pub recordings: Vec<Recording>,
    /// Team size: the headers' consensus, or their maximum if they
    /// disagree (a node recorded before a reconfiguration).
    pub team: usize,
    /// The alignment fuzz bound ε: the maximum over the headers.
    pub epsilon: Duration,
}

impl TraceSet {
    /// Assemble a trace set. Fails on an empty set or duplicate process
    /// ids (two recordings claiming the same node).
    pub fn new(mut recordings: Vec<Recording>) -> Result<TraceSet, String> {
        if recordings.is_empty() {
            return Err("no recordings to analyze".into());
        }
        recordings.sort_by_key(|r| r.pid);
        for w in recordings.windows(2) {
            if w[0].pid == w[1].pid {
                return Err(format!("two recordings claim node {}", w[0].pid));
            }
        }
        let team = recordings.iter().map(|r| r.team).max().unwrap_or(0);
        let team = if team == 0 { recordings.len() } else { team };
        let epsilon = recordings
            .iter()
            .map(|r| r.epsilon)
            .max()
            .unwrap_or(Duration::ZERO);
        Ok(TraceSet {
            recordings,
            team,
            epsilon,
        })
    }

    /// Merge all recordings into one globally ordered stream: sorted by
    /// synchronized stamp, ties broken by process id then per-node
    /// order. Events without a stamp (`TraceEvent::Unknown`) are
    /// dropped; the count of dropped events is returned alongside.
    pub fn merge(&self) -> (Vec<TraceEvent>, usize) {
        let mut keyed: Vec<(SyncTime, u16, usize, TraceEvent)> = Vec::new();
        let mut dropped = 0usize;
        for r in &self.recordings {
            for (i, ev) in r.events.iter().enumerate() {
                match ev.stamp() {
                    Some(at) => keyed.push((at.sync, r.pid.0, i, *ev)),
                    None => dropped += 1,
                }
            }
        }
        keyed.sort_by_key(|(t, p, i, _)| (*t, *p, *i));
        (keyed.into_iter().map(|(_, _, _, ev)| ev).collect(), dropped)
    }
}

/// One decision's lifecycle across the team.
#[derive(Debug, Clone)]
pub struct DecisionSpan {
    /// The decider that sent it.
    pub sender: ProcessId,
    /// The view it was sent in.
    pub view: ViewId,
    /// Its protocol send timestamp (the matching key).
    pub send_ts: SyncTime,
    /// Synchronized time at the sender when it was emitted.
    pub sent_at: SyncTime,
    /// Each receiver's acceptance, with its synchronized time.
    pub receives: Vec<(ProcessId, SyncTime)>,
}

/// One hop of a single-failure no-decision ring, with its latency share.
#[derive(Debug, Clone, Copy)]
pub struct HopAttribution {
    /// The member that sent this no-decision message.
    pub pid: ProcessId,
    /// Synchronized time of the hop.
    pub at: SyncTime,
    /// Time since the previous event of the span (the hop's cost).
    pub cost: Duration,
}

/// A single-failure recovery episode: suspicion → ring → view install.
#[derive(Debug, Clone)]
pub struct RecoverySpan {
    /// The removed member.
    pub suspect: ProcessId,
    /// Who first raised the suspicion, and when.
    pub first_suspicion: (ProcessId, SyncTime),
    /// Every no-decision hop, in merged order, with per-hop latency.
    pub hops: Vec<HopAttribution>,
    /// A wrong-suspicion rescue that ended the episode, if any (§4.2:
    /// the group survives unchanged).
    pub rescue: Option<(ProcessId, SyncTime)>,
    /// Each survivor's first installation of a suspect-free view.
    pub installs: Vec<(ProcessId, SyncTime, ViewId)>,
}

impl RecoverySpan {
    /// Synchronized time when the last survivor installed the new view.
    pub fn completed_at(&self) -> Option<SyncTime> {
        self.installs.iter().map(|(_, t, _)| *t).max()
    }

    /// Suspicion-to-last-install duration (the recovery envelope the
    /// paper bounds by one no-decision cycle).
    pub fn total(&self) -> Option<Duration> {
        self.completed_at().map(|t| t - self.first_suspicion.1)
    }
}

/// A reconfiguration episode: first slot fired → view installs.
#[derive(Debug, Clone)]
pub struct ReconfigSpan {
    /// The first reconfiguration slot fired, and by whom.
    pub first_slot: (ProcessId, SyncTime),
    /// Number of reconfiguration slot messages in the episode.
    pub slots: usize,
    /// View installations that closed the episode.
    pub installs: Vec<(ProcessId, SyncTime, ViewId)>,
}

impl ReconfigSpan {
    /// First-slot-to-last-install duration (§4.4: ≈ two slot rounds).
    pub fn total(&self) -> Option<Duration> {
        self.installs
            .iter()
            .map(|(_, t, _)| *t)
            .max()
            .map(|t| t - self.first_slot.1)
    }
}

/// The full offline analysis of a trace set.
#[derive(Debug)]
pub struct Analysis {
    /// Team size used for majority checks.
    pub team: usize,
    /// Alignment fuzz bound used for causality checks.
    pub epsilon: Duration,
    /// The merged, globally ordered stream.
    pub merged: Vec<TraceEvent>,
    /// Events dropped from the merge (unknown tags carry no stamp).
    pub dropped: usize,
    /// Decision lifecycles, in send order.
    pub decisions: Vec<DecisionSpan>,
    /// Recovery episodes, in suspicion order.
    pub recoveries: Vec<RecoverySpan>,
    /// Reconfiguration episodes.
    pub reconfigs: Vec<ReconfigSpan>,
    /// Violations from replaying the merged stream through the live
    /// [`Auditor`].
    pub audit: Vec<Violation>,
    /// Violations from the offline-only cross-node checks
    /// (majority-view overlap, oal-prefix agreement, ε-causality).
    pub cross: Vec<Violation>,
    /// Injected faults found in the stream, counted per kind label —
    /// non-empty exactly when the run was adversarial (self-describing
    /// chaos recordings).
    pub faults: BTreeMap<&'static str, u64>,
    /// Per-phase latency histograms (microseconds; see the
    /// `span.*` keys) with percentile summaries in the JSON snapshot.
    pub latencies: Snapshot,
}

impl Analysis {
    /// True when both the replayed audit and the cross-node checks are
    /// clean.
    pub fn audits_clean(&self) -> bool {
        self.audit.is_empty() && self.cross.is_empty()
    }
}

/// Analyze a trace set: merge, span reconstruction, latency
/// attribution, offline audit. Pure and deterministic.
pub fn analyze(set: &TraceSet) -> Analysis {
    let (merged, dropped) = set.merge();

    let decisions = decision_spans(&merged);
    let recoveries = recovery_spans(&merged);
    let reconfigs = reconfig_spans(&merged);

    // Per-phase latency attribution.
    let registry = Registry::new();
    let h = |name: &str| registry.histogram(name, LATENCY_BOUNDS_US);
    let prop = h("span.decision.propagation_us");
    for d in &decisions {
        for (_, at) in &d.receives {
            prop.record((*at - d.sent_at).as_micros().max(0) as u64);
        }
    }
    let first_hop = h("span.recovery.suspicion_to_first_hop_us");
    let hop_hop = h("span.recovery.hop_to_hop_us");
    let install = h("span.recovery.last_hop_to_install_us");
    let total = h("span.recovery.total_us");
    for r in &recoveries {
        if let Some(first) = r.hops.first() {
            first_hop.record(first.cost.as_micros().max(0) as u64);
        }
        for hop in r.hops.iter().skip(1) {
            hop_hop.record(hop.cost.as_micros().max(0) as u64);
        }
        if let Some(last) = r.hops.last() {
            if let Some(first_install) = r.installs.iter().map(|(_, t, _)| *t).min() {
                install.record((first_install - last.at).as_micros().max(0) as u64);
            }
        }
        if let Some(t) = r.total() {
            total.record(t.as_micros().max(0) as u64);
        }
    }
    let reconfig_h = h("span.reconfig.slot_to_install_us");
    for r in &reconfigs {
        if let Some(t) = r.total() {
            reconfig_h.record(t.as_micros().max(0) as u64);
        }
    }

    // Offline audit: the live checker over the merged stream…
    let mut auditor = Auditor::new(set.team);
    for ev in &merged {
        auditor.observe(ev);
    }
    // …plus the checks only a complete offline view can make.
    let mut cross = Vec::new();
    view_overlap_check(&merged, &mut cross);
    oal_prefix_check(&merged, &mut cross);
    causality_check(&decisions, set.epsilon, &mut cross);

    // Surface injected faults so adversarial runs read as such: the
    // protocol's guarantees must hold *despite* everything counted here.
    let mut faults: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in &merged {
        if let TraceEvent::FaultInjected { kind, .. } = ev {
            *faults.entry(kind.as_str()).or_insert(0) += 1;
        }
    }

    Analysis {
        team: set.team,
        epsilon: set.epsilon,
        merged,
        dropped,
        decisions,
        recoveries,
        reconfigs,
        audit: auditor.violations().to_vec(),
        cross,
        faults,
        latencies: registry.snapshot(),
    }
}

fn decision_spans(merged: &[TraceEvent]) -> Vec<DecisionSpan> {
    // Two passes: an ε-violating receive can *sort before* its send in
    // the merged stream, and the causality check exists precisely to
    // catch that — so index every send first, then attach receives.
    let mut spans: Vec<DecisionSpan> = Vec::new();
    let mut index: BTreeMap<(ViewId, SyncTime, ProcessId), usize> = BTreeMap::new();
    for ev in merged {
        if let TraceEvent::DecisionSent {
            pid,
            at,
            send_ts,
            view,
        } = *ev
        {
            index.insert((view, send_ts, pid), spans.len());
            spans.push(DecisionSpan {
                sender: pid,
                view,
                send_ts,
                sent_at: at.sync,
                receives: Vec::new(),
            });
        }
    }
    for ev in merged {
        if let TraceEvent::DecisionReceived {
            pid,
            at,
            from,
            send_ts,
            view,
        } = *ev
        {
            if let Some(&i) = index.get(&(view, send_ts, from)) {
                spans[i].receives.push((pid, at.sync));
            }
        }
    }
    spans
}

fn recovery_spans(merged: &[TraceEvent]) -> Vec<RecoverySpan> {
    let mut spans: Vec<RecoverySpan> = Vec::new();
    // At most one open episode per suspect: index into `spans`.
    let mut open: BTreeMap<ProcessId, usize> = BTreeMap::new();
    for ev in merged {
        match *ev {
            TraceEvent::SuspicionRaised { pid, at, suspect, .. } => {
                open.entry(suspect).or_insert_with(|| {
                    spans.push(RecoverySpan {
                        suspect,
                        first_suspicion: (pid, at.sync),
                        hops: Vec::new(),
                        rescue: None,
                        installs: Vec::new(),
                    });
                    spans.len() - 1
                });
            }
            TraceEvent::NoDecisionHop { pid, at, suspect, .. } => {
                if let Some(&i) = open.get(&suspect) {
                    let span = &mut spans[i];
                    let prev = span
                        .hops
                        .last()
                        .map(|h| h.at)
                        .unwrap_or(span.first_suspicion.1);
                    span.hops.push(HopAttribution {
                        pid,
                        at: at.sync,
                        cost: at.sync - prev,
                    });
                }
            }
            TraceEvent::WrongSuspicionRescue { pid, at, suspect, .. } => {
                if let Some(i) = open.remove(&suspect) {
                    spans[i].rescue = Some((pid, at.sync));
                }
            }
            TraceEvent::ViewInstalled {
                pid, at, view, members,
            } => {
                // Close every open episode whose suspect is outside the
                // freshly installed membership; record one install per
                // survivor per episode.
                let suspects: Vec<ProcessId> = open.keys().copied().collect();
                for s in suspects {
                    if members.contains(s) || pid == s {
                        continue;
                    }
                    let i = open[&s];
                    let span = &mut spans[i];
                    if !span.installs.iter().any(|(p, _, _)| *p == pid) {
                        span.installs.push((pid, at.sync, view));
                    }
                    // The episode stays open until every member of the
                    // new view has installed it.
                    if span.installs.len() >= members.count() {
                        open.remove(&s);
                    }
                }
            }
            _ => {}
        }
    }
    spans
}

fn reconfig_spans(merged: &[TraceEvent]) -> Vec<ReconfigSpan> {
    let mut spans: Vec<ReconfigSpan> = Vec::new();
    let mut open: Option<usize> = None;
    for ev in merged {
        match *ev {
            TraceEvent::ReconfigSlotFired { pid, at, .. } => match open {
                Some(i) => spans[i].slots += 1,
                None => {
                    open = Some(spans.len());
                    spans.push(ReconfigSpan {
                        first_slot: (pid, at.sync),
                        slots: 1,
                        installs: Vec::new(),
                    });
                }
            },
            TraceEvent::ViewInstalled { pid, at, view, members } => {
                if let Some(i) = open {
                    let span = &mut spans[i];
                    if !span.installs.iter().any(|(p, _, _)| *p == pid) {
                        span.installs.push((pid, at.sync, view));
                    }
                    if span.installs.len() >= members.count() {
                        open = None;
                    }
                }
            }
            _ => {}
        }
    }
    spans
}

/// Offline check: any two *consecutive* completed views must share at
/// least one member — the majority-chain property that lets state (and
/// the oal) survive every reconfiguration.
fn view_overlap_check(merged: &[TraceEvent], out: &mut Vec<Violation>) {
    let mut views: BTreeMap<ViewId, AckBits> = BTreeMap::new();
    for ev in merged {
        if let TraceEvent::ViewInstalled { view, members, .. } = *ev {
            views.entry(view).or_insert(members);
        }
    }
    let ordered: Vec<(ViewId, AckBits)> = views.into_iter().collect();
    for w in ordered.windows(2) {
        let ((va, ma), (vb, mb)) = (w[0], w[1]);
        if ma.0 & mb.0 == 0 {
            out.push(Violation::new(
                "view-overlap",
                format!("views {va:?} and {vb:?} share no member — the majority chain is broken"),
            ));
        }
    }
}

/// Offline check: per view, the ordinals any member delivered must form
/// a gapless prefix of the view's global ordinal chain — the cross-node
/// shape of oal-prefix agreement. (The live auditor checks pairwise
/// binding agreement; only a complete offline view can check *prefix*
/// completeness.)
fn oal_prefix_check(merged: &[TraceEvent], out: &mut Vec<Violation>) {
    // view → all ordinals seen; (pid, view) → that member's ordinals.
    let mut global: BTreeMap<ViewId, BTreeSet<Ordinal>> = BTreeMap::new();
    let mut per_member: BTreeMap<(ProcessId, ViewId), BTreeSet<Ordinal>> = BTreeMap::new();
    for ev in merged {
        if let TraceEvent::Delivered {
            pid,
            ordinal: Some(ord),
            view,
            ..
        } = *ev
        {
            global.entry(view).or_default().insert(ord);
            per_member.entry((pid, view)).or_default().insert(ord);
        }
    }
    for (view, chain) in &global {
        // The global chain itself must be gapless.
        let mut expect = *chain.iter().next().expect("non-empty chain");
        for ord in chain {
            if *ord != expect {
                out.push(Violation::new(
                    "oal-prefix",
                    format!(
                        "view {view:?}: global ordinal chain has a gap at {expect:?} (next bound ordinal is {ord:?})"
                    ),
                ));
                break;
            }
            expect = expect.next();
        }
    }
    for ((pid, view), ords) in &per_member {
        let chain = &global[view];
        // A member's ordinals must be exactly the first |ords| entries
        // of the global chain.
        let prefix: BTreeSet<Ordinal> = chain.iter().copied().take(ords.len()).collect();
        if *ords != prefix {
            out.push(Violation::new(
                "oal-prefix",
                format!(
                    "{pid} delivered ordinals {ords:?} in view {view:?}, not a prefix of the view's chain"
                ),
            ));
        }
    }
}

/// Offline check: a decision may not be received more than ε before it
/// was sent — the fail-aware clock bound. Within ε is clock noise.
fn causality_check(decisions: &[DecisionSpan], epsilon: Duration, out: &mut Vec<Violation>) {
    for d in decisions {
        for (pid, at) in &d.receives {
            if *at + epsilon < d.sent_at {
                out.push(Violation::new(
                    "clock-alignment",
                    format!(
                        "{pid} received {}'s decision (ts {:?}) at {:?}, more than ε={} before it was sent at {:?}",
                        d.sender, d.send_ts, at, epsilon, d.sent_at
                    ),
                ));
            }
        }
    }
}

/// Options for [`render_timeline`].
#[derive(Debug, Clone, Copy)]
pub struct TimelineOptions {
    /// Include `Delivered` events (verbose on busy runs).
    pub deliveries: bool,
    /// Cap on rendered rows; further events are summarized.
    pub max_rows: usize,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            deliveries: false,
            max_rows: 200,
        }
    }
}

/// Render the merged stream as an ASCII timeline: one row per event,
/// offset from the first event, one lane column per node.
pub fn render_timeline(merged: &[TraceEvent], team: usize, opts: TimelineOptions) -> String {
    let glyph = |ev: &TraceEvent| match ev {
        TraceEvent::DecisionSent { .. } => 'D',
        TraceEvent::DecisionReceived { .. } => 'd',
        TraceEvent::SuspicionRaised { .. } => 'S',
        TraceEvent::NoDecisionHop { .. } => 'N',
        TraceEvent::WrongSuspicionRescue { .. } => 'R',
        TraceEvent::ReconfigSlotFired { .. } => 'C',
        TraceEvent::ViewInstalled { .. } => 'V',
        TraceEvent::Delivered { .. } => '*',
        TraceEvent::Purged { .. } => 'P',
        TraceEvent::FaultInjected { .. } => 'F',
        TraceEvent::Unknown { .. } => '?',
    };
    let detail = |ev: &TraceEvent| match ev {
        TraceEvent::DecisionSent { view, send_ts, .. } => {
            format!("decision-sent view={}.{} ts={}", view.seq, view.creator, send_ts)
        }
        TraceEvent::DecisionReceived { from, send_ts, .. } => {
            format!("decision-received from={from} ts={send_ts}")
        }
        TraceEvent::SuspicionRaised { suspect, .. } => format!("suspicion suspect={suspect}"),
        TraceEvent::NoDecisionHop { suspect, .. } => format!("no-decision-hop suspect={suspect}"),
        TraceEvent::WrongSuspicionRescue { suspect, .. } => {
            format!("wrong-suspicion-rescue suspect={suspect}")
        }
        TraceEvent::ReconfigSlotFired { slot, listed, empty, .. } => {
            format!("reconfig-slot slot={slot} listed={listed} empty={empty}")
        }
        TraceEvent::ViewInstalled { view, members, .. } => format!(
            "view-installed view={}.{} members={}",
            view.seq,
            view.creator,
            members.count()
        ),
        TraceEvent::Delivered { id, ordinal, .. } => format!("delivered {id} ord={ordinal:?}"),
        TraceEvent::Purged { lost, orphaned, unknown, .. } => {
            format!("purged lost={lost} orphaned={orphaned} unknown={unknown}")
        }
        TraceEvent::FaultInjected { pid, kind, target, arg, .. } => {
            if pid == target {
                format!("fault {kind} arg={arg}")
            } else {
                format!("fault {kind} link={pid}→{target} arg={arg}")
            }
        }
        TraceEvent::Unknown { tag } => format!("unknown tag={tag}"),
    };

    let rows: Vec<&TraceEvent> = merged
        .iter()
        .filter(|ev| opts.deliveries || !matches!(ev, TraceEvent::Delivered { .. }))
        .collect();
    let t0 = rows
        .first()
        .and_then(|ev| ev.stamp())
        .map(|at| at.sync)
        .unwrap_or(SyncTime::ZERO);

    let lanes = team.max(1);
    let mut out = String::new();
    out.push_str("     offset_us ");
    for i in 0..lanes {
        out.push_str(&format!(" p{i:<2}"));
    }
    out.push_str("  event\n");
    let shown = rows.len().min(opts.max_rows);
    for ev in &rows[..shown] {
        let at = ev.stamp().map(|a| a.sync).unwrap_or(t0);
        let lane = ev.pid().map(|p| p.rank()).unwrap_or(0).min(lanes - 1);
        out.push_str(&format!("{:>14} ", (at - t0).as_micros()));
        for i in 0..lanes {
            if i == lane {
                out.push_str(&format!(" {}  ", glyph(ev)));
            } else {
                out.push_str(" ·  ");
            }
        }
        out.push(' ');
        out.push_str(&detail(ev));
        out.push('\n');
    }
    if rows.len() > shown {
        out.push_str(&format!("… {} more events elided\n", rows.len() - shown));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ClockStamp, FaultKind};
    use tw_proto::{HwTime, ProposalId, Semantics};

    fn stamp(t: i64) -> ClockStamp {
        ClockStamp {
            hw: HwTime(t),
            sync: SyncTime(t),
        }
    }

    fn rec(pid: u16, events: Vec<TraceEvent>) -> Recording {
        Recording {
            pid: ProcessId(pid),
            team: 3,
            epsilon: Duration::from_micros(10),
            events,
            intact_segments: 1,
            damage: None,
        }
    }

    fn view(seq: u64) -> ViewId {
        ViewId::new(seq, ProcessId(0))
    }

    #[test]
    fn merge_orders_by_sync_time_deterministically() {
        let a = rec(
            0,
            vec![TraceEvent::SuspicionRaised {
                pid: ProcessId(0),
                at: stamp(50),
                suspect: ProcessId(2),
                view: view(1),
            }],
        );
        let b = rec(
            1,
            vec![TraceEvent::NoDecisionHop {
                pid: ProcessId(1),
                at: stamp(20),
                suspect: ProcessId(2),
                send_ts: SyncTime(20),
                view: view(1),
            }],
        );
        let set = TraceSet::new(vec![a, b]).unwrap();
        let (merged, dropped) = set.merge();
        assert_eq!(dropped, 0);
        assert!(matches!(merged[0], TraceEvent::NoDecisionHop { .. }));
        assert!(matches!(merged[1], TraceEvent::SuspicionRaised { .. }));
    }

    #[test]
    fn duplicate_pids_are_rejected() {
        let set = TraceSet::new(vec![rec(0, vec![]), rec(0, vec![])]);
        assert!(set.is_err());
    }

    #[test]
    fn recovery_span_reconstructs_hops_and_installs() {
        let suspect = ProcessId(2);
        let v2 = view(2);
        let members = AckBits(0b1011); // p0, p1, p3 — suspect p2 gone
        let mut events = vec![TraceEvent::SuspicionRaised {
            pid: ProcessId(0),
            at: stamp(100),
            suspect,
            view: view(1),
        }];
        for (i, (pid, t)) in [(0u16, 150i64), (1, 210), (3, 300)].iter().enumerate() {
            let _ = i;
            events.push(TraceEvent::NoDecisionHop {
                pid: ProcessId(*pid),
                at: stamp(*t),
                suspect,
                send_ts: SyncTime(*t),
                view: view(1),
            });
        }
        for (pid, t) in [(0u16, 400i64), (1, 410), (3, 420)] {
            events.push(TraceEvent::ViewInstalled {
                pid: ProcessId(pid),
                at: stamp(t),
                view: v2,
                members,
            });
        }
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let analysis = analyze(&set);
        assert_eq!(analysis.recoveries.len(), 1);
        let r = &analysis.recoveries[0];
        assert_eq!(r.suspect, suspect);
        assert_eq!(r.first_suspicion, (ProcessId(0), SyncTime(100)));
        assert_eq!(r.hops.len(), 3);
        assert_eq!(r.hops[0].cost, Duration::from_micros(50));
        assert_eq!(r.hops[1].cost, Duration::from_micros(60));
        assert_eq!(r.hops[2].cost, Duration::from_micros(90));
        assert_eq!(r.installs.len(), 3);
        assert_eq!(r.total(), Some(Duration::from_micros(320)));
        // Latency attribution landed in the histograms.
        let snap = &analysis.latencies;
        assert_eq!(snap.histograms["span.recovery.hop_to_hop_us"].count, 2);
        assert_eq!(snap.histograms["span.recovery.total_us"].count, 1);
    }

    #[test]
    fn wrong_suspicion_rescue_closes_the_span() {
        let events = vec![
            TraceEvent::SuspicionRaised {
                pid: ProcessId(1),
                at: stamp(10),
                suspect: ProcessId(0),
                view: view(1),
            },
            TraceEvent::WrongSuspicionRescue {
                pid: ProcessId(2),
                at: stamp(40),
                suspect: ProcessId(0),
                view: view(1),
            },
        ];
        let set = TraceSet::new(vec![rec(1, events)]).unwrap();
        let a = analyze(&set);
        assert_eq!(a.recoveries.len(), 1);
        assert_eq!(a.recoveries[0].rescue, Some((ProcessId(2), SyncTime(40))));
        assert!(a.recoveries[0].installs.is_empty());
    }

    #[test]
    fn decision_spans_attribute_propagation() {
        let v = view(1);
        let events = vec![
            TraceEvent::DecisionSent {
                pid: ProcessId(0),
                at: stamp(100),
                send_ts: SyncTime(100),
                view: v,
            },
            TraceEvent::DecisionReceived {
                pid: ProcessId(1),
                at: stamp(130),
                from: ProcessId(0),
                send_ts: SyncTime(100),
                view: v,
            },
            TraceEvent::DecisionReceived {
                pid: ProcessId(2),
                at: stamp(160),
                from: ProcessId(0),
                send_ts: SyncTime(100),
                view: v,
            },
        ];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let a = analyze(&set);
        assert_eq!(a.decisions.len(), 1);
        assert_eq!(a.decisions[0].receives.len(), 2);
        let h = &a.latencies.histograms["span.decision.propagation_us"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30 + 60);
    }

    #[test]
    fn causality_beyond_epsilon_is_flagged() {
        let v = view(1);
        let events = vec![
            TraceEvent::DecisionSent {
                pid: ProcessId(0),
                at: stamp(1000),
                send_ts: SyncTime(1000),
                view: v,
            },
            // Received 100 before sent; ε is only 10.
            TraceEvent::DecisionReceived {
                pid: ProcessId(1),
                at: stamp(900),
                from: ProcessId(0),
                send_ts: SyncTime(1000),
                view: v,
            },
        ];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let a = analyze(&set);
        assert!(a.cross.iter().any(|x| x.check == "clock-alignment"));
        // Within ε it is not flagged.
        let events = vec![
            TraceEvent::DecisionSent {
                pid: ProcessId(0),
                at: stamp(1000),
                send_ts: SyncTime(1000),
                view: v,
            },
            TraceEvent::DecisionReceived {
                pid: ProcessId(1),
                at: stamp(995),
                from: ProcessId(0),
                send_ts: SyncTime(1000),
                view: v,
            },
        ];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let a = analyze(&set);
        assert!(a.cross.iter().all(|x| x.check != "clock-alignment"));
    }

    #[test]
    fn disjoint_consecutive_views_are_flagged() {
        let events = vec![
            TraceEvent::ViewInstalled {
                pid: ProcessId(0),
                at: stamp(10),
                view: view(1),
                members: AckBits(0b0011),
            },
            TraceEvent::ViewInstalled {
                pid: ProcessId(2),
                at: stamp(20),
                view: view(2),
                members: AckBits(0b1100),
            },
        ];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let a = analyze(&set);
        assert!(a.cross.iter().any(|x| x.check == "view-overlap"));
    }

    #[test]
    fn ordinal_gap_breaks_oal_prefix() {
        let v = view(1);
        let mk = |pid: u16, seq: u64, ord: u64, t: i64| TraceEvent::Delivered {
            pid: ProcessId(pid),
            at: stamp(t),
            id: ProposalId::new(ProcessId(0), seq),
            ordinal: Some(Ordinal(ord)),
            semantics: Semantics::TOTAL_STRONG,
            send_ts: SyncTime(t),
            view: v,
        };
        // p0 delivers ordinals 1 and 2; p1 delivers 1 and *3* — not a
        // prefix, and the global chain {1,2,3} is fine, so the member
        // check fires.
        let events = vec![mk(0, 1, 1, 10), mk(0, 2, 2, 20), mk(1, 1, 1, 30), mk(1, 3, 3, 40)];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let a = analyze(&set);
        assert!(a.cross.iter().any(|x| x.check == "oal-prefix"));

        // Clean prefixes pass.
        let events = vec![mk(0, 1, 1, 10), mk(0, 2, 2, 20), mk(1, 1, 1, 30)];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let a = analyze(&set);
        assert!(a.cross.iter().all(|x| x.check != "oal-prefix"));
    }

    #[test]
    fn injected_faults_are_counted_and_rendered_without_breaking_audits() {
        let events = vec![
            TraceEvent::FaultInjected {
                pid: ProcessId(0),
                at: stamp(5),
                kind: FaultKind::Drop,
                target: ProcessId(2),
                arg: 0,
            },
            TraceEvent::FaultInjected {
                pid: ProcessId(0),
                at: stamp(9),
                kind: FaultKind::Drop,
                target: ProcessId(1),
                arg: 0,
            },
            TraceEvent::FaultInjected {
                pid: ProcessId(2),
                at: stamp(12),
                kind: FaultKind::Crash,
                target: ProcessId(2),
                arg: 3,
            },
            TraceEvent::ViewInstalled {
                pid: ProcessId(0),
                at: stamp(20),
                view: view(1),
                members: AckBits(0b011),
            },
        ];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let a = analyze(&set);
        assert_eq!(a.faults.get("drop"), Some(&2));
        assert_eq!(a.faults.get("crash"), Some(&1));
        // Fault markers are harness bookkeeping, not protocol events:
        // they must not trip the audit.
        assert!(a.audits_clean(), "{:?} / {:?}", a.audit, a.cross);
        let tl = render_timeline(&a.merged, 3, TimelineOptions::default());
        assert!(tl.contains("fault drop link=p0→p2"), "{tl}");
        assert!(tl.contains("fault crash arg=3"), "{tl}");
    }

    #[test]
    fn timeline_renders_lanes_and_offsets() {
        let events = vec![
            TraceEvent::SuspicionRaised {
                pid: ProcessId(0),
                at: stamp(1_000),
                suspect: ProcessId(2),
                view: view(1),
            },
            TraceEvent::ViewInstalled {
                pid: ProcessId(1),
                at: stamp(1_500),
                view: view(2),
                members: AckBits(0b011),
            },
        ];
        let set = TraceSet::new(vec![rec(0, events)]).unwrap();
        let (merged, _) = set.merge();
        let tl = render_timeline(&merged, 3, TimelineOptions::default());
        assert!(tl.contains("suspicion suspect=p2"), "{tl}");
        assert!(tl.contains("view-installed"), "{tl}");
        assert!(tl.contains("500"), "offset column missing: {tl}");
        // First event renders at offset 0.
        assert!(tl.lines().nth(1).unwrap().trim_start().starts_with('0'), "{tl}");
    }
}
