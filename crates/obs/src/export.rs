//! Prometheus text exposition of a metrics [`Snapshot`].
//!
//! Zero-dependency by necessity (the workspace builds offline), so this
//! is a hand-rolled renderer of the stable [text-based exposition
//! format]: one `# TYPE` comment per metric family, counters and gauges
//! as single samples, histograms as cumulative `_bucket{le="…"}` series
//! plus `_sum`/`_count`. Output is deterministic — families render in
//! `BTreeMap` order of their sanitized names, so two identical
//! snapshots scrape byte-identically (the same property the JSON
//! export already has).
//!
//! Registry names use dots as separators (`sends.decision`,
//! `tw_audit_violations_total.fifo_order`); Prometheus metric names
//! must match `[a-zA-Z_][a-zA-Z0-9_]*`, so [`sanitize_metric_name`]
//! maps every illegal byte to `_` and prefixes `_` when the first byte
//! is a digit. Two raw names that collide after sanitizing would
//! produce an invalid exposition (duplicate family), so the renderer
//! keeps the first (in raw name order) and notes the dropped name in a
//! trailing comment instead of emitting a malformed scrape.
//!
//! [text-based exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;

/// True when `name` is a legal Prometheus metric name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`; the colon is reserved for recording
/// rules, so this renderer never emits it).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    match bytes.next() {
        Some(b) if b.is_ascii_alphabetic() || b == b'_' => {}
        _ => return false,
    }
    bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Map a registry name onto a legal Prometheus metric name: every byte
/// outside `[a-zA-Z0-9_]` becomes `_`, and a leading digit gains a `_`
/// prefix. Idempotent; an empty name becomes `_`.
pub fn sanitize_metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, b) in raw.bytes().enumerate() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            if i == 0 && b.is_ascii_digit() {
                out.push('_');
            }
            out.push(b as char);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline get backslash escapes; everything else is verbatim.
fn push_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Render the shared label set as `{k="v",…}`, or nothing when empty.
fn push_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        push_label_value(out, v);
        out.push('"');
    }
    out.push('}');
}

/// Like [`push_labels`] but with one extra label appended (used for the
/// histogram `le` label).
fn push_labels_with(out: &mut String, labels: &[(String, String)], extra_k: &str, extra_v: &str) {
    out.push('{');
    for (k, v) in labels {
        out.push_str(k);
        out.push_str("=\"");
        push_label_value(out, v);
        out.push_str("\",");
    }
    out.push_str(extra_k);
    out.push_str("=\"");
    push_label_value(out, extra_v);
    out.push_str("\"}");
}

enum Family<'a> {
    Counter(u64),
    Gauge(i64),
    Histogram(&'a HistogramSnapshot),
}

/// Render `snapshot` in the Prometheus text exposition format with no
/// shared labels. See [`render_labeled`].
pub fn render(snapshot: &Snapshot) -> String {
    render_labeled(snapshot, &[])
}

/// Render `snapshot` in the Prometheus text exposition format, stamping
/// every sample with `labels` (e.g. `pid="3"`). Label *names* are used
/// verbatim and must already be legal (`[a-zA-Z_][a-zA-Z0-9_]*`); label
/// values are escaped. Counters gain a `_total` suffix unless the raw
/// name already ends in `_total` or `.total`.
pub fn render_labeled(snapshot: &Snapshot, labels: &[(String, String)]) -> String {
    debug_assert!(labels.iter().all(|(k, _)| is_valid_metric_name(k)));
    // Merge the three namespaces onto sanitized names first so the
    // output is ordered by the names a scraper actually sees and
    // collisions are detected across kinds, not just within one.
    let mut families: BTreeMap<String, (&str, Family<'_>)> = BTreeMap::new();
    let mut dropped: Vec<&str> = Vec::new();

    for (raw, v) in &snapshot.counters {
        let mut name = sanitize_metric_name(raw);
        if !name.ends_with("_total") {
            name.push_str("_total");
        }
        if families.contains_key(&name) {
            dropped.push(raw);
        } else {
            families.insert(name, (raw.as_str(), Family::Counter(*v)));
        }
    }
    for (raw, v) in &snapshot.gauges {
        let name = sanitize_metric_name(raw);
        if families.contains_key(&name) {
            dropped.push(raw);
        } else {
            families.insert(name, (raw.as_str(), Family::Gauge(*v)));
        }
    }
    for (raw, h) in &snapshot.histograms {
        let name = sanitize_metric_name(raw);
        if families.contains_key(&name) {
            dropped.push(raw);
        } else {
            families.insert(name, (raw.as_str(), Family::Histogram(h)));
        }
    }

    let mut out = String::with_capacity(1024);
    for (name, (raw, family)) in &families {
        match family {
            Family::Counter(v) => {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push_str(" counter `");
                out.push_str(raw);
                out.push_str("`\n# TYPE ");
                out.push_str(name);
                out.push_str(" counter\n");
                out.push_str(name);
                push_labels(&mut out, labels);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            Family::Gauge(v) => {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push_str(" gauge `");
                out.push_str(raw);
                out.push_str("`\n# TYPE ");
                out.push_str(name);
                out.push_str(" gauge\n");
                out.push_str(name);
                push_labels(&mut out, labels);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            Family::Histogram(h) => {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push_str(" histogram `");
                out.push_str(raw);
                out.push_str("` (microseconds)\n# TYPE ");
                out.push_str(name);
                out.push_str(" histogram\n");
                // Buckets are cumulative in the exposition format; the
                // registry stores per-bucket counts.
                let mut cum: u64 = 0;
                for (i, b) in h.buckets.iter().enumerate() {
                    cum += b;
                    out.push_str(name);
                    out.push_str("_bucket");
                    let le = match h.bounds.get(i) {
                        Some(bound) => bound.to_string(),
                        None => "+Inf".to_owned(),
                    };
                    push_labels_with(&mut out, labels, "le", &le);
                    out.push(' ');
                    out.push_str(&cum.to_string());
                    out.push('\n');
                }
                out.push_str(name);
                out.push_str("_sum");
                push_labels(&mut out, labels);
                out.push(' ');
                out.push_str(&h.sum.to_string());
                out.push('\n');
                out.push_str(name);
                out.push_str("_count");
                push_labels(&mut out, labels);
                out.push(' ');
                out.push_str(&h.count.to_string());
                out.push('\n');
            }
        }
    }
    for raw in dropped {
        out.push_str("# dropped colliding metric name: ");
        // Comments run to end of line; strip newlines so a hostile name
        // cannot forge exposition lines.
        for c in raw.chars().filter(|c| *c != '\n' && *c != '\r') {
            out.push(c);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn name_validity() {
        assert!(is_valid_metric_name("tw_sends_total"));
        assert!(is_valid_metric_name("_x9"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("9lives"));
        assert!(!is_valid_metric_name("a.b"));
        assert!(!is_valid_metric_name("a-b"));
        assert!(!is_valid_metric_name("a:b"));
    }

    #[test]
    fn sanitizer_produces_valid_names_and_is_idempotent() {
        for raw in [
            "sends.decision",
            "tw_audit_violations_total.fifo_order",
            "9starts.with.digit",
            "weird name/…",
            "",
        ] {
            let s = sanitize_metric_name(raw);
            assert!(is_valid_metric_name(&s), "{raw:?} -> {s:?}");
            assert_eq!(sanitize_metric_name(&s), s);
        }
        assert_eq!(sanitize_metric_name("sends.decision"), "sends_decision");
        assert_eq!(sanitize_metric_name("9x"), "_9x");
    }

    #[test]
    fn golden_scrape() {
        let r = Registry::new();
        r.counter("sends.decision").add(3);
        r.gauge("node_inbox.depth").set(-2);
        let h = r.histogram("lat_us", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        let text = render_labeled(
            &r.snapshot(),
            &[("pid".to_owned(), "7".to_owned())],
        );
        assert_eq!(
            text,
            "# HELP lat_us histogram `lat_us` (microseconds)\n\
             # TYPE lat_us histogram\n\
             lat_us_bucket{pid=\"7\",le=\"10\"} 1\n\
             lat_us_bucket{pid=\"7\",le=\"100\"} 2\n\
             lat_us_bucket{pid=\"7\",le=\"+Inf\"} 3\n\
             lat_us_sum{pid=\"7\"} 555\n\
             lat_us_count{pid=\"7\"} 3\n\
             # HELP node_inbox_depth gauge `node_inbox.depth`\n\
             # TYPE node_inbox_depth gauge\n\
             node_inbox_depth{pid=\"7\"} -2\n\
             # HELP sends_decision_total counter `sends.decision`\n\
             # TYPE sends_decision_total counter\n\
             sends_decision_total{pid=\"7\"} 3\n"
        );
        // Deterministic across renders.
        assert_eq!(
            text,
            render_labeled(&r.snapshot(), &[("pid".to_owned(), "7".to_owned())])
        );
    }

    #[test]
    fn unlabeled_samples_have_no_brace_block() {
        let r = Registry::new();
        r.counter("c").inc();
        let text = render(&r.snapshot());
        assert!(text.contains("\nc_total 1\n"), "{text}");
    }

    #[test]
    fn counter_total_suffix_is_not_doubled() {
        let r = Registry::new();
        r.counter("deliveries_total").inc();
        let text = render(&r.snapshot());
        assert!(text.contains("\ndeliveries_total 1\n"), "{text}");
        assert!(!text.contains("total_total"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.gauge("g").set(1);
        let text = render_labeled(
            &r.snapshot(),
            &[("node".to_owned(), "a\"b\\c\nd".to_owned())],
        );
        assert!(text.contains("g{node=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn colliding_sanitized_names_keep_first_and_note_drop() {
        let r = Registry::new();
        r.counter("a.b").add(1);
        r.counter("a_b").add(2);
        let text = render(&r.snapshot());
        // "a.b" sorts before "a_b" in the raw map and both sanitize to
        // a_b_total; exactly one family must survive.
        assert_eq!(text.matches("# TYPE a_b_total counter").count(), 1);
        assert!(text.contains("a_b_total 1\n"), "{text}");
        assert!(text.contains("# dropped colliding metric name: a_b\n"), "{text}");
    }

    #[test]
    fn every_emitted_family_name_is_valid() {
        let r = Registry::new();
        r.counter("sends.decision").inc();
        r.gauge("9bad/name").set(2);
        r.histogram("disp.lat", &[1]).record(1);
        let text = render(&r.snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line
                .split(|c| c == '{' || c == ' ')
                .next()
                .unwrap();
            assert!(is_valid_metric_name(name), "{line}");
        }
    }
}
