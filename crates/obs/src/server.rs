//! The per-node ops plane: a tiny TCP server exposing metrics, status
//! and a live TWFR trace stream — plus the tailer that consumes it.
//!
//! Zero dependencies by necessity (the workspace builds offline), so
//! the HTTP here is deliberately minimal: request = first line + blank
//! line, response = status line, `Content-Length`, `Connection: close`.
//! That subset is enough for `curl`, Prometheus scrapers and the
//! [`http_get`] helper, and nothing else is promised.
//!
//! Endpoints:
//!
//! | path       | payload                                                |
//! |------------|--------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of the node's [`Registry`]  |
//! | `/status`  | JSON node status (host-provided callback)              |
//! | `/healthz` | `200 ok` / `503 unhealthy` (host-provided callback)    |
//! | `/trace`   | endless `application/octet-stream` of TWFR bytes       |
//!
//! `/trace` ships the *same* framing the flight recorder writes to
//! disk — header then CRC'd segments ([`crate::recorder`]) — so the
//! live tailer decodes it with the *same* [`StreamReader`] the file
//! loader uses: one reader, one torn-stream contract, proven by test.
//!
//! The hot path never blocks on an operator: the protocol thread's
//! [`TraceSink::record`] pushes into a bounded in-memory buffer; whole
//! segments are encoded and fanned out outside the lock, and a
//! subscriber that cannot keep up is disconnected (and counted) rather
//! than waited for.

// tw-lint: allow-file(actor-io) -- the ops server IS the module that owns the
// node's observability sockets: it runs host-side on its own threads, never
// inside a simulated actor, and talking to operators is its entire purpose.

use crate::export::render_labeled;
use crate::metrics::Registry;
use crate::recorder::{encode_header, encode_segment, HEADER_LEN};
use crate::recording::{Damage, LoadError, StreamHeader, StreamReader};
use crate::trace::{TraceEvent, TraceSink};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration as StdDuration;
use tw_proto::{Duration, ProcessId};

/// Segments a subscriber may have queued before it is declared slow
/// and cut off (each segment is at most `capacity` events).
const SUBSCRIBER_QUEUE: usize = 64;
/// Largest HTTP request head the server will buffer before giving up.
const MAX_REQUEST_HEAD: usize = 4096;
/// Largest HTTP response head the tailer will buffer before giving up.
const MAX_RESPONSE_HEAD: usize = 8192;
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_IDLE: StdDuration = StdDuration::from_millis(5);
/// How often a `/trace` connection wakes to check for shutdown.
const TRACE_IDLE: StdDuration = StdDuration::from_millis(100);

// ---------------------------------------------------------------------------
// StreamSink — the live counterpart of the flight recorder
// ---------------------------------------------------------------------------

struct SinkInner {
    buf: Vec<TraceEvent>,
    subs: Vec<SyncSender<Vec<u8>>>,
}

/// A [`TraceSink`] that fans TWFR-framed segments out to live
/// subscribers — the wire twin of [`crate::recorder::FlightRecorder`].
///
/// Buffers up to `capacity` events, then encodes them as one segment
/// (outside the lock) and offers the bytes to every subscriber without
/// blocking. A subscriber whose queue is full is dropped and counted in
/// [`StreamSink::shed_subscribers`]; the protocol thread never waits.
/// View installations force a spill, mirroring the recorder, so a
/// subscriber's picture is current through the last membership change.
pub struct StreamSink {
    header: [u8; HEADER_LEN],
    capacity: usize,
    inner: Mutex<SinkInner>,
    shed: AtomicU64,
}

impl StreamSink {
    /// A sink streaming for `pid` in a team of `team` under deviation
    /// bound `epsilon` (the TWFR header every subscriber receives
    /// first), spilling every `capacity` events.
    pub fn new(pid: ProcessId, team: usize, epsilon: Duration, capacity: usize) -> Self {
        StreamSink {
            header: encode_header(pid, team, epsilon),
            capacity: capacity.max(1),
            inner: Mutex::new(SinkInner {
                buf: Vec::new(),
                subs: Vec::new(),
            }),
            shed: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SinkInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attach a subscriber. The first bytes on the channel are the TWFR
    /// header; after that, whole segments from the subscription point
    /// on — joining mid-run is always a valid stream start.
    pub fn subscribe(&self) -> Receiver<Vec<u8>> {
        let (tx, rx) = std::sync::mpsc::sync_channel(SUBSCRIBER_QUEUE);
        tx.try_send(self.header.to_vec())
            .expect("fresh subscriber queue cannot be full");
        self.lock().subs.push(tx);
        rx
    }

    /// Currently attached subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.lock().subs.len()
    }

    /// Subscribers disconnected for falling behind since creation.
    pub fn shed_subscribers(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Events buffered toward the next segment.
    pub fn buffered(&self) -> usize {
        self.lock().buf.len()
    }

    /// Encode and fan out whatever is buffered as one segment now.
    pub fn flush(&self) {
        let events = std::mem::take(&mut self.lock().buf);
        self.broadcast(&events);
    }

    fn broadcast(&self, events: &[TraceEvent]) {
        if events.is_empty() {
            return;
        }
        // Encoding happens outside the lock; only the non-blocking
        // try_send runs under it.
        let bytes = encode_segment(events);
        let mut shed = 0u64;
        {
            let mut inner = self.lock();
            inner.subs.retain(|tx| match tx.try_send(bytes.clone()) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    shed += 1;
                    false
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
        }
        if shed > 0 {
            self.shed.fetch_add(shed, Ordering::Relaxed);
        }
    }
}

impl TraceSink for StreamSink {
    fn record(&self, ev: &TraceEvent) {
        let full = {
            let mut inner = self.lock();
            // No subscribers: keep the buffer bounded but warm, so a
            // late joiner still starts at a segment boundary.
            inner.buf.push(*ev);
            inner.buf.len() >= self.capacity
        };
        if full || matches!(ev, TraceEvent::ViewInstalled { .. }) {
            self.flush();
        }
    }
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("StreamSink")
            .field("capacity", &self.capacity)
            .field("buffered", &inner.buf.len())
            .field("subscribers", &inner.subs.len())
            .field("shed", &self.shed.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// OpsServer
// ---------------------------------------------------------------------------

/// What the ops server reads from its host node. Callbacks keep the
/// dependency arrow pointing runtime → obs: the runtime hands closures
/// down instead of obs knowing any runtime types.
#[derive(Clone)]
pub struct OpsSources {
    /// The node's metrics registry, scraped at `/metrics`.
    pub registry: Arc<Registry>,
    /// Labels stamped on every exposition sample (e.g. `pid`).
    pub labels: Vec<(String, String)>,
    /// Renders the node's JSON status document for `/status`.
    pub status_json: Arc<dyn Fn() -> String + Send + Sync>,
    /// Liveness verdict for `/healthz`.
    pub healthy: Arc<dyn Fn() -> bool + Send + Sync>,
}

/// A per-node ops endpoint: one listener, one accept thread, one thread
/// per connection. Dropping the server stops the accept loop and lets
/// in-flight `/trace` connections wind down on their next idle tick.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl OpsServer {
    /// Bind `addr` (port 0 picks a free port — see [`OpsServer::addr`])
    /// and start serving. `stream`, when given, backs the `/trace`
    /// endpoint; without it `/trace` is a 404.
    pub fn bind(
        addr: impl ToSocketAddrs,
        sources: OpsSources,
        stream: Option<Arc<StreamSink>>,
    ) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("tw-ops-{}", addr.port()))
                .spawn(move || accept_loop(listener, sources, stream, stop))?
        };
        Ok(OpsServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for OpsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsServer").field("addr", &self.addr).finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    sources: OpsSources,
    stream: Option<Arc<StreamSink>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((sock, _)) => {
                let sources = sources.clone();
                let stream = stream.clone();
                let stop = stop.clone();
                let _ = std::thread::Builder::new()
                    .name("tw-ops-conn".into())
                    .spawn(move || {
                        let _ = handle_conn(sock, &sources, stream.as_deref(), &stop);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_IDLE);
            }
            Err(_) => std::thread::sleep(ACCEPT_IDLE),
        }
    }
}

/// Read the request head (first line through blank line), bounded.
fn read_request_path(sock: &mut TcpStream) -> std::io::Result<String> {
    sock.set_read_timeout(Some(StdDuration::from_millis(500)))?;
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_HEAD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = sock.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let line = head
        .split(|b| *b == b'\r' || *b == b'\n')
        .next()
        .unwrap_or(b"");
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(path.to_owned()),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a GET request",
        )),
    }
}

fn respond(
    sock: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    sock.write_all(head.as_bytes())?;
    sock.write_all(body)?;
    sock.flush()
}

fn handle_conn(
    mut sock: TcpStream,
    sources: &OpsSources,
    stream: Option<&StreamSink>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let _ = sock.set_nodelay(true);
    let path = match read_request_path(&mut sock) {
        Ok(p) => p,
        Err(_) => {
            return respond(&mut sock, "400 Bad Request", "text/plain", b"bad request\n");
        }
    };
    sock.set_write_timeout(Some(StdDuration::from_secs(2)))?;
    match path.as_str() {
        "/metrics" => {
            let body = render_labeled(&sources.registry.snapshot(), &sources.labels);
            respond(
                &mut sock,
                "200 OK",
                "text/plain; version=0.0.4",
                body.as_bytes(),
            )
        }
        "/status" => {
            let body = (sources.status_json)();
            respond(&mut sock, "200 OK", "application/json", body.as_bytes())
        }
        "/healthz" => {
            if (sources.healthy)() {
                respond(&mut sock, "200 OK", "text/plain", b"ok\n")
            } else {
                respond(&mut sock, "503 Service Unavailable", "text/plain", b"unhealthy\n")
            }
        }
        "/trace" => match stream {
            Some(sink) => serve_trace(sock, sink, stop),
            None => respond(
                &mut sock,
                "404 Not Found",
                "text/plain",
                b"trace streaming disabled\n",
            ),
        },
        _ => respond(&mut sock, "404 Not Found", "text/plain", b"not found\n"),
    }
}

fn serve_trace(mut sock: TcpStream, sink: &StreamSink, stop: &AtomicBool) -> std::io::Result<()> {
    sock.write_all(
        b"HTTP/1.0 200 OK\r\nContent-Type: application/octet-stream\r\nConnection: close\r\n\r\n",
    )?;
    sock.flush()?;
    let rx = sink.subscribe();
    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(TRACE_IDLE) {
            Ok(bytes) => {
                // A stalled peer times out here and the subscriber
                // drops; the sink then sheds it on its next broadcast.
                sock.write_all(&bytes)?;
                sock.flush()?;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// LiveTail — the client side of /trace
// ---------------------------------------------------------------------------

/// A live subscriber to one node's `/trace` stream, decoding with the
/// same [`StreamReader`] the file loader uses.
///
/// Drive it by calling [`LiveTail::poll`] in a loop; each call returns
/// the events that arrived since the last one. When the server goes
/// away ([`LiveTail::done`]), [`LiveTail::finish`] reports how the
/// stream ended under the recording contract: a connection cut
/// mid-segment is a torn tail, exactly like a crashed recorder's file.
#[derive(Debug)]
pub struct LiveTail {
    sock: TcpStream,
    reader: StreamReader,
    /// Bytes read before the HTTP blank line has been seen.
    head: Vec<u8>,
    body_started: bool,
    done: bool,
}

impl LiveTail {
    /// Connect to a node's ops endpoint and request its trace stream.
    pub fn connect(addr: impl ToSocketAddrs, timeout: StdDuration) -> std::io::Result<LiveTail> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let mut sock = TcpStream::connect_timeout(&addr, timeout)?;
        let _ = sock.set_nodelay(true);
        sock.write_all(b"GET /trace HTTP/1.0\r\n\r\n")?;
        sock.flush()?;
        Ok(LiveTail {
            sock,
            reader: StreamReader::new(),
            head: Vec::new(),
            body_started: false,
            done: false,
        })
    }

    /// The stream's TWFR header, once it has arrived.
    pub fn header(&self) -> Option<&StreamHeader> {
        self.reader.header()
    }

    /// True once the server closed the connection (or errored).
    pub fn done(&self) -> bool {
        self.done
    }

    /// How the stream ended (or stands right now): detected damage, a
    /// torn tail if the connection died mid-segment, `None` when clean.
    pub fn finish(&self) -> Option<Damage> {
        self.reader.finish()
    }

    /// Wait up to `wait` for more bytes and decode whatever completed.
    /// Returns an empty vector on timeout and after the stream ends;
    /// damage follows the recording contract (reported by
    /// [`LiveTail::finish`], never a panic).
    pub fn poll(&mut self, wait: StdDuration) -> Result<Vec<TraceEvent>, LoadError> {
        if self.done {
            return Ok(Vec::new());
        }
        // A zero timeout would mean "block forever" to the socket API.
        self.sock
            .set_read_timeout(Some(wait.max(StdDuration::from_millis(1))))?;
        let mut chunk = [0u8; 16 * 1024];
        match self.sock.read(&mut chunk) {
            Ok(0) => {
                self.done = true;
                Ok(Vec::new())
            }
            Ok(n) => self.ingest(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(Vec::new())
            }
            Err(_) => {
                // A reset mid-stream is the network's torn tail; the
                // reader's finish() verdict covers it.
                self.done = true;
                Ok(Vec::new())
            }
        }
    }

    fn ingest(&mut self, bytes: &[u8]) -> Result<Vec<TraceEvent>, LoadError> {
        if !self.body_started {
            self.head.extend_from_slice(bytes);
            match find_blank_line(&self.head) {
                Some(body_at) => {
                    let body = self.head.split_off(body_at);
                    self.body_started = true;
                    let events = self.reader.feed(&body)?;
                    return Ok(events);
                }
                None if self.head.len() > MAX_RESPONSE_HEAD => {
                    self.done = true;
                    return Err(LoadError::BadHeader(
                        "no HTTP header terminator within 8 KiB".into(),
                    ));
                }
                None => return Ok(Vec::new()),
            }
        }
        self.reader.feed(bytes)
    }
}

/// Offset of the first byte after the HTTP `\r\n\r\n` terminator.
fn find_blank_line(head: &[u8]) -> Option<usize> {
    head.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// One-shot HTTP GET against an ops endpoint: returns the status code
/// and the response body. The convenience client behind `tw-top`'s
/// snapshot mode and the CI smoke tests.
pub fn http_get(
    addr: impl ToSocketAddrs,
    path: &str,
    timeout: StdDuration,
) -> std::io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut sock = TcpStream::connect_timeout(&addr, timeout)?;
    sock.set_read_timeout(Some(timeout))?;
    sock.set_write_timeout(Some(timeout))?;
    sock.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    sock.flush()?;
    let mut raw = Vec::new();
    sock.read_to_end(&mut raw)?;
    let body_at = find_blank_line(&raw).unwrap_or(raw.len());
    let head = String::from_utf8_lossy(&raw[..body_at]);
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP status line")
        })?;
    let body = String::from_utf8_lossy(&raw[body_at..]).into_owned();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ClockStamp;
    use tw_proto::{HwTime, SyncTime, ViewId};

    fn ev(i: i64) -> TraceEvent {
        TraceEvent::DecisionSent {
            pid: ProcessId(4),
            at: ClockStamp {
                hw: HwTime(i),
                sync: SyncTime(i + 1),
            },
            send_ts: SyncTime(i + 1),
            view: ViewId::new(7, ProcessId(0)),
        }
    }

    fn sources(reg: Arc<Registry>) -> OpsSources {
        OpsSources {
            registry: reg,
            labels: vec![("pid".to_owned(), "4".to_owned())],
            status_json: Arc::new(|| "{\"up_to_date\":true}".to_owned()),
            healthy: Arc::new(|| true),
        }
    }

    #[test]
    fn endpoints_serve_metrics_status_health_and_404() {
        let reg = Arc::new(Registry::new());
        reg.counter("sends.decision").add(2);
        let srv = OpsServer::bind("127.0.0.1:0", sources(reg), None).unwrap();
        let t = StdDuration::from_secs(2);

        let (code, body) = http_get(srv.addr(), "/metrics", t).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("sends_decision_total{pid=\"4\"} 2"), "{body}");

        let (code, body) = http_get(srv.addr(), "/status", t).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "{\"up_to_date\":true}");

        let (code, body) = http_get(srv.addr(), "/healthz", t).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "ok\n");

        let (code, _) = http_get(srv.addr(), "/nope", t).unwrap();
        assert_eq!(code, 404);
        // No stream sink attached → /trace is a 404, not a hang.
        let (code, _) = http_get(srv.addr(), "/trace", t).unwrap();
        assert_eq!(code, 404);
    }

    #[test]
    fn unhealthy_nodes_report_503() {
        let reg = Arc::new(Registry::new());
        let mut src = sources(reg);
        src.healthy = Arc::new(|| false);
        let srv = OpsServer::bind("127.0.0.1:0", src, None).unwrap();
        let (code, body) = http_get(srv.addr(), "/healthz", StdDuration::from_secs(2)).unwrap();
        assert_eq!(code, 503);
        assert_eq!(body, "unhealthy\n");
    }

    #[test]
    fn live_tail_decodes_streamed_segments_with_the_shared_reader() {
        let reg = Arc::new(Registry::new());
        let sink = Arc::new(StreamSink::new(
            ProcessId(4),
            3,
            Duration::from_micros(11),
            4,
        ));
        let srv = OpsServer::bind("127.0.0.1:0", sources(reg), Some(sink.clone())).unwrap();
        let mut tail = LiveTail::connect(srv.addr(), StdDuration::from_secs(2)).unwrap();

        // Events recorded *after* the subscription arrive framed.
        std::thread::sleep(StdDuration::from_millis(50)); // let the conn subscribe
        for i in 0..8 {
            sink.record(&ev(i));
        }
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(tail.poll(StdDuration::from_millis(20)).unwrap());
            if got.len() >= 8 {
                break;
            }
        }
        assert_eq!(got, (0..8).map(ev).collect::<Vec<_>>());
        let h = *tail.header().expect("header arrives first");
        assert_eq!(h.pid, ProcessId(4));
        assert_eq!(h.team, 3);
        assert_eq!(h.epsilon, Duration::from_micros(11));
        assert_eq!(tail.finish(), None, "clean at a segment boundary");
    }

    #[test]
    fn killing_the_server_mid_segment_reads_as_a_torn_tail() {
        let reg = Arc::new(Registry::new());
        let sink = Arc::new(StreamSink::new(ProcessId(1), 3, Duration::ZERO, 4));
        let srv = OpsServer::bind("127.0.0.1:0", sources(reg), Some(sink.clone())).unwrap();
        let mut tail = LiveTail::connect(srv.addr(), StdDuration::from_secs(2)).unwrap();
        std::thread::sleep(StdDuration::from_millis(50));
        sink.record(&ev(0));
        sink.flush();
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(tail.poll(StdDuration::from_millis(20)).unwrap());
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got, vec![ev(0)]);
        // Server dies; the tailer must notice, never panic, and report
        // a clean end (the cut landed on a segment boundary here).
        drop(srv);
        for _ in 0..100 {
            let _ = tail.poll(StdDuration::from_millis(20)).unwrap();
            if tail.done() {
                break;
            }
        }
        assert!(tail.done());
        assert_eq!(tail.finish(), None);
    }

    #[test]
    fn server_dying_mid_segment_reports_damage_never_panics() {
        // A hand-rolled /trace server that cuts the connection in the
        // middle of a segment — the wire equivalent of a recorder crash
        // mid-spill, which the real server cannot be asked to do.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut discard = [0u8; 256];
            let _ = sock.read(&mut discard); // the GET line
            sock.write_all(b"HTTP/1.0 200 OK\r\n\r\n").unwrap();
            sock.write_all(&encode_header(ProcessId(9), 3, Duration::ZERO))
                .unwrap();
            let seg = encode_segment(&[ev(0), ev(1)]);
            sock.write_all(&seg).unwrap();
            let torn = encode_segment(&[ev(2), ev(3)]);
            sock.write_all(&torn[..torn.len() - 3]).unwrap();
            sock.flush().unwrap();
            // Connection drops here, mid-segment.
        });
        let mut tail = LiveTail::connect(addr, StdDuration::from_secs(2)).unwrap();
        let mut got = Vec::new();
        for _ in 0..200 {
            got.extend(tail.poll(StdDuration::from_millis(10)).unwrap());
            if tail.done() {
                break;
            }
        }
        server.join().unwrap();
        while let Ok(more) = tail.poll(StdDuration::from_millis(5)) {
            if more.is_empty() && tail.done() {
                break;
            }
            got.extend(more);
        }
        assert_eq!(got, vec![ev(0), ev(1)], "intact segment survives");
        assert!(tail.done());
        assert_eq!(
            tail.finish(),
            Some(Damage::TruncatedSegment { index: 1 }),
            "the cut reads as a torn tail, same as a crashed recorder"
        );
    }

    #[test]
    fn slow_subscribers_are_shed_not_waited_for() {
        let sink = StreamSink::new(ProcessId(0), 3, Duration::ZERO, 1);
        let rx = sink.subscribe();
        assert_eq!(sink.subscriber_count(), 1);
        // Never drain rx: the queue fills (header took one slot), then
        // the subscriber is cut. capacity 1 → every record is a segment.
        for i in 0..(SUBSCRIBER_QUEUE as i64 + 8) {
            sink.record(&ev(i));
        }
        assert_eq!(sink.subscriber_count(), 0);
        assert_eq!(sink.shed_subscribers(), 1);
        drop(rx);
        // Recording with no subscribers stays cheap and panic-free.
        sink.record(&ev(99));
    }

    #[test]
    fn subscriber_joining_mid_stream_gets_a_valid_stream_start() {
        let sink = StreamSink::new(ProcessId(2), 5, Duration::from_micros(3), 2);
        // History before the join is not replayed…
        sink.record(&ev(0));
        sink.record(&ev(1));
        let rx = sink.subscribe();
        sink.record(&ev(2));
        sink.record(&ev(3));
        let mut reader = StreamReader::new();
        let mut events = Vec::new();
        while let Ok(bytes) = rx.try_recv() {
            events.extend(reader.feed(&bytes).unwrap());
        }
        // …but the stream still begins with a header and decodes clean.
        assert_eq!(reader.header().map(|h| h.pid), Some(ProcessId(2)));
        assert_eq!(events, vec![ev(2), ev(3)]);
        assert_eq!(reader.finish(), None);
    }
}
