//! # tw-obs — structured observability for the timewheel protocols
//!
//! The paper's guarantees are *countable* claims: zero membership
//! messages while failure-free (§4.1), recovery within one no-decision
//! cycle, fail-awareness within a bound. This crate turns those claims
//! into telemetry that can be asserted on a **running** cluster, not just
//! inside the deterministic simulator:
//!
//! * [`trace`] — a typed, allocation-light [`TraceEvent`] stream covering
//!   every protocol-visible transition (decisions sent/received,
//!   suspicions, no-decision hops, wrong-suspicion rescues,
//!   reconfiguration slots, view installations, deliveries, §4.3 purges),
//!   each stamped with the emitting member's hardware/synchronized clock
//!   pair and emitted through a pluggable [`Tracer`] sink.
//! * [`metrics`] — a lock-minimal [`Registry`] of named counters and
//!   bucketed latency histograms. Hot-path updates are single atomic
//!   adds on pre-registered handles; snapshots are `BTreeMap`-keyed so
//!   their iteration order (and JSON export) is deterministic.
//! * [`codec`] — a length-prefixed wire format for trace events so
//!   streams can cross process boundaries; unknown event tags decode to
//!   [`TraceEvent::Unknown`] instead of failing, keeping old consumers
//!   compatible with newer producers.
//! * [`audit`] — a live invariant [`Auditor`] that tails the merged trace
//!   streams of all cluster members and incrementally re-checks the
//!   membership/broadcast invariants (no duplicate deliveries, FIFO and
//!   time order, total-order agreement, majority views, view agreement)
//!   online, so soak and runtime tests can assert correctness from
//!   telemetry alone. Wiring a [`Registry`] into the auditor exports a
//!   `tw_audit_violations_total.<check>` counter per invariant.
//! * [`recorder`] / [`recording`] — a crash-safe [`FlightRecorder`]
//!   sink that spills CRC-framed segments of wire-encoded events to a
//!   per-node file (the node's *black box*), and the loader that reads
//!   them back tolerating torn tails: everything before the damage
//!   loads, damage is reported, never fatal.
//! * [`export`] — Prometheus text exposition of a metrics snapshot, the
//!   payload behind the ops server's `/metrics` endpoint.
//! * [`server`] — the live telemetry plane: a per-node zero-dependency
//!   ops endpoint (`/metrics`, `/status`, `/healthz`), a [`StreamSink`]
//!   that ships TWFR-framed trace segments to subscribers, and the
//!   [`LiveTail`] client that decodes them with the same
//!   [`StreamReader`] the file loader uses — one reader, one
//!   torn-stream contract for disk and wire alike.
//! * [`analyze`] — offline cross-node correlation: merges per-node
//!   recordings on the synchronized clock (ε as the fuzz bound),
//!   reconstructs decision / recovery / reconfiguration spans with
//!   per-phase latency attribution, renders an ASCII global timeline,
//!   and re-audits the merged stream with checks (majority-view
//!   overlap, oal-prefix agreement) a single live stream cannot make.
//!   The `tw-trace` binary is the CLI over this module.
//!
//! The crate depends only on the wire vocabulary ([`tw_proto`]); the
//! protocol core, the simulator and the runtime all layer it in without
//! cycles. Everything here obeys the workspace determinism lint: no
//! wall-clock reads, no ambient randomness, no hash-ordered containers,
//! no floats. File I/O is confined to the recorder/recording modules
//! and the analyzer binary, each annotated for the lint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod audit;
pub mod codec;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod recording;
pub mod server;
pub mod trace;

pub use analyze::{
    analyze, render_timeline, Analysis, DecisionSpan, ReconfigSpan, RecoverySpan, TimelineOptions,
    TraceSet,
};
pub use audit::{Auditor, SharedAuditor, Violation, AUDIT_CHECKS, AUDIT_COUNTER_PREFIX};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, LATENCY_BOUNDS_US,
};
pub use export::{is_valid_metric_name, render_labeled, sanitize_metric_name};
pub use recorder::{encode_header, encode_segment, FlightRecorder, FlushGuard, RecorderConfig};
pub use recording::{Damage, LoadError, Recording, StreamHeader, StreamReader};
pub use server::{http_get, LiveTail, OpsServer, OpsSources, StreamSink};
pub use trace::{ClockStamp, FaultKind, TeeSink, TraceEvent, TraceSink, Tracer, VecSink};

/// Commonly used items.
pub mod prelude {
    pub use crate::analyze::{analyze, Analysis, TraceSet};
    pub use crate::audit::{Auditor, SharedAuditor, Violation};
    pub use crate::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
    pub use crate::recorder::{FlightRecorder, RecorderConfig};
    pub use crate::recording::Recording;
    pub use crate::trace::{ClockStamp, FaultKind, TeeSink, TraceEvent, TraceSink, Tracer, VecSink};
}
