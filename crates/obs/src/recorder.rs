//! Crash-safe flight recorder: a bounded in-memory event buffer that
//! spills CRC-framed segments of wire-encoded trace events to a per-node
//! recording file.
//!
//! The recorder is the durable counterpart of [`crate::trace::VecSink`]:
//! it implements [`TraceSink`], so a member's tracer can feed it
//! directly, but instead of growing without bound it buffers at most
//! `capacity` events and appends them to disk as one *segment* whenever
//! the buffer fills (or on an explicit [`FlightRecorder::flush`], which
//! hosts call at view installations and on shutdown/panic via a drop
//! guard). A node that dies mid-run therefore leaves a black box whose
//! only possible damage is a torn final segment — which the reader
//! ([`crate::recording`]) detects by CRC and skips, never losing the
//! frames before it.
//!
//! ## File format (`TWFR` version 1)
//!
//! ```text
//! header  : magic b"TWFR0001" · pid u16 LE · team u16 LE · epsilon_us i64 LE
//! segment*: len u32 LE · crc32 u32 LE · payload[len]
//! ```
//!
//! The payload of a segment is a concatenation of [`TraceEvent`] wire
//! frames (`tag · len · payload`, [`crate::codec`]) — the exact bytes a
//! live exporter would ship, so recordings and network streams share one
//! vocabulary. `crc32` is CRC-32/ISO-HDLC over the payload bytes. The
//! header carries the emitting process, the team size and the clock-sync
//! deviation bound ε at recording time, so the offline analyzer can
//! align recordings from different nodes without out-of-band
//! configuration.

// tw-lint: allow-file(actor-io) -- the flight recorder IS the module that owns
// file I/O: it runs host-side (behind a TraceSink), never inside a simulated
// actor, and persistence is its entire purpose.

use crate::trace::{TraceEvent, TraceSink};
use bytes::BytesMut;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use tw_proto::codec::Encode;
use tw_proto::{Duration, ProcessId};

/// File magic + format version, the first 8 bytes of every recording.
pub const FILE_MAGIC: &[u8; 8] = b"TWFR0001";
/// Total header length: magic, pid, team, epsilon.
pub const HEADER_LEN: usize = 8 + 2 + 2 + 8;
/// Per-segment framing overhead: length and CRC words.
pub const SEGMENT_OVERHEAD: usize = 4 + 4;

/// Encode a TWFR header: the exact bytes [`FlightRecorder::create`]
/// writes at the start of a file, and the first bytes a live stream
/// server sends to a subscriber — one format, two carriers.
pub fn encode_header(pid: ProcessId, team: usize, epsilon: Duration) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..8].copy_from_slice(FILE_MAGIC);
    out[8..10].copy_from_slice(&pid.0.to_le_bytes());
    out[10..12].copy_from_slice(&(team.min(u16::MAX as usize) as u16).to_le_bytes());
    out[12..20].copy_from_slice(&epsilon.as_micros().to_le_bytes());
    out
}

/// Encode `events` as one TWFR segment (`len · crc32 · payload` with
/// the payload a concatenation of trace-event wire frames). Returns an
/// empty vector for an empty slice — the format has no empty segments.
pub fn encode_segment(events: &[TraceEvent]) -> Vec<u8> {
    if events.is_empty() {
        return Vec::new();
    }
    let mut payload = BytesMut::with_capacity(events.len() * 32);
    for ev in events {
        ev.encode(&mut payload);
    }
    let mut out = Vec::with_capacity(SEGMENT_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ *b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Static parameters of one recording, written into its header.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// The recorded member's process id.
    pub pid: ProcessId,
    /// Team size N (so the analyzer can audit majorities offline).
    pub team: usize,
    /// The clock-sync deviation bound ε the team ran with — the fuzz
    /// bound the analyzer uses when aligning recordings on synchronized
    /// time.
    pub epsilon: Duration,
    /// Events buffered in memory before a segment is spilled. Bounds
    /// both memory use and the worst-case loss window on a hard crash.
    pub capacity: usize,
}

impl RecorderConfig {
    /// A recorder for `pid` in a team of `team` with deviation bound
    /// `epsilon`, using the default buffer capacity (1024 events).
    pub fn new(pid: ProcessId, team: usize, epsilon: Duration) -> Self {
        RecorderConfig {
            pid,
            team,
            epsilon,
            capacity: 1024,
        }
    }

    /// Override the buffer capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }
}

struct Inner {
    buf: Vec<TraceEvent>,
    writer: BufWriter<File>,
    /// Events persisted to disk so far.
    spilled_events: u64,
    /// Segments written so far.
    segments: u64,
    /// First I/O error encountered; once set, the recorder goes inert
    /// (a sink must never panic the protocol thread).
    error: Option<std::io::Error>,
}

/// A crash-safe, file-backed [`TraceSink`]. See the module docs for the
/// format and the durability contract.
pub struct FlightRecorder {
    cfg: RecorderConfig,
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// Create (truncating) the recording file at `path` and write its
    /// header. The returned recorder is ready to use as a sink.
    pub fn create(path: impl AsRef<Path>, cfg: RecorderConfig) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(&encode_header(cfg.pid, cfg.team, cfg.epsilon))?;
        writer.flush()?;
        Ok(FlightRecorder {
            cfg,
            path,
            inner: Mutex::new(Inner {
                buf: Vec::with_capacity(cfg.capacity),
                writer,
                spilled_events: 0,
                segments: 0,
                error: None,
            }),
        })
    }

    /// The recording file this recorder appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorder's static parameters.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spill(inner: &mut Inner) {
        if inner.buf.is_empty() || inner.error.is_some() {
            inner.buf.clear();
            return;
        }
        let segment = encode_segment(&inner.buf);
        let write = (|| -> std::io::Result<()> {
            let w = &mut inner.writer;
            w.write_all(&segment)?;
            w.flush()
        })();
        match write {
            Ok(()) => {
                inner.spilled_events += inner.buf.len() as u64;
                inner.segments += 1;
            }
            Err(e) => inner.error = Some(e),
        }
        inner.buf.clear();
    }

    /// Persist everything buffered so far as one segment and flush the
    /// file. Called by hosts at view installations and from the shutdown
    /// / panic drop guard; cheap when the buffer is empty.
    pub fn flush(&self) {
        let mut inner = self.lock();
        // tw-lint: allow(blocking-under-lock) -- crash-safe spill must write under the lock: the buffer and writer are one atomic unit
        Self::spill(&mut inner);
    }

    /// Events persisted to disk so far (excludes the in-memory buffer).
    pub fn spilled_events(&self) -> u64 {
        self.lock().spilled_events
    }

    /// Events currently buffered in memory, waiting for the next spill
    /// (the occupancy the runtime exports as a gauge).
    pub fn buffered(&self) -> usize {
        self.lock().buf.len()
    }

    /// Segments written so far.
    pub fn segments(&self) -> u64 {
        self.lock().segments
    }

    /// The first I/O error encountered, if the recorder went inert.
    pub fn take_error(&self) -> Option<std::io::Error> {
        self.lock().error.take()
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, ev: &TraceEvent) {
        let mut inner = self.lock();
        inner.buf.push(*ev);
        // Spill when full — and at every view installation, so the
        // on-disk recording is always current through the last
        // membership change even if the host dies without unwinding.
        if inner.buf.len() >= self.cfg.capacity
            || matches!(ev, TraceEvent::ViewInstalled { .. })
        {
            // tw-lint: allow(blocking-under-lock) -- segment spill is the recorder's contract; contention is bounded by capacity and sinks are per-node
            Self::spill(&mut inner);
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Flushes a recorder when dropped — a guard a host thread holds so the
/// recording survives panics.
///
/// The recorder's own `Drop` only runs when the *last* `Arc` goes away;
/// a node handle usually keeps one alive, so a panicking executor thread
/// would not flush the tail on unwind. Holding a `FlushGuard` on the
/// executor's stack closes that gap: unwinding drops the guard, the
/// guard flushes. Cheap when the buffer is already empty.
pub struct FlushGuard(Option<Arc<FlightRecorder>>);

impl FlushGuard {
    /// Guard `recorder` (a `None` guard is a no-op, so hosts can hold
    /// one unconditionally).
    pub fn new(recorder: Option<Arc<FlightRecorder>>) -> Self {
        FlushGuard(recorder)
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        if let Some(r) = &self.0 {
            r.flush();
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("FlightRecorder")
            .field("path", &self.path)
            .field("pid", &self.cfg.pid)
            .field("buffered", &inner.buf.len())
            .field("spilled_events", &inner.spilled_events)
            .field("segments", &inner.segments)
            .field("errored", &inner.error.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::Recording;
    use crate::trace::ClockStamp;
    use tw_proto::{HwTime, SyncTime, ViewId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tw-obs-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn ev(i: i64) -> TraceEvent {
        TraceEvent::DecisionSent {
            pid: ProcessId(1),
            at: ClockStamp {
                hw: HwTime(i),
                sync: SyncTime(i + 2),
            },
            send_ts: SyncTime(i + 2),
            view: ViewId::new(3, ProcessId(0)),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // CRC-32/ISO-HDLC check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn events_roundtrip_through_a_recording_file() {
        let path = tmp("roundtrip.twrec");
        let cfg = RecorderConfig::new(ProcessId(1), 5, Duration::from_micros(250)).capacity(4);
        let rec = FlightRecorder::create(&path, cfg).unwrap();
        for i in 0..10 {
            rec.record(&ev(i));
        }
        rec.flush();
        // 10 events, capacity 4: two full segments + one flushed tail.
        assert_eq!(rec.segments(), 3);
        assert_eq!(rec.spilled_events(), 10);

        let loaded = Recording::load(&path).unwrap();
        assert_eq!(loaded.pid, ProcessId(1));
        assert_eq!(loaded.team, 5);
        assert_eq!(loaded.epsilon, Duration::from_micros(250));
        assert_eq!(loaded.events, (0..10).map(ev).collect::<Vec<_>>());
        assert!(loaded.damage.is_none());
    }

    #[test]
    fn view_install_forces_a_spill() {
        let path = tmp("viewspill.twrec");
        let cfg = RecorderConfig::new(ProcessId(0), 3, Duration::ZERO).capacity(1000);
        let rec = FlightRecorder::create(&path, cfg).unwrap();
        rec.record(&ev(1));
        assert_eq!(rec.segments(), 0, "plain events buffer");
        rec.record(&TraceEvent::ViewInstalled {
            pid: ProcessId(0),
            at: ClockStamp {
                hw: HwTime(5),
                sync: SyncTime(6),
            },
            view: ViewId::new(2, ProcessId(0)),
            members: tw_proto::AckBits(0b111),
        });
        assert_eq!(rec.segments(), 1, "view install must reach disk");
        assert_eq!(rec.spilled_events(), 2);
    }

    #[test]
    fn flush_guard_flushes_while_other_arcs_live() {
        let path = tmp("guard.twrec");
        let cfg = RecorderConfig::new(ProcessId(0), 3, Duration::ZERO).capacity(100);
        let rec = Arc::new(FlightRecorder::create(&path, cfg).unwrap());
        let keepalive = rec.clone(); // the "node handle"
        {
            let _guard = FlushGuard::new(Some(rec.clone()));
            rec.record(&ev(3));
        } // guard drops here; recorder itself stays alive
        assert_eq!(keepalive.spilled_events(), 1);
        let loaded = Recording::load(&path).unwrap();
        assert_eq!(loaded.events, vec![ev(3)]);
    }

    #[test]
    fn drop_flushes_the_tail() {
        let path = tmp("dropflush.twrec");
        let cfg = RecorderConfig::new(ProcessId(0), 3, Duration::ZERO).capacity(100);
        {
            let rec = FlightRecorder::create(&path, cfg).unwrap();
            rec.record(&ev(7));
        } // dropped without an explicit flush
        let loaded = Recording::load(&path).unwrap();
        assert_eq!(loaded.events, vec![ev(7)]);
    }

    #[test]
    fn empty_flush_writes_no_segment() {
        let path = tmp("empty.twrec");
        let cfg = RecorderConfig::new(ProcessId(0), 3, Duration::ZERO);
        let rec = FlightRecorder::create(&path, cfg).unwrap();
        rec.flush();
        rec.flush();
        assert_eq!(rec.segments(), 0);
        drop(rec);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN as u64);
        let loaded = Recording::load(&path).unwrap();
        assert!(loaded.events.is_empty());
        assert!(loaded.damage.is_none());
    }
}
