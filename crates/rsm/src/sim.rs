//! Replicated state machines on the deterministic simulator.
//!
//! Each simulated member gets a [`MachineHost`] attached through the
//! harness's delivery hook: deliveries are applied synchronously, the
//! member's transferable snapshot is refreshed after every command, and a
//! join-time state transfer replaces the machine wholesale — so the
//! machine is always exactly the fold of the member's delivery history.

use crate::machine::{MachineHost, StateMachine};
use std::cell::RefCell;
use std::rc::Rc;
use timewheel::harness::{team_world, AppEvent, SimMember, TeamParams};
use timewheel::Member;
use tw_proto::ProcessId;
use tw_sim::{ClockConfig, World, WorldConfig};

/// Shared handle to one replica's machine (the simulator is
/// single-threaded, so `Rc<RefCell<…>>` is the right tool).
pub type MachineHandle<S> = Rc<RefCell<MachineHost<S>>>;

/// Build a simulated team whose members each host a state machine
/// produced by `make`. Returns the world plus per-replica machine
/// handles (index = rank).
pub fn rsm_team<S, F>(params: &TeamParams, mut make: F) -> (World<SimMember>, Vec<MachineHandle<S>>)
where
    S: StateMachine,
    F: FnMut() -> S,
{
    // Build the same world team_world() would, but attach hooks.
    let cfg = params.protocol_config();
    let mut world = World::new(WorldConfig {
        seed: params.seed,
        link: params.link,
        sched_jitter: tw_proto::Duration::ZERO,
        trace: false,
    });
    let mut handles = Vec::with_capacity(params.n);
    for i in 0..params.n {
        let pid = ProcessId(i as u16);
        let member = Member::new_unchecked(pid, cfg);
        let host: MachineHandle<S> = Rc::new(RefCell::new(MachineHost::new(make())));
        handles.push(host.clone());
        let hook = Box::new(move |ev: AppEvent<'_>| match ev {
            AppEvent::Deliver(d) => Some(host.borrow_mut().apply_delivery(d)),
            AppEvent::InstallSnapshot(b) => {
                host.borrow_mut().install_snapshot(b);
                Some(b.clone())
            }
        });
        let drift = if i % 2 == 0 {
            params.drift_ppm
        } else {
            -params.drift_ppm
        };
        world.add_process(
            SimMember::new(member).with_hook(hook),
            ClockConfig::with_drift_ppm(drift),
        );
    }
    let _ = team_world; // (same construction; kept for discoverability)
    (world, handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{Counter, CounterCmd, KvCmd, KvStore};
    use timewheel::harness::{all_in_group, run_until_pred};
    use tw_proto::codec::Encode;
    use tw_proto::{Duration, Semantics};
    use tw_sim::SimTime;

    fn propose_cmd(w: &mut World<SimMember>, at: SimTime, who: u16, cmd: bytes::Bytes) {
        w.call_at(at, ProcessId(who), move |a, ctx| {
            if let Ok(actions) = a.member.propose(ctx.now_hw(), cmd, Semantics::TOTAL_STRONG) {
                for act in actions {
                    match act {
                        timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                        timewheel::Action::Send(to, m) => ctx.send(to, m),
                        timewheel::Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                        _ => {}
                    }
                }
            }
        });
    }

    #[test]
    fn counters_converge() {
        let params = TeamParams::new(3);
        let (mut w, machines) = rsm_team(&params, Counter::default);
        run_until_pred(&mut w, SimTime::from_secs(30), |w| all_in_group(w, 3)).unwrap();
        for (k, amount) in [(0u16, 5i64), (1, 7), (2, -3)] {
            let at = w.now() + Duration::from_millis(50 * (k as i64 + 1));
            propose_cmd(&mut w, at, k, CounterCmd::Add(amount).to_bytes());
        }
        w.run_for(Duration::from_secs(5));
        for m in &machines {
            assert_eq!(m.borrow().machine().total(), 9);
            assert_eq!(m.borrow().applied(), 3);
        }
    }

    #[test]
    fn kv_replicas_identical() {
        let params = TeamParams::new(5).seed(3);
        let (mut w, machines) = rsm_team(&params, KvStore::new);
        run_until_pred(&mut w, SimTime::from_secs(30), |w| all_in_group(w, 5)).unwrap();
        for i in 0..10u16 {
            let cmd = KvCmd::Put {
                key: format!("k{}", i % 4),
                value: format!("v{i}"),
            };
            let at = w.now() + Duration::from_millis(30 * (i as i64 + 1));
            propose_cmd(&mut w, at, i % 5, cmd.to_bytes());
        }
        w.run_for(Duration::from_secs(5));
        let first = machines[0].borrow().machine().clone();
        assert_eq!(first.len(), 4);
        for m in &machines[1..] {
            assert_eq!(m.borrow().machine(), &first);
        }
        timewheel::invariants::assert_all(&w);
    }

    #[test]
    fn rejoined_replica_catches_up_via_snapshot() {
        let params = TeamParams::new(5).seed(9);
        let (mut w, machines) = rsm_team(&params, Counter::default);
        run_until_pred(&mut w, SimTime::from_secs(30), |w| all_in_group(w, 5)).unwrap();
        // Apply some commands, then crash p2.
        for k in 0..4i64 {
            let at = w.now() + Duration::from_millis(40 * (k + 1));
            propose_cmd(&mut w, at, (k % 5) as u16, CounterCmd::Add(10).to_bytes());
        }
        let crash_at = w.now() + Duration::from_millis(500);
        w.crash_at(crash_at, ProcessId(2));
        // More commands while p2 is down (it misses these).
        for k in 0..3i64 {
            let at = crash_at + Duration::from_millis(500 + 40 * (k + 1));
            propose_cmd(&mut w, at, 0, CounterCmd::Add(1).to_bytes());
        }
        let recover_at = crash_at + Duration::from_secs(4);
        w.recover_at(recover_at, ProcessId(2));
        w.run_until(recover_at + Duration::from_millis(1));
        run_until_pred(&mut w, recover_at + Duration::from_secs(60), |w| {
            all_in_group(w, 5)
        })
        .expect("rejoin");
        // Post-rejoin command: everyone, including p2, must land on the
        // same total — which requires p2 to have installed the snapshot
        // covering the missed commands.
        let at = w.now() + Duration::from_millis(200);
        propose_cmd(&mut w, at, 1, CounterCmd::Add(100).to_bytes());
        w.run_for(Duration::from_secs(5));
        let expect = 4 * 10 + 3 + 100;
        for (i, m) in machines.iter().enumerate() {
            assert_eq!(m.borrow().machine().total(), expect, "replica {i} diverged");
        }
    }
}
