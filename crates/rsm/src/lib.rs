//! # tw-rsm — replicated state machines on the timewheel service
//!
//! The paper's motivating technique (§1): "implement [a dependable
//! service] by a team of replicated servers … the currently running team
//! members maintain a consistent replicated service state and, if one
//! member fails, the others form a new group and continue to provide the
//! service."
//!
//! This crate is that technique, packaged: implement [`StateMachine`] for
//! your deterministic service state, and the timewheel atomic broadcast
//! (total order + strong atomicity) plus the membership protocol's
//! join-time state transfer do the rest — every replica applies the same
//! commands in the same order, crashed replicas are excluded, recovered
//! replicas are re-integrated with a snapshot.
//!
//! Two hosts are provided:
//!
//! * [`sim::rsm_team`] — replicas on the deterministic simulator (what
//!   the tests and experiments use);
//! * [`cluster::RsmNode`] / [`cluster::spawn_rsm_cluster`] — replicas on
//!   real threads with a synchronous `execute` API.
//!
//! Two ready-made machines live in [`machines`]: a key-value store and a
//! counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod machine;
pub mod machines;
pub mod sim;

pub use cluster::{spawn_rsm_cluster, RsmNode};
pub use machine::{CommandOutcome, MachineHost, StateMachine};
pub use machines::{Counter, CounterCmd, KvCmd, KvResponse, KvStore};
