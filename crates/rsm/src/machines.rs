//! Ready-made state machines: a key-value store and a counter.
//!
//! Commands and responses use the workspace's own binary codec
//! ([`tw_proto::codec`]), so they are compact on the wire and symmetric
//! with the protocol messages.

use crate::machine::StateMachine;
use bytes::{Bytes, BytesMut};
use std::collections::BTreeMap;
use tw_proto::codec::{Decode, Encode, WireError};

// ---------------------------------------------------------------- KvStore

/// Commands of the replicated key-value store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCmd {
    /// Set `key` to `value`; responds with the previous value.
    Put {
        /// Key.
        key: String,
        /// New value.
        value: String,
    },
    /// Read `key`.
    Get {
        /// Key.
        key: String,
    },
    /// Remove `key`; responds with the removed value.
    Del {
        /// Key.
        key: String,
    },
    /// Compare-and-swap: set `key` to `new` iff it currently equals
    /// `expect` (`None` = key absent).
    Cas {
        /// Key.
        key: String,
        /// Expected current value.
        expect: Option<String>,
        /// Replacement value.
        new: String,
    },
}

/// Responses of the key-value store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// The value (or previous value), if any.
    Value(Option<String>),
    /// CAS verdict.
    CasResult {
        /// Whether the swap happened.
        swapped: bool,
        /// The value actually present at decision time.
        actual: Option<String>,
    },
    /// The command bytes did not decode.
    BadCommand,
}

fn put_string(buf: &mut BytesMut, s: &str) {
    (s.len() as u32).encode(buf);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    let raw = Bytes::decode(buf)?;
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadTag {
        what: "utf8 string",
        tag: 0,
    })
}

fn put_opt_string(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        None => false.encode(buf),
        Some(v) => {
            true.encode(buf);
            put_string(buf, v);
        }
    }
}

fn get_opt_string(buf: &mut Bytes) -> Result<Option<String>, WireError> {
    if bool::decode(buf)? {
        Ok(Some(get_string(buf)?))
    } else {
        Ok(None)
    }
}

impl Encode for KvCmd {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            KvCmd::Put { key, value } => {
                0u8.encode(buf);
                put_string(buf, key);
                put_string(buf, value);
            }
            KvCmd::Get { key } => {
                1u8.encode(buf);
                put_string(buf, key);
            }
            KvCmd::Del { key } => {
                2u8.encode(buf);
                put_string(buf, key);
            }
            KvCmd::Cas { key, expect, new } => {
                3u8.encode(buf);
                put_string(buf, key);
                put_opt_string(buf, expect);
                put_string(buf, new);
            }
        }
    }
}

impl Decode for KvCmd {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => KvCmd::Put {
                key: get_string(buf)?,
                value: get_string(buf)?,
            },
            1 => KvCmd::Get {
                key: get_string(buf)?,
            },
            2 => KvCmd::Del {
                key: get_string(buf)?,
            },
            3 => KvCmd::Cas {
                key: get_string(buf)?,
                expect: get_opt_string(buf)?,
                new: get_string(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "kv-cmd",
                    tag,
                })
            }
        })
    }
}

impl Encode for KvResponse {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            KvResponse::Value(v) => {
                0u8.encode(buf);
                put_opt_string(buf, v);
            }
            KvResponse::CasResult { swapped, actual } => {
                1u8.encode(buf);
                swapped.encode(buf);
                put_opt_string(buf, actual);
            }
            KvResponse::BadCommand => 2u8.encode(buf),
        }
    }
}

impl Decode for KvResponse {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => KvResponse::Value(get_opt_string(buf)?),
            1 => KvResponse::CasResult {
                swapped: bool::decode(buf)?,
                actual: get_opt_string(buf)?,
            },
            2 => KvResponse::BadCommand,
            tag => {
                return Err(WireError::BadTag {
                    what: "kv-response",
                    tag,
                })
            }
        })
    }
}

/// The replicated key-value store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, String>,
}

impl KvStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a key directly (local, not replicated — for tests and
    /// observers).
    pub fn get(&self, key: &str) -> Option<&String> {
        self.map.get(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, command: &[u8]) -> Bytes {
        let resp = match KvCmd::from_bytes(command) {
            Err(_) => KvResponse::BadCommand,
            Ok(KvCmd::Put { key, value }) => KvResponse::Value(self.map.insert(key, value)),
            Ok(KvCmd::Get { key }) => KvResponse::Value(self.map.get(&key).cloned()),
            Ok(KvCmd::Del { key }) => KvResponse::Value(self.map.remove(&key)),
            Ok(KvCmd::Cas { key, expect, new }) => {
                let actual = self.map.get(&key).cloned();
                if actual == expect {
                    self.map.insert(key, new);
                    KvResponse::CasResult {
                        swapped: true,
                        actual,
                    }
                } else {
                    KvResponse::CasResult {
                        swapped: false,
                        actual,
                    }
                }
            }
        };
        resp.to_bytes()
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        (self.map.len() as u32).encode(&mut buf);
        for (k, v) in &self.map {
            put_string(&mut buf, k);
            put_string(&mut buf, v);
        }
        buf.freeze()
    }

    fn restore(snapshot: &[u8]) -> Self {
        let mut buf = Bytes::copy_from_slice(snapshot);
        let n = u32::decode(&mut buf).expect("kv snapshot length");
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = get_string(&mut buf).expect("kv snapshot key");
            let v = get_string(&mut buf).expect("kv snapshot value");
            map.insert(k, v);
        }
        KvStore { map }
    }
}

// ---------------------------------------------------------------- Counter

/// Commands of the replicated counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterCmd {
    /// Add a (possibly negative) amount; responds with the new total.
    Add(i64),
    /// Read the total.
    Read,
}

impl Encode for CounterCmd {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CounterCmd::Add(v) => {
                0u8.encode(buf);
                v.encode(buf);
            }
            CounterCmd::Read => 1u8.encode(buf),
        }
    }
}

impl Decode for CounterCmd {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => CounterCmd::Add(i64::decode(buf)?),
            1 => CounterCmd::Read,
            tag => {
                return Err(WireError::BadTag {
                    what: "counter-cmd",
                    tag,
                })
            }
        })
    }
}

/// The replicated counter; responses are the little-endian total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    total: i64,
}

impl Counter {
    /// The current total (local observer access).
    pub fn total(&self) -> i64 {
        self.total
    }
}

impl StateMachine for Counter {
    fn apply(&mut self, command: &[u8]) -> Bytes {
        if let Ok(CounterCmd::Add(v)) = CounterCmd::from_bytes(command) {
            self.total += v;
        }
        Bytes::from(self.total.to_le_bytes().to_vec())
    }

    fn snapshot(&self) -> Bytes {
        Bytes::from(self.total.to_le_bytes().to_vec())
    }

    fn restore(snapshot: &[u8]) -> Self {
        let total = i64::from_le_bytes(snapshot.try_into().expect("counter snapshot"));
        Counter { total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_commands_round_trip() {
        for cmd in [
            KvCmd::Put {
                key: "k".into(),
                value: "v".into(),
            },
            KvCmd::Get { key: "k".into() },
            KvCmd::Del { key: "k".into() },
            KvCmd::Cas {
                key: "k".into(),
                expect: Some("old".into()),
                new: "new".into(),
            },
            KvCmd::Cas {
                key: "k".into(),
                expect: None,
                new: "new".into(),
            },
        ] {
            let b = cmd.to_bytes();
            assert_eq!(KvCmd::from_bytes(&b).unwrap(), cmd);
        }
    }

    #[test]
    fn kv_semantics() {
        let mut kv = KvStore::new();
        let r = kv.apply(
            &KvCmd::Put {
                key: "a".into(),
                value: "1".into(),
            }
            .to_bytes(),
        );
        assert_eq!(KvResponse::from_bytes(&r).unwrap(), KvResponse::Value(None));
        let r = kv.apply(&KvCmd::Get { key: "a".into() }.to_bytes());
        assert_eq!(
            KvResponse::from_bytes(&r).unwrap(),
            KvResponse::Value(Some("1".into()))
        );
        let r = kv.apply(
            &KvCmd::Cas {
                key: "a".into(),
                expect: Some("1".into()),
                new: "2".into(),
            }
            .to_bytes(),
        );
        assert_eq!(
            KvResponse::from_bytes(&r).unwrap(),
            KvResponse::CasResult {
                swapped: true,
                actual: Some("1".into())
            }
        );
        let r = kv.apply(
            &KvCmd::Cas {
                key: "a".into(),
                expect: Some("1".into()),
                new: "3".into(),
            }
            .to_bytes(),
        );
        assert_eq!(
            KvResponse::from_bytes(&r).unwrap(),
            KvResponse::CasResult {
                swapped: false,
                actual: Some("2".into())
            }
        );
        let r = kv.apply(&KvCmd::Del { key: "a".into() }.to_bytes());
        assert_eq!(
            KvResponse::from_bytes(&r).unwrap(),
            KvResponse::Value(Some("2".into()))
        );
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_snapshot_round_trip() {
        let mut kv = KvStore::new();
        for i in 0..20 {
            kv.apply(
                &KvCmd::Put {
                    key: format!("key-{i}"),
                    value: format!("value-{i}"),
                }
                .to_bytes(),
            );
        }
        let snap = kv.snapshot();
        let restored = KvStore::restore(&snap);
        assert_eq!(restored, kv);
        assert_eq!(restored.len(), 20);
        assert_eq!(restored.get("key-7"), Some(&"value-7".to_string()));
    }

    #[test]
    fn kv_rejects_garbage_gracefully() {
        let mut kv = KvStore::new();
        let r = kv.apply(b"\xff\xff\xff");
        assert_eq!(KvResponse::from_bytes(&r).unwrap(), KvResponse::BadCommand);
        assert!(kv.is_empty());
    }

    #[test]
    fn counter_semantics_and_snapshot() {
        let mut c = Counter::default();
        c.apply(&CounterCmd::Add(5).to_bytes());
        let r = c.apply(&CounterCmd::Add(-2).to_bytes());
        assert_eq!(i64::from_le_bytes(r.as_ref().try_into().unwrap()), 3);
        let r = c.apply(&CounterCmd::Read.to_bytes());
        assert_eq!(i64::from_le_bytes(r.as_ref().try_into().unwrap()), 3);
        let restored = Counter::restore(&c.snapshot());
        assert_eq!(restored.total(), 3);
    }
}
