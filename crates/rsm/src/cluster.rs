//! Replicated state machines on real threads, with a synchronous
//! client API.
//!
//! [`spawn_rsm_cluster`] attaches a [`MachineHost`] to every node of an
//! in-process cluster (the machine is applied *inside* the executor, so
//! snapshots shipped to joiners are always consistent with the delivery
//! stream), and wraps each node in an [`RsmNode`] whose
//! [`execute`](RsmNode::execute) proposes a command, waits for its own
//! delivery, and returns the machine's response.

use crate::machine::{MachineHost, StateMachine};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration as StdDuration;
use timewheel::{Config, ProposeError};
use tw_proto::{ProposalId, Semantics};
use tw_runtime::{AppEvent, ExecutorKind, Node, NodeOutput};

/// Why an [`RsmNode::execute`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecuteError {
    /// The protocol rejected the proposal.
    Rejected(ProposeError),
    /// The command was not delivered within the deadline (the node may
    /// be outside the group, or the group may be reforming).
    Timeout,
    /// The node's threads are gone.
    Closed,
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::Rejected(e) => write!(f, "proposal rejected: {e}"),
            ExecuteError::Timeout => f.write_str("command not delivered in time"),
            ExecuteError::Closed => f.write_str("node closed"),
        }
    }
}

impl std::error::Error for ExecuteError {}

/// One replica of the service: a protocol node plus its machine.
pub struct RsmNode<S: StateMachine> {
    /// The underlying protocol node.
    pub node: Node,
    machine: Arc<Mutex<MachineHost<S>>>,
}

impl<S: StateMachine> RsmNode<S> {
    /// Inspect the replica's machine (read-only snapshot access).
    pub fn with_machine<R>(&self, f: impl FnOnce(&MachineHost<S>) -> R) -> R {
        f(&self.machine.lock())
    }

    /// Execute one command through the replicated log: proposes it with
    /// total/strong semantics, waits for this replica to deliver it, and
    /// returns the machine's response.
    ///
    /// Single-threaded client assumption: `execute` calls on one node
    /// must not be interleaved from multiple threads (responses are
    /// matched by this node's own-proposal delivery order, which the
    /// protocol's FIFO condition guarantees).
    pub fn execute(&self, command: Bytes, timeout: StdDuration) -> Result<Bytes, ExecuteError> {
        self.node.propose(command, Semantics::TOTAL_STRONG);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return Err(ExecuteError::Timeout);
            };
            match self.node.outputs.recv_timeout(left) {
                Ok(NodeOutput::Delivery(d)) if d.id.proposer == self.node.pid => {
                    return self.response_for(d.id).ok_or(ExecuteError::Timeout);
                }
                Ok(NodeOutput::ProposeRejected(e)) => return Err(ExecuteError::Rejected(e)),
                Ok(_) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    return Err(ExecuteError::Timeout)
                }
                Err(_) => return Err(ExecuteError::Closed),
            }
        }
    }

    fn response_for(&self, id: ProposalId) -> Option<Bytes> {
        self.machine
            .lock()
            .outcomes()
            .iter()
            .rev()
            .find(|o| o.id == id)
            .map(|o| o.response.clone())
    }

    /// Wait until this replica is in a view of `size` members.
    pub fn wait_for_view(&self, size: usize, timeout: StdDuration) -> bool {
        self.node.wait_for_view(size, timeout).is_some()
    }

    /// Stop the replica.
    pub fn shutdown(self) {
        self.node.shutdown();
    }
}

/// Start an in-process replicated service of `cfg.n` replicas, each
/// hosting a machine produced by `make`.
pub fn spawn_rsm_cluster<S, F>(kind: ExecutorKind, cfg: Config, mut make: F) -> Vec<RsmNode<S>>
where
    S: StateMachine,
    F: FnMut() -> S,
{
    let machines: Vec<Arc<Mutex<MachineHost<S>>>> = (0..cfg.n)
        .map(|_| Arc::new(Mutex::new(MachineHost::new(make()))))
        .collect();
    let hook_machines = machines.clone();
    let nodes = tw_runtime::spawn_cluster_with_hooks(kind, cfg, move |pid| {
        let host = hook_machines[pid.rank()].clone();
        Some(Box::new(move |ev: AppEvent<'_>| match ev {
            AppEvent::Deliver(d) => Some(host.lock().apply_delivery(d)),
            AppEvent::InstallSnapshot(b) => {
                host.lock().install_snapshot(b);
                Some(b.clone())
            }
        }) as tw_runtime::DeliveryHook)
    });
    nodes
        .into_iter()
        .zip(machines)
        .map(|(node, machine)| RsmNode { node, machine })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{KvCmd, KvResponse, KvStore};
    use tw_proto::codec::{Decode, Encode};
    use tw_proto::Duration;

    #[test]
    fn kv_cluster_executes_and_replicates() {
        let cfg = Config::for_team(3, Duration::from_millis(10));
        let nodes = spawn_rsm_cluster(ExecutorKind::EventLoop, cfg, KvStore::new);
        for n in &nodes {
            assert!(n.wait_for_view(3, StdDuration::from_secs(20)));
        }
        let to = StdDuration::from_secs(10);
        let r = nodes[0]
            .execute(
                KvCmd::Put {
                    key: "city".into(),
                    value: "laramie".into(),
                }
                .to_bytes(),
                to,
            )
            .unwrap();
        assert_eq!(KvResponse::from_bytes(&r).unwrap(), KvResponse::Value(None));
        // Execute a read at a DIFFERENT replica: sees the write (total
        // order = the read command is serialized after the put).
        let r = nodes[2]
            .execute(KvCmd::Get { key: "city".into() }.to_bytes(), to)
            .unwrap();
        assert_eq!(
            KvResponse::from_bytes(&r).unwrap(),
            KvResponse::Value(Some("laramie".into()))
        );
        // All replicas converged.
        std::thread::sleep(StdDuration::from_millis(300));
        for n in &nodes {
            n.with_machine(|m| {
                assert_eq!(m.machine().get("city"), Some(&"laramie".to_string()));
            });
        }
        for n in nodes {
            n.shutdown();
        }
    }

    #[test]
    fn cas_contention_is_serialized() {
        let cfg = Config::for_team(3, Duration::from_millis(10));
        let nodes = spawn_rsm_cluster(ExecutorKind::EventLoop, cfg, KvStore::new);
        for n in &nodes {
            assert!(n.wait_for_view(3, StdDuration::from_secs(20)));
        }
        let to = StdDuration::from_secs(10);
        nodes[0]
            .execute(
                KvCmd::Put {
                    key: "lock".into(),
                    value: "free".into(),
                }
                .to_bytes(),
                to,
            )
            .unwrap();
        // Two replicas race a CAS on the same expectation; exactly one
        // must win because the commands are totally ordered.
        let cas = |who: &str| KvCmd::Cas {
            key: "lock".into(),
            expect: Some("free".into()),
            new: who.into(),
        };
        let h0 = {
            let cmd: Bytes = cas("n0").to_bytes();
            let node = &nodes[0];
            node.execute(cmd, to).unwrap()
        };
        let h2 = {
            let cmd: Bytes = cas("n2").to_bytes();
            let node = &nodes[2];
            node.execute(cmd, to).unwrap()
        };
        let r0 = KvResponse::from_bytes(&h0).unwrap();
        let r2 = KvResponse::from_bytes(&h2).unwrap();
        let wins = [&r0, &r2]
            .iter()
            .filter(|r| matches!(r, KvResponse::CasResult { swapped: true, .. }))
            .count();
        assert_eq!(wins, 1, "exactly one CAS may win: {r0:?} vs {r2:?}");
        for n in nodes {
            n.shutdown();
        }
    }
}
