//! The state-machine abstraction and its host.
//!
//! A [`StateMachine`] is the deterministic heart of a replicated service:
//! commands in, responses out, snapshot/restore for join-time state
//! transfer. [`MachineHost`] wraps one replica's machine and adapts it to
//! the protocol's delivery stream.

use bytes::Bytes;
use timewheel::Delivery;

/// A deterministic service state.
///
/// Determinism is the only real requirement: two machines that start
/// equal and apply the same command sequence must stay equal (no clocks,
/// no randomness, no I/O inside `apply`).
pub trait StateMachine: Send + 'static {
    /// Apply one command, mutating the state and returning the response
    /// a client would receive.
    fn apply(&mut self, command: &[u8]) -> Bytes;

    /// Serialize the full state (shipped to joining replicas).
    fn snapshot(&self) -> Bytes;

    /// Rebuild the state from a snapshot. Must accept every byte string
    /// `snapshot` can produce; malformed input may panic (it indicates a
    /// protocol-level corruption, which deterministic replication rules
    /// out).
    fn restore(snapshot: &[u8]) -> Self;
}

/// What happened when a delivery was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutcome {
    /// The proposal that carried the command.
    pub id: tw_proto::ProposalId,
    /// The machine's response.
    pub response: Bytes,
}

/// One replica's machine plus its apply log.
pub struct MachineHost<S: StateMachine> {
    machine: S,
    applied: u64,
    outcomes: Vec<CommandOutcome>,
}

impl<S: StateMachine> MachineHost<S> {
    /// Host a fresh machine.
    pub fn new(machine: S) -> Self {
        MachineHost {
            machine,
            applied: 0,
            outcomes: Vec::new(),
        }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &S {
        &self.machine
    }

    /// Number of commands applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The responses produced so far (drained by hosts that forward them
    /// to clients).
    pub fn outcomes(&self) -> &[CommandOutcome] {
        &self.outcomes
    }

    /// Apply a delivered update; returns the current snapshot so the
    /// hosting layer can refresh the member's transferable state.
    pub fn apply_delivery(&mut self, d: &Delivery) -> Bytes {
        let response = self.machine.apply(&d.payload);
        self.applied += 1;
        self.outcomes.push(CommandOutcome { id: d.id, response });
        self.machine.snapshot()
    }

    /// Adopt a transferred snapshot (joining replica).
    pub fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.machine = S::restore(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_proto::{Ordinal, ProcessId, ProposalId, Semantics, SyncTime};

    /// Appends bytes; snapshot is the whole history.
    struct Log(Vec<u8>);
    impl StateMachine for Log {
        fn apply(&mut self, c: &[u8]) -> Bytes {
            self.0.extend_from_slice(c);
            Bytes::from(vec![c.len() as u8])
        }
        fn snapshot(&self) -> Bytes {
            Bytes::from(self.0.clone())
        }
        fn restore(s: &[u8]) -> Self {
            Log(s.to_vec())
        }
    }

    fn delivery(seq: u64, payload: &'static [u8]) -> Delivery {
        Delivery {
            id: ProposalId::new(ProcessId(0), seq),
            ordinal: Some(Ordinal(seq)),
            semantics: Semantics::TOTAL_STRONG,
            send_ts: SyncTime(seq as i64),
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn applies_and_snapshots() {
        let mut h = MachineHost::new(Log(vec![]));
        let s1 = h.apply_delivery(&delivery(1, b"ab"));
        assert_eq!(s1, Bytes::from_static(b"ab"));
        let s2 = h.apply_delivery(&delivery(2, b"c"));
        assert_eq!(s2, Bytes::from_static(b"abc"));
        assert_eq!(h.applied(), 2);
        assert_eq!(h.outcomes().len(), 2);
        assert_eq!(h.outcomes()[0].response, Bytes::from(vec![2u8]));
    }

    #[test]
    fn restore_replaces_state() {
        let mut h = MachineHost::new(Log(vec![]));
        h.apply_delivery(&delivery(1, b"zz"));
        h.install_snapshot(b"fresh");
        assert_eq!(h.machine().0, b"fresh");
    }

    #[test]
    fn two_hosts_replaying_agree() {
        let cmds: Vec<&'static [u8]> = vec![b"a", b"bc", b"def"];
        let mut a = MachineHost::new(Log(vec![]));
        let mut b = MachineHost::new(Log(vec![]));
        for (i, c) in cmds.iter().enumerate() {
            a.apply_delivery(&delivery(i as u64 + 1, c));
            b.apply_delivery(&delivery(i as u64 + 1, c));
        }
        assert_eq!(a.machine().0, b.machine().0);
        assert_eq!(a.outcomes(), b.outcomes());
    }
}
