//! The lint must (a) flag each rule on a deliberately-bad fixture,
//! (b) respect justified allow annotations, and (c) pass on the real
//! workspace — which is the acceptance gate CI runs.

use std::path::Path;
use xtask::lint::{lint_source, lint_workspace, repo_root, Finding};

fn lint(src: &str) -> Vec<Finding> {
    lint_source(Path::new("fixture.rs"), src)
}

fn rules_hit(src: &str) -> Vec<String> {
    let mut r: Vec<String> = lint(src).into_iter().map(|f| f.rule).collect();
    r.dedup();
    r
}

#[test]
fn wall_clock_fixture_is_flagged() {
    let src = r#"
        use std::time::Instant;
        fn bad() { let t = Instant::now(); }
    "#;
    let f = lint(src);
    assert!(f.iter().all(|f| f.rule == "wall-clock"), "{f:?}");
    assert_eq!(f.len(), 2, "both the use and the call site: {f:?}");
    assert_eq!(rules_hit("let x = std::time::SystemTime::now();"), ["wall-clock"]);
}

#[test]
fn ambient_rng_fixture_is_flagged() {
    assert_eq!(rules_hit("let mut r = rand::thread_rng();"), ["ambient-rng"]);
    assert_eq!(rules_hit("let r = StdRng::from_entropy();"), ["ambient-rng"]);
    assert_eq!(rules_hit("use rand::rngs::OsRng;"), ["ambient-rng"]);
    assert_eq!(rules_hit("let x: u8 = rand::random();"), ["ambient-rng"]);
    // Seeded construction is the sanctioned path.
    assert_eq!(rules_hit("let r = StdRng::seed_from_u64(42);"), Vec::<String>::new());
}

#[test]
fn hash_container_fixture_is_flagged() {
    let src = "use std::collections::HashMap;\nlet s: HashSet<u32> = HashSet::new();";
    let rules = rules_hit(src);
    assert_eq!(rules, ["hash-container"]);
    assert_eq!(lint(src).len(), 3);
    // The deterministic alternatives stay silent.
    assert_eq!(rules_hit("use std::collections::{BTreeMap, BTreeSet};"), Vec::<String>::new());
}

#[test]
fn float_state_fixture_is_flagged() {
    assert_eq!(rules_hit("pub struct S { pub skew: f64 }"), ["float-state"]);
    assert_eq!(rules_hit("fn f(x: f32) -> f32 { x }"), ["float-state"]);
    // Numeric literals with suffixes are not type mentions.
    assert_eq!(rules_hit("let micros = 1_000_000u64;"), Vec::<String>::new());
}

#[test]
fn actor_io_fixture_is_flagged() {
    assert_eq!(rules_hit(r#"fn f() { println!("hi"); }"#), ["actor-io"]);
    assert_eq!(rules_hit("use std::net::UdpSocket;"), ["actor-io"]);
    assert_eq!(rules_hit(r#"let d = std::fs::read("x");"#), ["actor-io"]);
    assert_eq!(rules_hit(r#"let v = std::env::var("SEED");"#), ["actor-io"]);
    assert_eq!(rules_hit("let x = dbg!(1 + 1);"), ["actor-io"]);
    // `print` as a plain identifier (no `!`) is someone's function name.
    assert_eq!(rules_hit("fn print(x: u8) {} fn g() { print(1); }"), Vec::<String>::new());
}

#[test]
fn needles_in_strings_and_comments_do_not_fire() {
    let src = r##"
        // HashMap would be wrong here, Instant::now() too
        /* thread_rng(), SystemTime, f64 */
        let doc = "uses std::env::var and println! at runtime";
        let raw = r#"OsRng HashSet f32"#;
    "##;
    assert_eq!(lint(src), Vec::new());
}

#[test]
fn line_allow_with_justification_silences_only_that_line() {
    let src = "\
// tw-lint: allow(float-state) -- simulated clock drift rate, not protocol state
pub drift: f64,
pub other: f64,
";
    let f = lint(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn same_line_allow_works() {
    let src = "pub rho: f64, // tw-lint: allow(float-state) -- bound parameter from the paper";
    assert_eq!(lint(src), Vec::new());
}

#[test]
fn file_allow_silences_the_whole_file_for_that_rule_only() {
    let src = "\
// tw-lint: allow-file(float-state) -- time-unit conversion helpers
fn a(x: f64) -> f64 { x }
fn b(y: f32) -> f32 { y }
use std::collections::HashMap;
";
    let f = lint(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "hash-container");
}

#[test]
fn allow_without_justification_is_itself_a_finding() {
    let src = "// tw-lint: allow(float-state)\npub x: f64,";
    let f = lint(src);
    assert!(f.iter().any(|f| f.rule == "lint-annotation"), "{f:?}");
    assert!(
        f.iter().any(|f| f.rule == "float-state"),
        "unjustified allow must not suppress: {f:?}"
    );
}

#[test]
fn allow_of_unknown_rule_is_reported() {
    let src = "// tw-lint: allow(hash-map) -- oops, renamed rule\nlet x = 1;";
    let f = lint(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "lint-annotation");
    assert!(f[0].message.contains("hash-map"));
}

#[test]
fn multi_rule_allow_parses() {
    let src = "\
// tw-lint: allow(float-state, actor-io) -- debug-only diagnostics
fn f(x: f64) { eprintln!(\"{x}\"); }
";
    assert_eq!(lint(src), Vec::new());
}

#[test]
fn findings_carry_file_line_and_rationale() {
    let f = lint("let t = Instant::now();");
    assert_eq!(f[0].file, Path::new("fixture.rs"));
    assert_eq!(f[0].line, 1);
    assert!(f[0].message.contains("Ctx::now_hw"), "{f:?}");
}

/// `src/bin/` entry points are host-side (argv, report printing), not
/// actor code: file discovery must skip them.
#[test]
fn bin_subtrees_are_out_of_scope() {
    let root = std::env::temp_dir().join(format!("tw-lint-binscope-{}", std::process::id()));
    let bin = root.join("bin");
    std::fs::create_dir_all(&bin).unwrap();
    std::fs::write(root.join("actor.rs"), "pub fn f() {}\n").unwrap();
    std::fs::write(bin.join("cli.rs"), "fn main() { println!(\"report\"); }\n").unwrap();
    let files = xtask::lint::rust_files(&root).unwrap();
    std::fs::remove_dir_all(&root).unwrap();
    assert_eq!(files, vec![root.join("actor.rs")]);
}

/// The acceptance gate: the real protocol crates lint clean. Every
/// exception they need is a justified `tw-lint: allow` at the site.
#[test]
fn real_workspace_lints_clean() {
    let findings = lint_workspace(&repo_root()).expect("scoped dirs readable");
    assert!(
        findings.is_empty(),
        "determinism lint found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
