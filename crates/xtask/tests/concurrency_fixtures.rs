//! The concurrency lint must (a) catch each rule on a deliberately
//! broken fixture, (b) stay silent on the sanctioned shapes those
//! fixtures imitate, (c) respect justified allows, and (d) pass on the
//! real workspace — the acceptance gate CI runs.

use std::path::{Path, PathBuf};
use xtask::concurrency::{lint_files, lint_workspace};
use xtask::lint::{repo_root, Finding};

fn lint_one(src: &str) -> Vec<Finding> {
    lint_files(vec![(PathBuf::from("fixture.rs"), src.to_string())])
}

fn rules_hit(src: &str) -> Vec<String> {
    let mut r: Vec<String> = lint_one(src).into_iter().map(|f| f.rule).collect();
    r.sort();
    r.dedup();
    r
}

// -------------------------------------------------------------------
// double-lock
// -------------------------------------------------------------------

#[test]
fn double_acquisition_of_one_lock_is_flagged() {
    let src = r#"
        fn bad(m: &Mutex<u32>) {
            let a = m.lock().unwrap();
            let b = m.lock().unwrap();
        }
    "#;
    let f = lint_one(src);
    assert_eq!(rules_hit(src), ["double-lock"], "{f:?}");
    assert_eq!(f[0].line, 4, "{f:?}");
}

#[test]
fn reacquisition_after_drop_is_fine() {
    let src = r#"
        fn ok(m: &Mutex<u32>) {
            let a = m.lock().unwrap();
            drop(a);
            let b = m.lock().unwrap();
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

#[test]
fn reacquisition_after_scope_end_is_fine() {
    let src = r#"
        fn ok(m: &Mutex<u32>) {
            {
                let a = m.lock().unwrap();
            }
            let b = m.lock().unwrap();
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

#[test]
fn double_lock_through_a_call_is_flagged() {
    let src = r#"
        struct S { state: Mutex<u32> }
        impl S {
            fn outer(&self) {
                let g = self.state.lock().unwrap();
                self.helper_step();
            }
            fn helper_step(&self) {
                let g = self.state.lock().unwrap();
            }
        }
    "#;
    let f = lint_one(src);
    assert!(
        f.iter().any(|f| f.rule == "double-lock" && f.line == 6),
        "the call site is the finding: {f:?}"
    );
}

// -------------------------------------------------------------------
// lock-order
// -------------------------------------------------------------------

#[test]
fn seeded_deadlock_cycle_is_caught() {
    let src = r#"
        fn path_one(a: &Mutex<u32>, b: &Mutex<u32>) {
            let ga = lock_a.lock().unwrap();
            let gb = lock_b.lock().unwrap();
        }
        fn path_two(a: &Mutex<u32>, b: &Mutex<u32>) {
            let gb = lock_b.lock().unwrap();
            let ga = lock_a.lock().unwrap();
        }
    "#;
    let f = lint_one(src);
    let cycle: Vec<&Finding> = f.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(cycle.len(), 2, "both edges of the cycle report: {f:?}");
}

#[test]
fn consistent_lock_order_is_fine() {
    let src = r#"
        fn path_one() {
            let ga = lock_a.lock().unwrap();
            let gb = lock_b.lock().unwrap();
        }
        fn path_two() {
            let ga = lock_a.lock().unwrap();
            let gb = lock_b.lock().unwrap();
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

#[test]
fn three_lock_cycle_across_functions_is_caught() {
    let src = r#"
        fn f1() { let a = la.lock().unwrap(); let b = lb.lock().unwrap(); }
        fn f2() { let b = lb.lock().unwrap(); let c = lc.lock().unwrap(); }
        fn f3() { let c = lc.lock().unwrap(); let a = la.lock().unwrap(); }
    "#;
    let f = lint_one(src);
    assert_eq!(
        f.iter().filter(|f| f.rule == "lock-order").count(),
        3,
        "every edge of the a→b→c→a cycle reports: {f:?}"
    );
}

// -------------------------------------------------------------------
// blocking-under-lock
// -------------------------------------------------------------------

#[test]
fn sleep_under_lock_is_flagged() {
    let src = r#"
        fn bad(m: &Mutex<u32>) {
            let g = m.lock().unwrap();
            std::thread::sleep(Duration::from_millis(50));
        }
    "#;
    assert_eq!(rules_hit(src), ["blocking-under-lock"]);
}

#[test]
fn sleep_after_guard_drop_is_fine() {
    let src = r#"
        fn ok(m: &Mutex<u32>) {
            let g = m.lock().unwrap();
            drop(g);
            std::thread::sleep(Duration::from_millis(50));
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

/// The shape of the real finding this lint surfaced in `ChaosNet::drop`:
/// an `if let` scrutinee's guard temporary lives across the body
/// (edition 2021 temporary-scope rules), so the join blocks under the
/// lock even though no guard is named.
#[test]
fn guard_temporary_in_if_let_scrutinee_spans_the_body() {
    let src = r#"
        struct S { worker: Mutex<Option<JoinHandle<()>>> }
        impl S {
            fn stop(&self) {
                if let Some(h) = self.worker.lock().unwrap().take() {
                    let _ = h.join();
                }
            }
        }
    "#;
    let f = lint_one(src);
    assert_eq!(rules_hit(src), ["blocking-under-lock"], "{f:?}");
    assert!(f[0].message.contains("S::worker"), "{f:?}");
}

/// …and the fix shape: hoisting the take into its own statement ends
/// the temporary at the semicolon.
#[test]
fn hoisted_take_then_join_is_fine() {
    let src = r#"
        struct S { worker: Mutex<Option<JoinHandle<()>>> }
        impl S {
            fn stop(&self) {
                let handle = self.worker.lock().unwrap().take();
                if let Some(h) = handle {
                    let _ = h.join();
                }
            }
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

#[test]
fn unbounded_recv_and_file_io_under_lock_are_flagged() {
    let recv = r#"
        fn bad(m: &Mutex<u32>, rx: &Receiver<u32>) {
            let g = m.lock().unwrap();
            let v = rx.recv().unwrap();
        }
    "#;
    assert_eq!(rules_hit(recv), ["blocking-under-lock"]);
    let io = r#"
        fn bad(m: &Mutex<State>) {
            let g = m.lock().unwrap();
            g.writer.write_all(&buf).unwrap();
        }
    "#;
    assert_eq!(rules_hit(io), ["blocking-under-lock"]);
}

#[test]
fn bounded_recv_timeout_under_lock_is_still_flagged() {
    let src = r#"
        fn bad(m: &Mutex<u32>, rx: &Receiver<u32>) {
            let g = m.lock().unwrap();
            let v = rx.recv_timeout(Duration::from_millis(20));
        }
    "#;
    assert_eq!(rules_hit(src), ["blocking-under-lock"]);
}

/// The condvar idiom hands its own guard to the wait — that guard is
/// released for the duration, so it must not count as held.
#[test]
fn condvar_wait_on_its_own_guard_is_fine() {
    let src = r#"
        struct Gate { paused: Mutex<bool>, cv: Condvar }
        impl Gate {
            fn block_while_paused(&self) {
                let mut paused = self.paused.lock().unwrap();
                while *paused {
                    paused = self.cv.wait_timeout(paused, TICK).unwrap().0;
                }
            }
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

/// …but waiting on a condvar while holding a *different* lock is real.
#[test]
fn condvar_wait_under_another_lock_is_flagged() {
    let src = r#"
        struct S { a: Mutex<u32>, b: Mutex<u32>, cv: Condvar }
        impl S {
            fn bad(&self) {
                let ga = self.a.lock().unwrap();
                let gb = self.b.lock().unwrap();
                let gb = self.cv.wait(gb).unwrap();
            }
        }
    "#;
    let f = lint_one(src);
    assert!(
        f.iter()
            .any(|f| f.rule == "blocking-under-lock" && f.message.contains("S::a")),
        "{f:?}"
    );
}

#[test]
fn blocking_through_a_resolved_call_is_flagged_at_the_call_site() {
    let src = r#"
        struct S { state: Mutex<u32> }
        impl S {
            fn outer(&self) {
                let g = self.state.lock().unwrap();
                slow_helper();
            }
        }
        fn slow_helper() {
            std::thread::sleep(Duration::from_secs(1));
        }
    "#;
    let f = lint_one(src);
    assert!(
        f.iter()
            .any(|f| f.rule == "blocking-under-lock" && f.line == 6),
        "finding lands on the call under the guard: {f:?}"
    );
}

/// A guard-returning helper (`fn lock(&self) -> MutexGuard<…>`) is the
/// repo's pervasive poisoning-tolerant idiom; acquisition through it
/// must resolve to the underlying field.
#[test]
fn guard_returning_helper_resolves_to_the_underlying_lock() {
    let src = r#"
        struct Pump { state: Mutex<u32>, cv: Condvar }
        impl Pump {
            fn lock(&self) -> MutexGuard<'_, u32> {
                self.state.lock().unwrap_or_else(|e| e.into_inner())
            }
            fn bad(&self) {
                let st = self.lock();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    "#;
    let f = lint_one(src);
    assert!(
        f.iter()
            .any(|f| f.rule == "blocking-under-lock" && f.message.contains("Pump::state")),
        "{f:?}"
    );
}

// -------------------------------------------------------------------
// blocking-in-event-loop
// -------------------------------------------------------------------

#[test]
fn unbounded_blocking_reachable_from_event_loop_is_flagged() {
    let files = vec![
        (
            PathBuf::from("event_loop.rs"),
            r#"
                pub fn run(parts: NodeParts) {
                    loop { dispatch_step(); }
                }
            "#
            .to_string(),
        ),
        (
            PathBuf::from("helpers.rs"),
            r#"
                pub fn dispatch_step() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            "#
            .to_string(),
        ),
    ];
    let f = lint_files(files);
    assert!(
        f.iter().any(|f| {
            f.rule == "blocking-in-event-loop"
                && f.file == Path::new("helpers.rs")
                && f.message.contains("run")
        }),
        "{f:?}"
    );
}

#[test]
fn bounded_waits_in_the_event_loop_are_fine() {
    // The tick *should* park on a deadline-bounded select; only
    // unbounded ops are findings on the reachability path.
    let files = vec![(
        PathBuf::from("event_loop.rs"),
        r#"
            pub fn run(rx: &Receiver<Msg>) {
                loop {
                    let m = rx.recv_timeout(Duration::from_micros(500));
                }
            }
        "#
        .to_string(),
    )];
    assert_eq!(lint_files(files), Vec::new());
}

#[test]
fn same_blocking_op_outside_event_loop_files_is_fine() {
    let files = vec![(
        PathBuf::from("worker.rs"),
        r#"
            pub fn tick_thread() {
                std::thread::sleep(Duration::from_millis(1));
            }
        "#
        .to_string(),
    )];
    assert_eq!(lint_files(files), Vec::new());
}

// -------------------------------------------------------------------
// unsafe-surface audit
// -------------------------------------------------------------------

#[test]
fn ungated_unsafe_is_flagged() {
    let src = r#"
        // SAFETY: documented but not gated.
        fn f() { unsafe { syscall() } }
    "#;
    assert_eq!(rules_hit(src), ["unsafe-gate"]);
}

#[test]
fn undocumented_unsafe_block_is_flagged() {
    let src = r#"
        #[allow(unsafe_code)]
        mod imp {
            fn f() {
                let rc = unsafe { libc_call() };
            }
        }
    "#;
    assert_eq!(rules_hit(src), ["unsafe-doc"]);
}

#[test]
fn gated_and_documented_unsafe_is_fine() {
    let src = r#"
        #[allow(unsafe_code)]
        mod imp {
            fn f() {
                // SAFETY: fd is owned by `sock` and outlives the call;
                // the buffers are live for the duration.
                let rc = unsafe { libc_call() };
            }
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

#[test]
fn unsafe_in_test_modules_is_out_of_scope() {
    let src = r#"
        mod tests {
            fn probe() { unsafe { poke() } }
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

// -------------------------------------------------------------------
// test-module and allow-annotation behaviour
// -------------------------------------------------------------------

#[test]
fn test_modules_may_sleep_under_lock() {
    let src = r#"
        mod tests {
            fn harness(m: &Mutex<u32>) {
                let g = m.lock().unwrap();
                std::thread::sleep(Duration::from_millis(50));
                let h = worker.join();
            }
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

#[test]
fn justified_allow_silences_the_site() {
    let src = r#"
        fn contract(m: &Mutex<State>) {
            let g = m.lock().unwrap();
            // tw-lint: allow(blocking-under-lock) -- spill contract: buffer and writer move together
            g.writer.write_all(&buf).unwrap();
        }
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

#[test]
fn unjustified_allow_is_a_finding_and_does_not_suppress() {
    let src = r#"
        fn bad(m: &Mutex<u32>) {
            let g = m.lock().unwrap();
            // tw-lint: allow(blocking-under-lock)
            std::thread::sleep(Duration::from_millis(50));
        }
    "#;
    let rules = rules_hit(src);
    assert!(rules.contains(&"blocking-under-lock".to_string()), "{rules:?}");
    assert!(rules.contains(&"lint-annotation".to_string()), "{rules:?}");
}

/// Cross-pass annotation validation: a determinism-rule allow in a
/// concurrency-scoped file (tw-obs is in both scopes) must not read as
/// an unknown rule.
#[test]
fn determinism_rule_allows_are_known_to_the_concurrency_pass() {
    let src = r#"
        // tw-lint: allow-file(actor-io) -- recorder writes trace files by design
        fn f() {}
    "#;
    assert_eq!(lint_one(src), Vec::new());
}

// -------------------------------------------------------------------
// acceptance gate
// -------------------------------------------------------------------

/// The real workspace passes with only justified allows — any new lock
/// ordering or blocking-under-guard regression in tw-runtime/tw-obs
/// fails CI from now on.
#[test]
fn real_workspace_concurrency_clean() {
    let findings = lint_workspace(&repo_root()).expect("scoped dirs readable");
    assert!(
        findings.is_empty(),
        "concurrency lint found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
