//! The determinism lint: vocabulary rules over the protocol crates.
//!
//! The simulator's whole value proposition is bit-for-bit reproducible
//! runs: every experiment, every soak seed, every explored schedule is
//! trusted because actors are *pure* state machines whose only inputs
//! are messages, timers and the seeded RNG threaded through
//! [`Ctx`](../../sim/src/engine.rs). That purity is a convention, and
//! conventions rot. This pass turns the convention into a build gate.
//!
//! Rules (scoped to `tw-proto`, `timewheel`, `tw-clock`, `tw-sim`):
//!
//! | rule           | forbids                                            |
//! |----------------|----------------------------------------------------|
//! | `wall-clock`   | `Instant`, `SystemTime` — real time leaks          |
//! | `ambient-rng`  | `thread_rng`, `from_entropy`, `OsRng`, `rand::random` |
//! | `hash-container` | `HashMap`, `HashSet`, `RandomState` — iteration order varies run-to-run |
//! | `float-state`  | `f32`, `f64` — non-portable rounding in protocol state |
//! | `actor-io`     | `println!`/`eprintln!`/`dbg!`, `std::{net,fs,io,env,process}` |
//!
//! ## Escape hatch
//!
//! A finding can be silenced with a justified annotation on the same
//! line or the line above:
//!
//! ```text
//! // tw-lint: allow(float-state) -- link model probabilities, env not protocol state
//! pub drop_prob: f64,
//! ```
//!
//! or for a whole file (conversion-heavy modules):
//!
//! ```text
//! // tw-lint: allow-file(float-state) -- hw-clock drift model, simulation env only
//! ```
//!
//! The `-- justification` is mandatory; a bare `allow` is itself
//! reported. Unknown rule names are reported too, so annotations can't
//! silently rot when rules are renamed.

use crate::lexer::{tokenize, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// A lint rule: a name, the token vocabulary it forbids, and why.
pub struct Rule {
    /// Rule name, as used in `tw-lint: allow(<name>)`.
    pub name: &'static str,
    /// Forbidden vocabulary.
    pub needles: &'static [Needle],
    /// One-line rationale, shown with findings.
    pub why: &'static str,
}

/// One forbidden token pattern.
pub enum Needle {
    /// A bare identifier, matched as a whole token.
    Ident(&'static str),
    /// A `::`-separated path prefix, e.g. `std::env`.
    Path(&'static [&'static str]),
    /// A macro invocation: identifier immediately followed by `!`.
    MacroCall(&'static str),
}

impl fmt::Display for Needle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Needle::Ident(s) => write!(f, "{s}"),
            Needle::Path(p) => write!(f, "{}", p.join("::")),
            Needle::MacroCall(m) => write!(f, "{m}!"),
        }
    }
}

/// The rule set. Order is presentation order in reports.
pub const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        needles: &[Needle::Ident("Instant"), Needle::Ident("SystemTime")],
        why: "actors read time only via Ctx::now_hw(); wall clocks make runs unreproducible",
    },
    Rule {
        name: "ambient-rng",
        needles: &[
            Needle::Ident("thread_rng"),
            Needle::Ident("from_entropy"),
            Needle::Ident("OsRng"),
            Needle::Path(&["rand", "random"]),
        ],
        why: "randomness must flow from the world's seeded StdRng (Ctx::rng), never from OS entropy",
    },
    Rule {
        name: "hash-container",
        needles: &[
            Needle::Ident("HashMap"),
            Needle::Ident("HashSet"),
            Needle::Ident("RandomState"),
        ],
        why: "hash iteration order varies across runs/builds; use BTreeMap/BTreeSet in protocol and engine state",
    },
    Rule {
        name: "float-state",
        needles: &[Needle::Ident("f32"), Needle::Ident("f64")],
        why: "floating point in protocol state risks platform-dependent rounding; keep protocol time/counters integral",
    },
    Rule {
        name: "actor-io",
        needles: &[
            Needle::MacroCall("println"),
            Needle::MacroCall("eprintln"),
            Needle::MacroCall("print"),
            Needle::MacroCall("eprint"),
            Needle::MacroCall("dbg"),
            Needle::Path(&["std", "net"]),
            Needle::Path(&["std", "fs"]),
            Needle::Path(&["std", "io"]),
            Needle::Path(&["std", "env"]),
            Needle::Path(&["std", "process"]),
        ],
        why: "actors talk to the world only through Ctx effects; direct I/O and ambient env reads escape the simulation",
    },
];

/// Crate source roots the lint applies to, relative to the repo root.
/// `tw-runtime`, `tw-rsm` and the bench/examples trees intentionally sit
/// outside: they bridge to real time and real sockets by design.
pub const SCOPED_DIRS: &[&str] = &[
    "crates/proto/src",
    "crates/core/src",
    "crates/clock/src",
    "crates/sim/src",
    "crates/obs/src",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Rule name (`"lint-annotation"` for malformed allows).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Every rule name an annotation may legally reference: the
/// determinism rules here plus the concurrency rules. Both passes
/// validate annotations against this union so an allow for one pass
/// doesn't read as a typo to the other.
pub fn all_rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = RULES.iter().map(|r| r.name).collect();
    names.extend(crate::concurrency::CONCURRENCY_RULES.iter().map(|(n, _)| *n));
    names
}

/// Parsed allow annotations for one file.
#[derive(Default)]
pub(crate) struct Allows {
    /// (line, rule) pairs: silence `rule` on `line` and `line + 1`.
    line_allows: Vec<(usize, String)>,
    /// Rules silenced for the whole file.
    file_allows: Vec<String>,
    /// Malformed annotations, reported as findings.
    errors: Vec<(usize, String)>,
}

pub(crate) fn parse_allows(src: &str, known_rules: &[&'static str]) -> Allows {
    let mut a = Allows::default();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let Some(pos) = raw.find("tw-lint:") else {
            continue;
        };
        let rest = raw[pos + "tw-lint:".len()..].trim();
        let (kind, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            ("file", r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            ("line", r)
        } else {
            a.errors.push((
                line_no,
                format!("unrecognized tw-lint annotation: `{}`", rest),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            a.errors
                .push((line_no, "unclosed tw-lint allow(...)".to_string()));
            continue;
        };
        let rules: Vec<&str> = rest[..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let tail = rest[close + 1..].trim();
        let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if justification.is_empty() {
            a.errors.push((
                line_no,
                "tw-lint allow without a `-- justification`".to_string(),
            ));
            continue;
        }
        for r in rules {
            if !known_rules.contains(&r) {
                a.errors
                    .push((line_no, format!("tw-lint allow of unknown rule `{r}`")));
                continue;
            }
            match kind {
                "file" => a.file_allows.push(r.to_string()),
                _ => a.line_allows.push((line_no, r.to_string())),
            }
        }
    }
    a
}

impl Allows {
    /// Malformed-annotation findings collected during parsing.
    pub(crate) fn errors(&self) -> &[(usize, String)] {
        &self.errors
    }

    pub(crate) fn covers(&self, rule: &str, line: usize) -> bool {
        self.file_allows.iter().any(|r| r == rule)
            || self
                .line_allows
                .iter()
                .any(|(l, r)| r == rule && (line == *l || line == *l + 1))
    }
}

/// Lint one source text. `file` is only used to label findings.
pub fn lint_source(file: &Path, src: &str) -> Vec<Finding> {
    let allows = parse_allows(src, &all_rule_names());
    let tokens = tokenize(src);
    let mut out = Vec::new();
    for (line, msg) in &allows.errors {
        out.push(Finding {
            file: file.to_path_buf(),
            line: *line,
            rule: "lint-annotation".into(),
            message: msg.clone(),
        });
    }
    for rule in RULES {
        for needle in rule.needles {
            for line in match_needle(&tokens, needle) {
                if allows.covers(rule.name, line) {
                    continue;
                }
                out.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: rule.name.into(),
                    message: format!("forbidden `{}` — {}", needle, rule.why),
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

fn match_needle(tokens: &[Token], needle: &Needle) -> Vec<usize> {
    let mut lines = Vec::new();
    match needle {
        Needle::Ident(name) => {
            for (i, t) in tokens.iter().enumerate() {
                if t.is_ident && t.text == *name && !is_path_member_access(tokens, i) {
                    lines.push(t.line);
                }
            }
        }
        Needle::MacroCall(name) => {
            for (i, t) in tokens.iter().enumerate() {
                if t.is_ident
                    && t.text == *name
                    && tokens.get(i + 1).is_some_and(|n| n.text == "!")
                {
                    lines.push(t.line);
                }
            }
        }
        Needle::Path(parts) => {
            'outer: for (i, t) in tokens.iter().enumerate() {
                if !(t.is_ident && t.text == parts[0]) {
                    continue;
                }
                // A path needle must start a path: `foo::std::env` is a
                // different `std`.
                if i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].is_ident {
                    continue;
                }
                let mut j = i;
                for part in &parts[1..] {
                    if tokens.get(j + 1).map(|x| x.text.as_str()) != Some("::")
                        || tokens.get(j + 2).map(|x| x.text.as_str()) != Some(*part)
                    {
                        continue 'outer;
                    }
                    j += 2;
                }
                lines.push(t.line);
            }
        }
    }
    lines
}

/// `foo.f64` / `x.Instant` style field accesses can't occur for our
/// needles, but `self.f64`-like false positives are cheap to rule out:
/// skip idents immediately preceded by `.`.
fn is_path_member_access(tokens: &[Token], i: usize) -> bool {
    i > 0 && tokens[i - 1].text == "."
}

/// Recursively collect `.rs` files under `dir`, sorted for stable
/// report order. `bin/` subtrees are skipped: binaries under a scoped
/// crate are host-side entry points (CLIs reading argv, printing
/// reports), not actor code — the discipline applies to what the
/// simulator runs.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let p = entry?.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "bin") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every scoped crate under `repo_root`; returns all findings.
pub fn lint_workspace(repo_root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for dir in SCOPED_DIRS {
        let full = repo_root.join(dir);
        if !full.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("lint scope dir missing: {}", full.display()),
            ));
        }
        for file in rust_files(&full)? {
            let src = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(repo_root).unwrap_or(&file);
            out.extend(lint_source(rel, &src));
        }
    }
    Ok(out)
}

/// The repo root, located from this crate's manifest dir (works both
/// under `cargo run -p xtask` and in `cargo test -p xtask`). The
/// `TW_XTASK_ROOT` override exists for harnesses that build `xtask`
/// outside the repo layout (see `tools/shadow/check.sh`).
pub fn repo_root() -> PathBuf {
    if let Ok(root) = std::env::var("TW_XTASK_ROOT") {
        return PathBuf::from(root);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has two ancestors")
        .to_path_buf()
}
