//! `cargo xtask bench-gate` — the CI perf-regression gate.
//!
//! Compares a freshly generated bench JSON (from `exp_proto_codec` /
//! `exp_hotpath`, `--out`) against the committed baseline at the repo
//! root and fails when any metric regressed by more than the threshold
//! (default 25%). Metrics declare their direction (`"better": "lower"`
//! or `"higher"`); regression is always measured as relative worsening
//! in that direction, so a faster-than-baseline run never fails.
//!
//! Timing metrics are machine-dependent, so each metric also carries
//! `"portable"`: when the baseline and candidate `machine` tags differ,
//! only portable metrics (wire sizes, structural ratios) are compared
//! and the rest are reported as skipped. Baseline refresh procedure is
//! in DESIGN.md §12.
//!
//! Zero dependencies by design — the gate must build in seconds on a
//! cold CI runner and inside the offline shadow harness, so it carries
//! its own ~100-line JSON reader instead of serde_json.

use std::fmt;

/// Default failure threshold: >25% relative worsening.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// One measured metric from a bench JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, unique within the file.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// `"lower"` or `"higher"` — which direction is better.
    pub better: String,
    /// Machine-independent metrics compare across machine tags.
    pub portable: bool,
}

/// A parsed bench result file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Which probe produced it (`proto_codec`, `hotpath`).
    pub bench: String,
    /// `os-arch` tag of the machine that ran the probe.
    pub machine: String,
    /// The measurements.
    pub metrics: Vec<Metric>,
}

/// Outcome for one baseline metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within threshold (relative worsening, may be negative = improved).
    Ok(f64),
    /// Worsened past the threshold.
    Regressed(f64),
    /// Non-portable metric skipped because machine tags differ.
    SkippedMachine,
    /// Present in the baseline but missing from the candidate.
    Missing,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Ok(d) => write!(f, "ok ({:+.1}%)", d * 100.0),
            Verdict::Regressed(d) => write!(f, "REGRESSED ({:+.1}%)", d * 100.0),
            Verdict::SkippedMachine => write!(f, "skipped (machine mismatch)"),
            Verdict::Missing => write!(f, "MISSING from candidate"),
        }
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough for the bench schema.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("utf8"))?;
        // tw-lint: allow(float-state) -- bench JSON values are measurements, not protocol state
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let len = match c {
                        _ if c < 0x80 => 1,
                        _ if c >= 0xF0 => 4,
                        _ if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[self.pos..end])
                            .map_err(|_| self.err("utf8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a bench result file.
pub fn parse(text: &str) -> Result<BenchFile, String> {
    let mut r = Reader::new(text);
    let root = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing data after JSON value"));
    }
    let bench = root
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing `bench`")?
        .to_string();
    let machine = root
        .get("machine")
        .and_then(Json::as_str)
        .ok_or("missing `machine`")?
        .to_string();
    let raw = match root.get("metrics") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing `metrics` array".into()),
    };
    let mut metrics = Vec::with_capacity(raw.len());
    for m in raw {
        let name = m
            .get("name")
            .and_then(Json::as_str)
            .ok_or("metric missing `name`")?
            .to_string();
        let value = m
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("metric `{name}` missing numeric `value`"))?;
        let better = m
            .get("better")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("metric `{name}` missing `better`"))?
            .to_string();
        if better != "lower" && better != "higher" {
            return Err(format!("metric `{name}`: `better` must be lower|higher"));
        }
        let portable = m
            .get("portable")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("metric `{name}` missing `portable`"))?;
        metrics.push(Metric {
            name,
            value,
            better,
            portable,
        });
    }
    if metrics.is_empty() {
        return Err("metrics array is empty".into());
    }
    Ok(BenchFile {
        bench,
        machine,
        metrics,
    })
}

/// Relative worsening of `cand` against `base` in the metric's better
/// direction: positive = regressed, negative = improved.
fn worsening(better: &str, base: f64, cand: f64) -> f64 {
    // tw-lint: allow(float-state) -- gate arithmetic over measurements
    if base <= 0.0 || cand <= 0.0 {
        // Degenerate measurements: treat any sign flip as a wash.
        return 0.0;
    }
    if better == "lower" {
        cand / base - 1.0
    } else {
        base / cand - 1.0
    }
}

/// Compare candidate against baseline; one verdict per baseline metric.
pub fn compare(baseline: &BenchFile, candidate: &BenchFile, threshold: f64) -> Vec<(String, Verdict)> {
    let cross_machine = baseline.machine != candidate.machine;
    baseline
        .metrics
        .iter()
        .map(|b| {
            if cross_machine && !b.portable {
                return (b.name.clone(), Verdict::SkippedMachine);
            }
            match candidate.metrics.iter().find(|c| c.name == b.name) {
                None => (b.name.clone(), Verdict::Missing),
                Some(c) => {
                    let d = worsening(&b.better, b.value, c.value);
                    if d > threshold {
                        (b.name.clone(), Verdict::Regressed(d))
                    } else {
                        (b.name.clone(), Verdict::Ok(d))
                    }
                }
            }
        })
        .collect()
}

/// Run the gate: print a verdict table, return `true` when it passes.
pub fn run(baseline_path: &str, candidate_path: &str, threshold: f64) -> Result<bool, String> {
    let base_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read baseline {baseline_path}: {e}"))?;
    let cand_text = std::fs::read_to_string(candidate_path)
        .map_err(|e| format!("read candidate {candidate_path}: {e}"))?;
    let base = parse(&base_text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let cand = parse(&cand_text).map_err(|e| format!("{candidate_path}: {e}"))?;
    if base.bench != cand.bench {
        return Err(format!(
            "bench mismatch: baseline is `{}`, candidate is `{}`",
            base.bench, cand.bench
        ));
    }
    println!(
        "bench-gate: {} — baseline {} ({}), candidate {} ({}), threshold {:.0}%",
        base.bench,
        baseline_path,
        base.machine,
        candidate_path,
        cand.machine,
        threshold * 100.0
    );
    let verdicts = compare(&base, &cand, threshold);
    let mut pass = true;
    for (name, v) in &verdicts {
        println!("  {name:<30} {v}");
        if matches!(v, Verdict::Regressed(_) | Verdict::Missing) {
            pass = false;
        }
    }
    if verdicts
        .iter()
        .all(|(_, v)| matches!(v, Verdict::SkippedMachine))
    {
        println!(
            "  note: every metric skipped (machine mismatch, no portable metrics) — \
             gate passes vacuously; refresh the baseline on this machine class"
        );
    }
    Ok(pass)
}

/// Self-test: prove the gate trips on a doctored-slow candidate and
/// passes an identical one. CI runs this before trusting the real
/// comparison, so a gate that silently stopped failing breaks the build.
pub fn self_test() -> Result<(), String> {
    let baseline = r#"{
  "bench": "selftest",
  "schema": 1,
  "machine": "test-rig",
  "seed": 1,
  "iters": 100,
  "metrics": [
    {"name": "encode_ns", "value": 100.0, "better": "lower", "portable": false},
    {"name": "delivered_per_s", "value": 50000.0, "better": "higher", "portable": false},
    {"name": "bytes_per_msg", "value": 64.0, "better": "lower", "portable": true}
  ]
}"#;
    let base = parse(baseline)?;

    // Identical candidate: must pass.
    let same = compare(&base, &base, DEFAULT_THRESHOLD);
    if !same.iter().all(|(_, v)| matches!(v, Verdict::Ok(_))) {
        return Err(format!("identical candidate did not pass: {same:?}"));
    }

    // Doctored-slow candidate: encode 2x slower, throughput halved.
    let doctored = baseline
        .replace("\"value\": 100.0", "\"value\": 200.0")
        .replace("\"value\": 50000.0", "\"value\": 25000.0");
    let slow = parse(&doctored)?;
    let verdicts = compare(&base, &slow, DEFAULT_THRESHOLD);
    let regressed = verdicts
        .iter()
        .filter(|(_, v)| matches!(v, Verdict::Regressed(_)))
        .count();
    if regressed != 2 {
        return Err(format!(
            "doctored-slow candidate should trip exactly 2 metrics, got {regressed}: {verdicts:?}"
        ));
    }

    // Improvement must never trip the gate.
    let fast = parse(&baseline.replace("\"value\": 100.0", "\"value\": 10.0"))?;
    if !compare(&base, &fast, DEFAULT_THRESHOLD)
        .iter()
        .all(|(_, v)| matches!(v, Verdict::Ok(_)))
    {
        return Err("an improvement tripped the gate".into());
    }

    // Cross-machine: non-portable metrics skip, portable ones still gate.
    let other_machine = parse(
        &doctored
            .replace("test-rig", "other-rig")
            .replace("\"value\": 64.0", "\"value\": 128.0"),
    )?;
    let cross = compare(&base, &other_machine, DEFAULT_THRESHOLD);
    let skipped = cross
        .iter()
        .filter(|(_, v)| matches!(v, Verdict::SkippedMachine))
        .count();
    let cross_regressed = cross
        .iter()
        .filter(|(_, v)| matches!(v, Verdict::Regressed(_)))
        .count();
    if skipped != 2 || cross_regressed != 1 {
        return Err(format!(
            "cross-machine: expected 2 skipped + 1 regressed (portable), got {cross:?}"
        ));
    }

    println!("bench-gate --self-test: gate trips on doctored-slow fixture, passes clean runs");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_probe_shaped_json() {
        let f = parse(
            r#"{"bench": "proto_codec", "schema": 1, "machine": "linux-x86_64",
                "seed": 42, "iters": 2000,
                "metrics": [
                  {"name": "a", "value": 1.5, "better": "lower", "portable": true},
                  {"name": "b", "value": -2e3, "better": "higher", "portable": false}
                ]}"#,
        )
        .unwrap();
        assert_eq!(f.bench, "proto_codec");
        assert_eq!(f.machine, "linux-x86_64");
        assert_eq!(f.metrics.len(), 2);
        assert_eq!(f.metrics[0].name, "a");
        assert_eq!(f.metrics[1].value, -2000.0);
        assert!(!f.metrics[1].portable);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"bench": "x"}"#).is_err());
        assert!(parse(r#"{"bench": "x", "machine": "m", "metrics": []}"#).is_err());
        assert!(parse(
            r#"{"bench": "x", "machine": "m",
                "metrics": [{"name": "a", "value": 1, "better": "sideways", "portable": true}]}"#
        )
        .is_err());
        // Trailing garbage after the object.
        assert!(parse(r#"{"bench":"x","machine":"m","metrics":[{"name":"a","value":1,"better":"lower","portable":true}]} x"#).is_err());
    }

    #[test]
    fn worsening_is_direction_aware() {
        // tw-lint: allow(float-state) -- test arithmetic over measurements
        assert!((worsening("lower", 100.0, 130.0) - 0.30).abs() < 1e-9);
        assert!((worsening("higher", 100.0, 80.0) - 0.25).abs() < 1e-9);
        assert!(worsening("lower", 100.0, 90.0) < 0.0);
        assert!(worsening("higher", 100.0, 120.0) < 0.0);
    }

    #[test]
    fn gate_self_test_passes() {
        self_test().unwrap();
    }
}
