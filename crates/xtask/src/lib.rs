//! Repo automation for the timewheel workspace.
//!
//! Two jobs, both about the same property — the simulator's determinism
//! guarantee is only as strong as the discipline of the code inside it:
//!
//! * [`lint`] — a static vocabulary pass that *forbids* the
//!   nondeterminism vectors (wall clocks, ambient randomness,
//!   hash-iteration order, floats in protocol state, direct I/O) in the
//!   protocol crates;
//! * [`concurrency`] — the host-side counterpart: lock-order and
//!   blocking-call analysis plus an unsafe-surface audit over
//!   `tw-runtime`/`tw-obs`, the crates the determinism lint
//!   deliberately exempts; and
//! * `explore` (a thin driver in `main.rs`) — the *dynamic* complement:
//!   exhaustively runs every small-scope schedule through the real
//!   protocol and checks the paper's invariants at each terminal state
//!   (see `tw_sim::explore` and the `explore` bin in `timewheel`).
//!
//! Plus one job about speed: [`bench_gate`], the CI perf-regression
//! gate comparing fresh probe output against the committed
//! `BENCH_*.json` baselines.
//!
//! Invoked via the `cargo xtask` alias (see `.cargo/config.toml`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_gate;
pub mod concurrency;
pub mod lexer;
pub mod lint;
