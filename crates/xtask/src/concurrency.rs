//! The concurrency lint: lock-order, blocking-call and unsafe-surface
//! analysis over the *host-side* crates (`tw-runtime`, `tw-obs`).
//!
//! The determinism lint ([`crate::lint`]) keeps the protocol crates
//! pure; these crates are the opposite — they exist to bridge pure
//! actors onto real threads, sockets and disks, so they are full of
//! mutexes, channels and one `unsafe` syscall module. The failure modes
//! that matter here are different: a lock held across a blocking call
//! in an executor's dispatch path is exactly the "slow local
//! processing" failure Lifeguard identifies as fatal to membership
//! protocols, and an inconsistent lock acquisition order is a deadlock
//! waiting for the right interleaving. Both are cheap to catch
//! statically and miserable to catch in a chaos run.
//!
//! ## What it checks
//!
//! | rule | rejects |
//! |------|---------|
//! | `double-lock` | re-acquiring a mutex already held on the same path (self-deadlock) |
//! | `lock-order` | a cycle in the lock-acquisition graph (deadlock between threads) |
//! | `blocking-under-lock` | sleeping, joining, unbounded channel/condvar waits or file I/O while a guard is held — directly or through a call |
//! | `blocking-in-event-loop` | an unbounded blocking operation reachable from the event-loop executor's dispatch path |
//! | `unsafe-gate` | `unsafe` outside a module carrying `#[allow(unsafe_code)]` |
//! | `unsafe-doc` | an `unsafe` block/fn/impl without a `// SAFETY:` comment |
//!
//! ## How it works (and its honest limits)
//!
//! The pass is built on the same hand-rolled lexer as the determinism
//! lint — no `syn`, no type information — plus a scope-tracking walker:
//!
//! * **Guards.** A guard is born at a `.lock()` call (or a call to a
//!   guard-returning helper method like `Pump::lock`, detected by a
//!   `MutexGuard` in the signature). A `let`-bound guard lives to the
//!   end of its scope or an explicit `drop(g)`; a temporary lives to
//!   the end of its statement — except as the scrutinee of
//!   `if let`/`while let`/`match`/`for`, where Rust (edition 2021)
//!   extends it across the body. That extension is precisely how a
//!   "one-liner" `if let Some(h) = handle.lock().take()` silently holds
//!   the mutex across everything inside the `if`.
//! * **Locks are named**, not typed: `self.state.lock()` inside
//!   `impl Pump` is the lock `Pump::state`; `member.lock()` is the lock
//!   `member`. Two names can refer to one mutex (a helper vs. a direct
//!   field access through another object), which can only *miss*
//!   findings, never invent them.
//! * **Calls resolve by name**, conservatively: a call is followed into
//!   a function defined in the scoped crates when the receiver is
//!   `self`/`Self` (resolved within the `impl`), the call is a bare
//!   path, or the name has exactly one in-scope definition and is not a
//!   common std method name (`flush`, `send`, `push`, …, which would
//!   alias `BufWriter::flush` and friends). Unresolved calls are
//!   assumed non-blocking and lock-free — again, misses over false
//!   positives.
//! * **Condvar waits** release the guard they are handed
//!   (`cv.wait_timeout(guard, d)`), so that guard is exempt at the wait
//!   site; any *other* guard still held is a finding. Bounded waits
//!   (`wait_timeout`, `recv_timeout`) are findings only under a lock;
//!   unbounded ones (`wait`, `recv()`, `join()`, sleeps, file I/O) are
//!   also findings anywhere the event-loop tick can reach.
//! * **`mod tests` bodies are skipped**: test harness code sleeps and
//!   joins by design, on threads that hold nothing the executors care
//!   about.
//!
//! The escape hatch is the same justified annotation the determinism
//! lint uses (`// tw-lint: allow(rule) -- why`); an unjustified or
//! unknown-rule annotation is itself a finding.

use crate::lexer::{tokenize, Token};
use crate::lint::{parse_allows, Finding};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Crate source roots the concurrency lint applies to, relative to the
/// repo root. `bin/` subtrees are skipped, same as the determinism
/// lint: binaries are drivers, not long-lived concurrent services.
pub const SCOPED_DIRS: &[&str] = &["crates/runtime/src", "crates/obs/src"];

/// Rule names and one-line rationales, in presentation order.
pub const CONCURRENCY_RULES: &[(&str, &str)] = &[
    (
        "double-lock",
        "re-acquiring a held mutex self-deadlocks (std) or deadlocks later (parking_lot)",
    ),
    (
        "lock-order",
        "inconsistent acquisition order deadlocks under the right interleaving",
    ),
    (
        "blocking-under-lock",
        "a blocking call under a guard stalls every thread that wants the lock",
    ),
    (
        "blocking-in-event-loop",
        "the dispatch loop must never block: slow local processing reads as failure to peers",
    ),
    (
        "unsafe-gate",
        "unsafe code is confined to modules that opt in with #[allow(unsafe_code)]",
    ),
    (
        "unsafe-doc",
        "every unsafe block carries a SAFETY: comment stating its proof obligation",
    ),
];

/// Method names too overloaded in std to resolve by bare name: calling
/// `w.flush()` must not be conflated with `FlightRecorder::flush`.
const STD_COLLIDING: &[&str] = &[
    "new", "fmt", "len", "is_empty", "clone", "default", "drop", "from", "into", "next", "get",
    "insert", "remove", "push", "pop", "clear", "take", "iter", "send", "recv", "flush", "read",
    "write", "count", "run", "join", "wait", "lock", "record", "shutdown", "clear",
];

/// Blocking-operation classes. Bounded ops (timeouts) are findings only
/// while a guard is held; unbounded ops also must not be reachable from
/// the event-loop tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum OpClass {
    Bounded,
    Unbounded,
}

/// A guard alive somewhere on the walked path.
#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    var: Option<String>,
    line: usize,
}

/// One lock acquisition observed in a function body.
#[derive(Debug, Clone)]
struct Acquire {
    lock: String,
    line: usize,
    held: Vec<Guard>,
}

/// One blocking operation observed in a function body.
#[derive(Debug, Clone)]
struct BlockOp {
    op: String,
    line: usize,
    class: OpClass,
    /// Guards held at the site, after condvar-argument exemption.
    held: Vec<Guard>,
}

/// One call site that resolved to in-scope definitions.
#[derive(Debug, Clone)]
struct CallSite {
    callee: String,
    /// Indices into the function table.
    targets: Vec<usize>,
    line: usize,
    held: Vec<Guard>,
}

/// Everything the walker learned about one function.
#[derive(Debug, Default)]
struct FnFacts {
    file: usize,
    acquires: Vec<Acquire>,
    blocks: Vec<BlockOp>,
    calls: Vec<CallSite>,
}

/// A parsed source file.
struct FileCtx {
    path: PathBuf,
    src: String,
    tokens: Vec<Token>,
    /// Token index ranges belonging to `mod tests { … }` bodies.
    test_spans: Vec<(usize, usize)>,
    /// `(body_open_brace_span, type_name)` for each `impl` block.
    impl_spans: Vec<(usize, usize, String)>,
}

/// Lint every scoped crate under `repo_root`.
pub fn lint_workspace(repo_root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for dir in SCOPED_DIRS {
        let full = repo_root.join(dir);
        if !full.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("concurrency lint scope dir missing: {}", full.display()),
            ));
        }
        for file in crate::lint::rust_files(&full)? {
            let src = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(repo_root).unwrap_or(&file).to_path_buf();
            files.push((rel, src));
        }
    }
    Ok(lint_files(files))
}

/// Lint a set of sources as one analysis unit (the call graph and the
/// lock graph span all of them). `files` are `(path, source)` pairs;
/// a path ending in `event_loop.rs` marks its functions as event-loop
/// roots for the reachability rule.
pub fn lint_files(files: Vec<(PathBuf, String)>) -> Vec<Finding> {
    let ctxs: Vec<FileCtx> = files
        .into_iter()
        .map(|(path, src)| {
            let tokens = tokenize(&src);
            let test_spans = find_test_spans(&tokens);
            let impl_spans = find_impl_spans(&tokens);
            FileCtx {
                path,
                src,
                tokens,
                test_spans,
                impl_spans,
            }
        })
        .collect();

    let mut findings = Vec::new();

    // Annotation hygiene (shared with the determinism lint).
    for ctx in &ctxs {
        let allows = parse_allows(&ctx.src, &crate::lint::all_rule_names());
        for (line, msg) in allows.errors() {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: *line,
                rule: "lint-annotation".into(),
                message: msg.clone(),
            });
        }
    }

    // Function table.
    let fns = collect_fns(&ctxs);
    let name_index = build_name_index(&fns);
    let helper_locks = detect_guard_helpers(&ctxs, &fns);

    // Walk every body.
    let facts: Vec<FnFacts> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| walk_fn(&ctxs, &fns, &name_index, &helper_locks, i, f))
        .collect();

    // Intra-procedural findings + the lock graph.
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new(); // (file, line) of first sighting
    for fact in &facts {
        for a in &fact.acquires {
            for h in &a.held {
                if h.lock == a.lock {
                    findings.push(finding(
                        &ctxs[fact.file],
                        a.line,
                        "double-lock",
                        format!(
                            "`{}` acquired again while already held (held since line {})",
                            a.lock, h.line
                        ),
                    ));
                } else {
                    edges
                        .entry((h.lock.clone(), a.lock.clone()))
                        .or_insert((fact.file, a.line));
                }
            }
        }
        for b in &fact.blocks {
            if !b.held.is_empty() {
                let locks: Vec<&str> = b.held.iter().map(|g| g.lock.as_str()).collect();
                findings.push(finding(
                    &ctxs[fact.file],
                    b.line,
                    "blocking-under-lock",
                    format!("blocking `{}` while holding `{}`", b.op, locks.join("`, `")),
                ));
            }
        }
    }

    // Inter-procedural: transitive blocking ops and lock acquisitions.
    let trans = transitive_facts(&facts);
    for fact in &facts {
        for c in &fact.calls {
            if c.held.is_empty() {
                continue;
            }
            let mut seen_locks: BTreeSet<String> = BTreeSet::new();
            // One finding per call site: the first transitive blocking
            // op stands in for all of them (they share the fix).
            let blocking: Vec<&(String, usize, usize, OpClass)> = c
                .targets
                .iter()
                .flat_map(|&t| trans[t].blocks.iter())
                .collect();
            if let Some((op, file, line, _)) = blocking.first() {
                let locks: Vec<&str> = c.held.iter().map(|g| g.lock.as_str()).collect();
                let more = if blocking.len() > 1 {
                    format!(" and {} more op(s)", blocking.len() - 1)
                } else {
                    String::new()
                };
                findings.push(finding(
                    &ctxs[fact.file],
                    c.line,
                    "blocking-under-lock",
                    format!(
                        "call to `{}` may block (`{}` at {}:{}{more}) while holding `{}`",
                        c.callee,
                        op,
                        ctxs[*file].path.display(),
                        line,
                        locks.join("`, `")
                    ),
                ));
            }
            for &t in &c.targets {
                for (lock, _file, _line) in &trans[t].locks {
                    if !seen_locks.insert(lock.clone()) {
                        continue;
                    }
                    for h in &c.held {
                        if h.lock == *lock {
                            findings.push(finding(
                                &ctxs[fact.file],
                                c.line,
                                "double-lock",
                                format!(
                                    "call to `{}` re-acquires `{}`, already held here",
                                    c.callee, lock
                                ),
                            ));
                        } else {
                            edges
                                .entry((h.lock.clone(), lock.clone()))
                                .or_insert((fact.file, c.line));
                        }
                    }
                }
            }
        }
    }

    // Lock-order cycles over the acquisition graph.
    findings.extend(report_cycles(&ctxs, &edges));

    // Event-loop reachability: unbounded blocking ops in any function
    // reachable from a function defined in event_loop.rs.
    findings.extend(event_loop_reachability(&ctxs, &fns, &facts));

    // Unsafe-surface audit.
    for ctx in &ctxs {
        findings.extend(audit_unsafe(ctx));
    }

    // Apply the allow annotations per file, then sort and dedupe.
    let kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            if f.rule == "lint-annotation" {
                return true;
            }
            let Some(ctx) = ctxs.iter().find(|c| c.path == f.file) else {
                return true;
            };
            let allows = parse_allows(&ctx.src, &crate::lint::all_rule_names());
            !allows.covers(&f.rule, f.line)
        })
        .collect();
    let mut out = kept;
    out.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    out.dedup();
    out
}

fn finding(ctx: &FileCtx, line: usize, rule: &str, message: String) -> Finding {
    Finding {
        file: ctx.path.clone(),
        line,
        rule: rule.into(),
        message,
    }
}

// ---------------------------------------------------------------------
// Token-stream structure: braces, test modules, impl blocks, functions.
// ---------------------------------------------------------------------

/// Index of the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index just past a balanced `(…)`/`[…]`/`{…}` group opening at `i`.
fn skip_group(tokens: &[Token], i: usize) -> usize {
    let (open, close) = match tokens[i].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return i + 1,
    };
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].text == open {
            depth += 1;
        } else if tokens[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// `mod tests { … }` token ranges (inclusive of the braces).
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident
            && tokens[i].text == "mod"
            && tokens[i + 1].is_ident
            && tokens[i + 1].text == "tests"
            && tokens[i + 2].text == "{"
        {
            let close = match_brace(tokens, i + 2);
            out.push((i, close));
            i = close + 1;
        } else {
            i += 1;
        }
    }
    out
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|(a, b)| i >= *a && i <= *b)
}

/// `impl` blocks: `(body_open, body_close, type_name)`. For
/// `impl Trait for Type`, the type is `Type`.
fn find_impl_spans(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_ident && tokens[i].text == "impl") {
            i += 1;
            continue;
        }
        // Skip `impl Trait` in type position (`fn f(x: impl AsRef<..>)`,
        // `-> impl Iterator`): an impl *item* can only follow the end of
        // another item or an attribute.
        if i > 0
            && !matches!(tokens[i - 1].text.as_str(), "}" | ";" | "]")
            && tokens[i - 1].text != "unsafe"
        {
            i += 1;
            continue;
        }
        // Scan the header up to the body `{`, tracking the last path
        // segment seen and whether we crossed a `for`.
        let mut j = i + 1;
        let mut last_seg: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0i32;
        while j < tokens.len() && !(angle <= 0 && tokens[j].text == "{") {
            match tokens[j].text.as_str() {
                "<" => angle += 1,
                // `->` and `=>` lex as two tokens; their `>` is not a
                // generic-bracket close.
                ">" if !matches!(tokens[j - 1].text.as_str(), "-" | "=") => {
                    angle = (angle - 1).max(0)
                }
                _ => {
                    if angle == 0 && tokens[j].is_ident {
                        if tokens[j].text == "for" {
                            saw_for = true;
                        } else if tokens[j].text != "where"
                            && tokens[j].text != "dyn"
                            && tokens[j].text != "mut"
                        {
                            if saw_for && after_for.is_none() {
                                after_for = Some(tokens[j].text.clone());
                            }
                            // Keep extending the current path: the type
                            // name is the segment right before `{`/`for`.
                            if !saw_for {
                                last_seg = Some(tokens[j].text.clone());
                            } else {
                                after_for = Some(tokens[j].text.clone());
                            }
                        }
                    }
                }
            }
            j += 1;
        }
        if j >= tokens.len() {
            break;
        }
        let ty = after_for.or(last_seg).unwrap_or_else(|| "?".into());
        let close = match_brace(tokens, j);
        out.push((j, close, ty));
        i = j + 1;
    }
    out
}

/// A function definition found in a file.
#[derive(Debug, Clone)]
struct FnDef {
    name: String,
    impl_ty: Option<String>,
    file: usize,
    /// Signature token range (name .. body `{`).
    sig: (usize, usize),
    /// Body token range (inclusive braces).
    body: (usize, usize),
    is_event_loop_file: bool,
}

fn collect_fns(ctxs: &[FileCtx]) -> Vec<FnDef> {
    let mut out = Vec::new();
    for (fi, ctx) in ctxs.iter().enumerate() {
        let toks = &ctx.tokens;
        let is_el = ctx
            .path
            .file_name()
            .is_some_and(|n| n == "event_loop.rs");
        let mut i = 0;
        while i + 1 < toks.len() {
            if !(toks[i].is_ident && toks[i].text == "fn") || in_spans(&ctx.test_spans, i) {
                i += 1;
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if !name_tok.is_ident {
                i += 1;
                continue;
            }
            // Find the body `{` (or a `;` for a bodyless trait/extern
            // declaration), skipping generics and argument parens.
            let mut j = i + 2;
            let mut body_open = None;
            let mut angle = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => {
                        angle += 1;
                        j += 1;
                    }
                    ">" => {
                        if !matches!(toks[j - 1].text.as_str(), "-" | "=") {
                            angle = (angle - 1).max(0);
                        }
                        j += 1;
                    }
                    "(" | "[" => j = skip_group(toks, j),
                    "{" if angle <= 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if angle <= 0 => break,
                    _ => j += 1,
                }
            }
            let Some(open) = body_open else {
                i = j + 1;
                continue;
            };
            let close = match_brace(toks, open);
            let impl_ty = ctx
                .impl_spans
                .iter()
                .find(|(a, b, _)| i > *a && i < *b)
                .map(|(_, _, ty)| ty.clone());
            out.push(FnDef {
                name: name_tok.text.clone(),
                impl_ty,
                file: fi,
                sig: (i + 1, open),
                body: (open, close),
                is_event_loop_file: is_el,
            });
            i = open + 1; // nested fns found by continuing the scan
        }
    }
    out
}

fn build_name_index(fns: &[FnDef]) -> BTreeMap<String, Vec<usize>> {
    let mut idx: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        idx.entry(f.name.clone()).or_default().push(i);
    }
    idx
}

/// Map `(impl_type, method)` → lock id for guard-returning helpers
/// (signature mentions a guard type; the lock is the first acquisition
/// in the body).
fn detect_guard_helpers(ctxs: &[FileCtx], fns: &[FnDef]) -> BTreeMap<(String, String), String> {
    let mut map = BTreeMap::new();
    for f in fns {
        let toks = &ctxs[f.file].tokens;
        let sig_has_guard = toks[f.sig.0..f.sig.1].iter().any(|t| {
            t.is_ident
                && matches!(
                    t.text.as_str(),
                    "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"
                )
        });
        if !sig_has_guard {
            continue;
        }
        let Some(ty) = &f.impl_ty else { continue };
        // First `.lock()` receiver inside the body names the lock.
        let mut j = f.body.0;
        while j < f.body.1 {
            if toks[j].is_ident
                && toks[j].text == "lock"
                && j > 0
                && toks[j - 1].text == "."
                && toks.get(j + 1).is_some_and(|t| t.text == "(")
                && toks.get(j + 2).is_some_and(|t| t.text == ")")
            {
                let lock = lock_id_for_receiver(toks, j, Some(ty), &BTreeMap::new());
                map.insert((ty.clone(), f.name.clone()), lock);
                break;
            }
            j += 1;
        }
    }
    map
}

/// Resolve the lock id for the receiver of a `.lock()`-style call whose
/// method-name token sits at `m` (`tokens[m-1]` is `.`).
///
/// `self.a.b.lock()` → `Ty::b`; `x.lock()` → `x`; `self.lock()` →
/// the impl's guard helper if one exists, else `Ty::<self>`.
fn lock_id_for_receiver(
    tokens: &[Token],
    m: usize,
    impl_ty: Option<&str>,
    helpers: &BTreeMap<(String, String), String>,
) -> String {
    // Walk the dotted chain backwards: `.` ident `.` ident … start.
    let mut fields: Vec<String> = Vec::new();
    let mut j = m - 1; // the `.` before the method name
    let mut is_self_rooted = false;
    loop {
        if j == 0 {
            break;
        }
        let prev = &tokens[j - 1];
        if prev.is_ident {
            if prev.text == "self" {
                is_self_rooted = true;
                break;
            }
            fields.push(prev.text.clone());
            if j >= 2 && tokens[j - 2].text == "." {
                j -= 2;
                continue;
            }
            break;
        }
        // Unknown receiver shape (indexing, call result, tuple field —
        // numeric tuple indices are dropped by the lexer).
        break;
    }
    fields.reverse();
    let ty = impl_ty.unwrap_or("?");
    match (is_self_rooted, fields.last()) {
        (true, Some(last)) => format!("{ty}::{last}"),
        (true, None) => {
            // `self.lock()` (or a tuple-field `self.0.lock()`): prefer
            // the impl's guard-returning helper resolution.
            if let Some(lock) = helpers.get(&(ty.to_string(), "lock".to_string())) {
                lock.clone()
            } else {
                format!("{ty}::<self>")
            }
        }
        (false, Some(last)) => {
            if fields.len() == 1 {
                last.clone()
            } else {
                fields.join(".")
            }
        }
        (false, None) => format!("{ty}::<expr>"),
    }
}

// ---------------------------------------------------------------------
// The body walker.
// ---------------------------------------------------------------------

/// Statement head classification, decided from its first tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Head {
    Plain,
    /// `if let` / `while let` / `match` / `for`: scrutinee temporaries
    /// extend across the body (Rust 2021 temporary-scope rules).
    ScrutineeExtends,
    /// `if` / `while` without `let`: condition temporaries drop before
    /// the body runs.
    CondDrops,
}

struct Scope {
    guards: Vec<Guard>,
}

struct StmtState {
    head: Head,
    /// `let x = …;` / `x = …;` binding target.
    bind_var: Option<String>,
    /// Token index just past the `=`, if any.
    rhs_start: Option<usize>,
    temps: Vec<Guard>,
}

impl StmtState {
    fn fresh() -> Self {
        StmtState {
            head: Head::Plain,
            bind_var: None,
            rhs_start: None,
            temps: Vec::new(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_fn(
    ctxs: &[FileCtx],
    fns: &[FnDef],
    name_index: &BTreeMap<String, Vec<usize>>,
    helpers: &BTreeMap<(String, String), String>,
    self_idx: usize,
    f: &FnDef,
) -> FnFacts {
    let ctx = &ctxs[f.file];
    let toks = &ctx.tokens;
    let mut facts = FnFacts {
        file: f.file,
        ..FnFacts::default()
    };

    // Nested fn bodies inside ours get skipped wholesale.
    let nested: Vec<(usize, usize)> = fns
        .iter()
        .enumerate()
        .filter(|(i, g)| {
            *i != self_idx && g.file == f.file && g.body.0 > f.body.0 && g.body.1 < f.body.1
        })
        .map(|(_, g)| (g.sig.0 - 1, g.body.1))
        .collect();

    let mut scopes: Vec<Scope> = vec![Scope { guards: Vec::new() }];
    let mut stmt = StmtState::fresh();
    let mut i = f.body.0 + 1;

    // Classify the statement starting at token `i`.
    let classify = |i: usize| -> (Head, Option<String>, Option<usize>) {
        let t = |k: usize| toks.get(i + k).map(|t| t.text.as_str());
        match t(0) {
            Some("if") | Some("while") => {
                if t(1) == Some("let") {
                    (Head::ScrutineeExtends, None, None)
                } else {
                    (Head::CondDrops, None, None)
                }
            }
            Some("match") | Some("for") => (Head::ScrutineeExtends, None, None),
            Some("let") => {
                let mut k = 1;
                if t(k) == Some("mut") {
                    k += 1;
                }
                let var = toks.get(i + k).filter(|x| x.is_ident).map(|x| x.text.clone());
                // Find the `=` introducing the initializer.
                let mut j = i + k;
                let mut eq = None;
                while let Some(tok) = toks.get(j) {
                    match tok.text.as_str() {
                        "=" => {
                            eq = Some(j + 1);
                            break;
                        }
                        ";" | "{" | "}" => break,
                        _ => j += 1,
                    }
                }
                (Head::Plain, var, eq)
            }
            Some(first) => {
                // `x = …;` assignment rebinding an existing guard var.
                if toks[i].is_ident
                    && toks.get(i + 1).is_some_and(|x| x.text == "=")
                    && toks.get(i + 2).is_none_or(|x| x.text != "=")
                    && first != "return"
                {
                    (Head::Plain, Some(first.to_string()), Some(i + 2))
                } else {
                    (Head::Plain, None, None)
                }
            }
            None => (Head::Plain, None, None),
        }
    };

    let (h, v, r) = classify(i);
    stmt.head = h;
    stmt.bind_var = v;
    stmt.rhs_start = r;

    while i < f.body.1 {
        if let Some(&(_, end)) = nested.iter().find(|(s, _)| *s == i || *s + 1 == i) {
            i = end + 1;
            continue;
        }
        let text = toks[i].text.as_str();
        match text {
            "{" => {
                let mut sc = Scope { guards: Vec::new() };
                match stmt.head {
                    Head::ScrutineeExtends => sc.guards.append(&mut stmt.temps),
                    Head::CondDrops | Head::Plain => stmt.temps.clear(),
                }
                scopes.push(sc);
                stmt = StmtState::fresh();
                i += 1;
                let (h, v, r) = classify(i);
                stmt.head = h;
                stmt.bind_var = v;
                stmt.rhs_start = r;
                continue;
            }
            "}" => {
                stmt.temps.clear();
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Scope { guards: Vec::new() });
                }
                stmt = StmtState::fresh();
                i += 1;
                let (h, v, r) = classify(i);
                stmt.head = h;
                stmt.bind_var = v;
                stmt.rhs_start = r;
                continue;
            }
            ";" | "," => {
                stmt.temps.clear();
                stmt = StmtState::fresh();
                i += 1;
                let (h, v, r) = classify(i);
                stmt.head = h;
                stmt.bind_var = v;
                stmt.rhs_start = r;
                continue;
            }
            _ => {}
        }

        let tok = &toks[i];
        if !tok.is_ident {
            i += 1;
            continue;
        }

        // Explicit `drop(g)`.
        if tok.text == "drop"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 2).is_some_and(|t| t.is_ident)
            && toks.get(i + 3).is_some_and(|t| t.text == ")")
        {
            let var = &toks[i + 2].text;
            for sc in &mut scopes {
                sc.guards.retain(|g| g.var.as_deref() != Some(var));
            }
            stmt.temps.retain(|g| g.var.as_deref() != Some(var));
            i += 4;
            continue;
        }

        let is_method = i > 0 && toks[i - 1].text == ".";
        let next_is_paren = toks.get(i + 1).is_some_and(|t| t.text == "(");
        let zero_arg = next_is_paren && toks.get(i + 2).is_some_and(|t| t.text == ")");

        // Guard acquisition: `.lock()` or a guard-returning helper.
        let acq_lock: Option<String> = if is_method && zero_arg {
            if tok.text == "lock" {
                Some(lock_id_for_receiver(
                    toks,
                    i,
                    f.impl_ty.as_deref(),
                    helpers,
                ))
            } else if toks.get(i.wrapping_sub(2)).is_some_and(|t| t.text == "self") {
                f.impl_ty
                    .as_deref()
                    .and_then(|ty| helpers.get(&(ty.to_string(), tok.text.clone())))
                    .cloned()
            } else {
                None
            }
        } else {
            None
        };
        if let Some(lock) = acq_lock {
            let held = held_now(&scopes, &stmt);
            facts.acquires.push(Acquire {
                lock: lock.clone(),
                line: tok.line,
                held,
            });
            // Consume `()` plus any `unwrap`-family adapters; decide
            // the guard's home from what follows.
            let chain_start = receiver_start(toks, i);
            let mut j = i + 3; // past `name ( )`
            loop {
                if toks.get(j).is_some_and(|t| t.text == ".")
                    && toks.get(j + 1).is_some_and(|t| {
                        t.is_ident
                            && matches!(t.text.as_str(), "unwrap" | "unwrap_or_else" | "expect")
                    })
                    && toks.get(j + 2).is_some_and(|t| t.text == "(")
                {
                    j = skip_group(toks, j + 2);
                } else {
                    break;
                }
            }
            let ends_stmt = toks.get(j).is_some_and(|t| t.text == ";");
            let chain_is_rhs = stmt.rhs_start == Some(chain_start);
            let guard = Guard {
                lock,
                var: if ends_stmt && chain_is_rhs {
                    stmt.bind_var.clone()
                } else {
                    None
                },
                line: tok.line,
            };
            if ends_stmt && chain_is_rhs && stmt.bind_var.is_some() {
                // Re-binding a name releases the old guard first.
                let var = stmt.bind_var.clone();
                for sc in &mut scopes {
                    sc.guards.retain(|g| g.var != var);
                }
                scopes.last_mut().expect("scope").guards.push(guard);
            } else {
                stmt.temps.push(guard);
            }
            i = j;
            continue;
        }

        // Blocking operations.
        if let Some((op, class, condvar)) = blocking_op(toks, i, is_method, zero_arg) {
            let mut held = held_now(&scopes, &stmt);
            if condvar && next_is_paren {
                // The guard handed to the condvar is released for the
                // duration of the wait.
                let end = skip_group(toks, i + 1);
                let args: BTreeSet<&str> = toks[i + 1..end]
                    .iter()
                    .filter(|t| t.is_ident)
                    .map(|t| t.text.as_str())
                    .collect();
                held.retain(|g| g.var.as_deref().is_none_or(|v| !args.contains(v)));
            }
            facts.blocks.push(BlockOp {
                op,
                line: tok.line,
                class,
                held,
            });
            i += 1;
            continue;
        }

        // Calls into in-scope functions.
        if next_is_paren && !is_keyword(&tok.text) {
            if let Some(targets) = resolve_call(toks, i, is_method, f, fns, name_index) {
                facts.calls.push(CallSite {
                    callee: tok.text.clone(),
                    targets,
                    line: tok.line,
                    held: held_now(&scopes, &stmt),
                });
            }
        }
        i += 1;
    }
    facts
}

/// First token index of the dotted receiver chain whose final `.method`
/// name sits at `m`.
fn receiver_start(tokens: &[Token], m: usize) -> usize {
    let mut j = m;
    while j >= 2 && tokens[j - 1].text == "." && tokens[j - 2].is_ident {
        j -= 2;
    }
    // A tuple-index receiver (`self.0.lock()`) leaves a bare `.`: the
    // numeric token was dropped by the lexer.
    while j >= 2 && tokens[j - 1].text == "." {
        j -= 1;
        if j >= 1 && tokens[j - 1].is_ident {
            j -= 1;
        } else {
            break;
        }
    }
    j
}

fn held_now(scopes: &[Scope], stmt: &StmtState) -> Vec<Guard> {
    let mut held: Vec<Guard> = scopes.iter().flat_map(|s| s.guards.iter().cloned()).collect();
    held.extend(stmt.temps.iter().cloned());
    held
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "let"
            | "fn"
            | "return"
            | "move"
            | "mut"
            | "ref"
            | "in"
            | "as"
            | "break"
            | "continue"
            | "unsafe"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
    )
}

/// Classify a blocking operation at token `i`. Returns
/// `(display_name, class, is_condvar_wait)`.
fn blocking_op(
    toks: &[Token],
    i: usize,
    is_method: bool,
    zero_arg: bool,
) -> Option<(String, OpClass, bool)> {
    let t = &toks[i];
    let next_is_paren = toks.get(i + 1).is_some_and(|x| x.text == "(");
    if !next_is_paren {
        // Path forms: `File::open`, `File::create`, `OpenOptions::new`.
        if t.is_ident
            && (t.text == "File" || t.text == "OpenOptions")
            && toks.get(i + 1).is_some_and(|x| x.text == "::")
        {
            let m = toks.get(i + 2).map(|x| x.text.as_str()).unwrap_or("");
            if matches!(m, "open" | "create" | "new") {
                return Some((format!("{}::{}", t.text, m), OpClass::Unbounded, false));
            }
        }
        return None;
    }
    match t.text.as_str() {
        "sleep" => Some(("thread::sleep".into(), OpClass::Unbounded, false)),
        "recv" if is_method && zero_arg => Some(("recv()".into(), OpClass::Unbounded, false)),
        "join" if is_method && zero_arg => Some(("join()".into(), OpClass::Unbounded, false)),
        "flush" if is_method && zero_arg => Some(("flush()".into(), OpClass::Unbounded, false)),
        "wait" if is_method => Some(("Condvar::wait".into(), OpClass::Unbounded, true)),
        "wait_timeout" | "wait_for" | "wait_while" | "wait_timeout_while" if is_method => {
            Some((format!("Condvar::{}", t.text), OpClass::Bounded, true))
        }
        "recv_timeout" | "send_timeout" if is_method => {
            Some((format!("{}()", t.text), OpClass::Bounded, false))
        }
        "write_all" | "read_exact" | "read_to_end" | "read_to_string" | "sync_all"
        | "sync_data"
            if is_method =>
        {
            Some((format!("{}()", t.text), OpClass::Unbounded, false))
        }
        _ => None,
    }
}

/// Resolve a call by name, conservatively (see module docs). Returns
/// the candidate definition indices, or `None` when unresolvable.
fn resolve_call(
    toks: &[Token],
    i: usize,
    is_method: bool,
    caller: &FnDef,
    fns: &[FnDef],
    name_index: &BTreeMap<String, Vec<usize>>,
) -> Option<Vec<usize>> {
    let name = &toks[i].text;
    let candidates = name_index.get(name)?;
    // Definition sites themselves are not calls.
    if i > 0 && toks[i - 1].is_ident && toks[i - 1].text == "fn" {
        return None;
    }
    let self_form = if is_method {
        toks.get(i.wrapping_sub(2)).is_some_and(|t| t.text == "self")
            && toks.get(i.wrapping_sub(3)).is_none_or(|t| t.text != ".")
    } else {
        i >= 2
            && toks[i - 1].text == "::"
            && toks[i - 2].is_ident
            && toks[i - 2].text == "Self"
    };
    if self_form {
        if let Some(ty) = &caller.impl_ty {
            let own: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| fns[c].impl_ty.as_deref() == Some(ty))
                .collect();
            if !own.is_empty() {
                return Some(own);
            }
        }
        if candidates.len() == 1 {
            return Some(candidates.clone());
        }
        return None;
    }
    if !is_method {
        // Bare call: `apply_actions(…)` — but not a path through a
        // foreign module (`std::mem::take(…)`).
        if i >= 2 && toks[i - 1].text == "::" {
            return None;
        }
        if candidates.len() == 1 {
            return Some(candidates.clone());
        }
        return None;
    }
    // Method on an arbitrary receiver: only a unique, non-std-colliding
    // name resolves.
    if candidates.len() == 1 && !STD_COLLIDING.contains(&name.as_str()) {
        return Some(candidates.clone());
    }
    None
}

// ---------------------------------------------------------------------
// Inter-procedural propagation.
// ---------------------------------------------------------------------

/// Transitive facts per function: blocking ops and lock acquisitions
/// reachable through resolved calls.
#[derive(Debug, Default, Clone)]
struct TransFacts {
    /// (op, file, line, class)
    blocks: Vec<(String, usize, usize, OpClass)>,
    /// (lock, file, line)
    locks: Vec<(String, usize, usize)>,
}

fn transitive_facts(facts: &[FnFacts]) -> Vec<TransFacts> {
    fn visit(
        i: usize,
        facts: &[FnFacts],
        memo: &mut Vec<Option<TransFacts>>,
        on_stack: &mut Vec<bool>,
    ) -> TransFacts {
        if let Some(t) = &memo[i] {
            return t.clone();
        }
        if on_stack[i] {
            return TransFacts::default(); // recursion: fixpoint below the cycle
        }
        on_stack[i] = true;
        let mut t = TransFacts::default();
        for b in &facts[i].blocks {
            t.blocks
                .push((b.op.clone(), facts[i].file, b.line, b.class));
        }
        for a in &facts[i].acquires {
            t.locks.push((a.lock.clone(), facts[i].file, a.line));
        }
        for c in &facts[i].calls {
            for &target in &c.targets {
                let sub = visit(target, facts, memo, on_stack);
                t.blocks.extend(sub.blocks);
                t.locks.extend(sub.locks);
            }
        }
        t.blocks.sort();
        t.blocks.dedup();
        t.locks.sort();
        t.locks.dedup();
        on_stack[i] = false;
        memo[i] = Some(t.clone());
        t
    }
    let mut memo: Vec<Option<TransFacts>> = vec![None; facts.len()];
    let mut on_stack = vec![false; facts.len()];
    (0..facts.len())
        .map(|i| visit(i, facts, &mut memo, &mut on_stack))
        .collect()
}

fn report_cycles(
    ctxs: &[FileCtx],
    edges: &BTreeMap<(String, String), (usize, usize)>,
) -> Vec<Finding> {
    // adjacency
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let reaches = |start: &str, goal: &str| -> bool {
        let mut stack = vec![start];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == goal {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let mut out = Vec::new();
    for ((from, to), (file, line)) in edges {
        if reaches(to, from) {
            out.push(finding(
                &ctxs[*file],
                *line,
                "lock-order",
                format!(
                    "lock-order cycle: `{from}` is held while `{to}` is acquired here, \
                     but another path acquires them in the opposite order"
                ),
            ));
        }
    }
    out
}

fn event_loop_reachability(
    ctxs: &[FileCtx],
    fns: &[FnDef],
    facts: &[FnFacts],
) -> Vec<Finding> {
    let mut reachable: BTreeMap<usize, String> = BTreeMap::new(); // fn idx → via-chain
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_event_loop_file {
            reachable.insert(i, f.name.clone());
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        let chain = reachable[&i].clone();
        for c in &facts[i].calls {
            for &t in &c.targets {
                if !reachable.contains_key(&t) {
                    reachable.insert(t, format!("{chain} → {}", fns[t].name));
                    queue.push(t);
                }
            }
        }
    }
    let mut out = Vec::new();
    for (&i, chain) in &reachable {
        for b in &facts[i].blocks {
            if b.class == OpClass::Unbounded {
                out.push(finding(
                    &ctxs[facts[i].file],
                    b.line,
                    "blocking-in-event-loop",
                    format!(
                        "blocking `{}` reachable from the event-loop tick ({chain})",
                        b.op
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Unsafe-surface audit.
// ---------------------------------------------------------------------

fn audit_unsafe(ctx: &FileCtx) -> Vec<Finding> {
    let toks = &ctx.tokens;
    let lines: Vec<&str> = ctx.src.lines().collect();
    // Spans of modules gated with `#[allow(unsafe_code)]`.
    let mut gated: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "allow"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "unsafe_code"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !attr {
            i += 1;
            continue;
        }
        // The attribute must sit on a module for the gate to count.
        let mut j = i + 7;
        while j < toks.len() && matches!(toks[j].text.as_str(), "pub" | "(" | ")" | "crate") {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_ident && t.text == "mod") {
            let mut k = j + 1;
            while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.text == "{") {
                gated.push((k, match_brace(toks, k)));
            }
        }
        i += 7;
    }

    let mut out = Vec::new();
    for (ti, t) in toks.iter().enumerate() {
        if !(t.is_ident && t.text == "unsafe") || in_spans(&ctx.test_spans, ti) {
            continue;
        }
        if !in_spans(&gated, ti) {
            out.push(finding(
                ctx,
                t.line,
                "unsafe-gate",
                "`unsafe` outside a module gated with `#[allow(unsafe_code)]`".to_string(),
            ));
        }
        // Every unsafe block / fn / impl needs a SAFETY: comment in the
        // contiguous comment block directly above (or on its own line).
        let mut documented = lines
            .get(t.line - 1)
            .is_some_and(|l| l.contains("SAFETY:"));
        let mut ln = t.line - 1; // index of the line above, 1-based → 0-based
        while !documented && ln > 0 {
            let above = lines[ln - 1].trim_start();
            if above.starts_with("//") {
                if above.contains("SAFETY:") {
                    documented = true;
                }
                ln -= 1;
            } else {
                break;
            }
        }
        if !documented {
            out.push(finding(
                ctx,
                t.line,
                "unsafe-doc",
                "`unsafe` without a `// SAFETY:` comment explaining why it is sound".to_string(),
            ));
        }
    }
    out
}
