//! `cargo xtask` — repo automation entry point.

use std::process::ExitCode;
use xtask::{bench_gate, concurrency, lint};

const USAGE: &str = "\
cargo xtask <command>

Commands:
  lint [--all]      run the determinism lint over the protocol crates
                    (tw-proto, timewheel, tw-clock, tw-sim); exit 1 on findings.
                    --all also runs the concurrency lint
  lint-concurrency  run the lock-order / blocking-call / unsafe-surface
                    analysis over tw-runtime and tw-obs; exit 1 on findings
  explore [args..]  build and run the exhaustive schedule explorer
                    (forwards args to `cargo run --release -p timewheel --bin explore`)
  bench-gate --baseline FILE --candidate FILE [--threshold PCT]
                    fail (exit 1) when any metric in the candidate bench
                    JSON regressed more than PCT% (default 25) against the
                    committed baseline; see DESIGN.md §12
  bench-gate --self-test
                    prove the gate trips on a doctored-slow fixture
  help              show this message

Lint escape hatch: `// tw-lint: allow(<rule>) -- <justification>` on the
line of (or above) a finding; `allow-file(<rule>)` for a whole file.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(args.iter().any(|a| a == "--all")),
        Some("lint-concurrency") => run_lint_concurrency(),
        Some("explore") => run_explore(&args[1..]),
        Some("bench-gate") => run_bench_gate(&args[1..]),
        Some("help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(all: bool) -> ExitCode {
    let root = lint::repo_root();
    let mut findings = match lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tw-lint: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut dirs: Vec<&str> = lint::SCOPED_DIRS.to_vec();
    let mut rules = lint::RULES.len();
    if all {
        match concurrency::lint_workspace(&root) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("tw-lint: I/O error: {e}");
                return ExitCode::FAILURE;
            }
        }
        for d in concurrency::SCOPED_DIRS {
            if !dirs.contains(d) {
                dirs.push(d);
            }
        }
        rules += concurrency::CONCURRENCY_RULES.len();
    }
    let scope = dirs.join(", ");
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    findings.dedup();
    report("tw-lint", rules, &scope, &findings)
}

fn run_lint_concurrency() -> ExitCode {
    let root = lint::repo_root();
    match concurrency::lint_workspace(&root) {
        Ok(findings) => report(
            "tw-lint-concurrency",
            concurrency::CONCURRENCY_RULES.len(),
            &concurrency::SCOPED_DIRS.join(", "),
            &findings,
        ),
        Err(e) => {
            eprintln!("tw-lint-concurrency: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report(pass: &str, rules: usize, scope: &str, findings: &[lint::Finding]) -> ExitCode {
    if findings.is_empty() {
        println!("{pass}: clean ({rules} rules over {scope})");
        ExitCode::SUCCESS
    } else {
        for f in findings {
            println!("{f}");
        }
        println!("\n{pass}: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn run_bench_gate(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--self-test") {
        return match bench_gate::self_test() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench-gate self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut baseline = None;
    let mut candidate = None;
    let mut threshold = bench_gate::DEFAULT_THRESHOLD;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().cloned(),
            "--candidate" => candidate = it.next().cloned(),
            "--threshold" => {
                // tw-lint: allow(float-state) -- CLI percentage, not protocol state
                threshold = match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(pct) if pct > 0.0 => pct / 100.0,
                    _ => {
                        eprintln!("bench-gate: --threshold wants a positive percentage");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("bench-gate: unknown arg `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(base), Some(cand)) = (baseline, candidate) else {
        eprintln!("bench-gate: need --baseline FILE and --candidate FILE (or --self-test)\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    match bench_gate::run(&base, &cand, threshold) {
        Ok(true) => {
            println!("bench-gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench-gate: FAIL — candidate regressed past the threshold");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_explore(args: &[String]) -> ExitCode {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(lint::repo_root())
        .args(["run", "--release", "-p", "timewheel", "--bin", "explore", "--"])
        .args(args)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask explore: failed to spawn cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
