//! `cargo xtask` — repo automation entry point.

use std::process::ExitCode;
use xtask::lint;

const USAGE: &str = "\
cargo xtask <command>

Commands:
  lint              run the determinism lint over the protocol crates
                    (tw-proto, timewheel, tw-clock, tw-sim); exit 1 on findings
  explore [args..]  build and run the exhaustive schedule explorer
                    (forwards args to `cargo run --release -p timewheel --bin explore`)
  help              show this message

Lint escape hatch: `// tw-lint: allow(<rule>) -- <justification>` on the
line of (or above) a finding; `allow-file(<rule>)` for a whole file.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("explore") => run_explore(&args[1..]),
        Some("help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    let root = lint::repo_root();
    match lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "tw-lint: clean ({} rules over {})",
                lint::RULES.len(),
                lint::SCOPED_DIRS.join(", ")
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("\ntw-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("tw-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_explore(args: &[String]) -> ExitCode {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(lint::repo_root())
        .args(["run", "--release", "-p", "timewheel", "--bin", "explore", "--"])
        .args(args)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask explore: failed to spawn cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
