//! A minimal Rust lexer: good enough to strip comments, string/char
//! literals and to split the remaining code into identifier/punctuation
//! tokens, line by line.
//!
//! The determinism lint does not need a full AST — every rule it
//! enforces is a *vocabulary* rule ("this name must not appear in
//! protocol code"), so matching identifier tokens (with `::`-path
//! sequences) after literal/comment removal is exact, not heuristic.
//! Hand-rolling this keeps `xtask` dependency-free, which is what lets
//! the lint run in offline and minimal CI environments. If a future
//! rule needs real scoping (e.g. "only inside `impl Actor`"), that is
//! the point to reconsider a `syn`-based pass.

/// One code token, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: usize,
    /// Identifier text, or punctuation (`::`, `!`, `(`, …).
    pub text: String,
    /// True for identifier/keyword tokens, false for punctuation.
    pub is_ident: bool,
}

/// Tokenize Rust source, discarding comments and the *contents* of
/// string/char literals (so `"HashMap"` in a string never matches a
/// lint needle). Numeric literals are consumed as single non-ident
/// tokens, so the `f64` in `1.0f64` stays part of the number and only a
/// freestanding `f64` type token matches the float rule.
pub fn tokenize(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            // Raw strings: r"…", r#"…"#, br#"…"# — find the opening
            // quote, count the #s, skip to the matching close.
            'r' | 'b'
                if is_raw_string_start(&b, i) =>
            {
                let mut j = i;
                while b[j] != 'r' {
                    j += 1; // skip the leading b of br
                }
                j += 1;
                let mut hashes = 0;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                debug_assert_eq!(b.get(j), Some(&'"'));
                j += 1;
                // scan for `"` followed by `hashes` #s
                'scan: while j < b.len() {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    if b[j] == '"' {
                        let mut k = 0;
                        while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'scan;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            '"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            'b' if b.get(i + 1) == Some(&'"') => {
                // byte string: delegate to the string arm next loop
                out.push(Token {
                    line,
                    text: "b".into(),
                    is_ident: false, // not a real ident occurrence
                });
                i += 1;
            }
            '\'' => {
                // Char literal or lifetime. `'\…'` and `'x'` are chars;
                // `'ident` (no closing quote right after) is a lifetime.
                if b.get(i + 1) == Some(&'\\') {
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&'\'')
                    && b.get(i + 1).is_some_and(|c| *c != '\'')
                {
                    i += 3;
                } else {
                    // lifetime: skip the quote, let the ident lex as a
                    // plain token (lifetime names never collide with
                    // lint needles, which are all multi-char type/fn
                    // names).
                    i += 1;
                }
            }
            _ if c == '_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == '_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.push(Token {
                    line,
                    text: b[start..i].iter().collect(),
                    is_ident: true,
                });
            }
            _ if c.is_ascii_digit() => {
                // Number (incl. suffixed like 10u64, 1.0f64, 0x_ff).
                while i < b.len()
                    && (b[i] == '_'
                        || b[i] == '.'
                        || b[i].is_ascii_alphanumeric())
                {
                    // Don't swallow a second `.` (range `0..n`).
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
            }
            ':' if b.get(i + 1) == Some(&':') => {
                out.push(Token {
                    line,
                    text: "::".into(),
                    is_ident: false,
                });
                i += 2;
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                out.push(Token {
                    line,
                    text: c.to_string(),
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in /* a nested */ block */
            let s = "thread_rng inside a string";
            let r = r#"SystemTime raw"#;
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c", "real_ident"]);
    }

    #[test]
    fn number_suffixes_do_not_leak_idents() {
        assert_eq!(idents("let x = 1.0f64 + 0xff_u32;"), vec!["let", "x"]);
        assert!(idents("for i in 0..n {}").contains(&"n".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/* x\ny */\nb";
        let toks = tokenize(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn lifetimes_and_char_escapes() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = '\\n'; }");
        assert!(ids.contains(&"str".to_string()));
        assert!(!ids.contains(&"n".to_string()));
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = tokenize("std::env::var");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["std", "::", "env", "::", "var"]);
    }
}
