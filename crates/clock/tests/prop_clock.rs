//! Property tests for the fail-aware clock: adoption error bounds,
//! fail-awareness truthfulness, and reply correctness under random
//! timing.

use proptest::prelude::*;
use tw_clock::{ClockAction, ClockEvent, ClockSyncConfig, FailAwareClock};
use tw_proto::{ClockSyncMsg, Duration, HwTime, ProcessId, SyncTime};

fn cfg(n: usize, delta_us: i64) -> ClockSyncConfig {
    ClockSyncConfig::for_team(n, Duration::from_micros(delta_us))
}

/// Drive one probe round from `requester` answered by `responder`, in
/// *real* time: each clock's hardware reading is `real + its offset`.
/// The probe leaves at real time `t_real`, takes `fwd` to arrive, `bwd`
/// to come back.
#[allow(clippy::too_many_arguments)]
fn round(
    requester: &mut FailAwareClock,
    req_offset: i64,
    responder: &mut FailAwareClock,
    resp_offset: i64,
    t_real: i64,
    fwd: i64,
    bwd: i64,
) {
    let acts = requester.handle(HwTime(t_real + req_offset), ClockEvent::Tick);
    let req = acts
        .iter()
        .find_map(|a| match a {
            ClockAction::Broadcast(m) => Some(*m),
            _ => None,
        })
        .expect("probe");
    let reply_acts = responder.handle(
        HwTime(t_real + fwd + resp_offset),
        ClockEvent::Msg {
            from: req.sender(),
            msg: req,
        },
    );
    let reply = reply_acts
        .iter()
        .find_map(|a| match a {
            ClockAction::Send(_, m) => Some(*m),
            _ => None,
        })
        .expect("reply");
    requester.handle(
        HwTime(t_real + fwd + bwd + req_offset),
        ClockEvent::Msg {
            from: reply.sender(),
            msg: reply,
        },
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// After a timely adoption from the source, the requester's
    /// synchronized clock deviates from the source's by at most the
    /// round-trip (generously; the analytic bound is rtt/2 + ρ·rtt).
    #[test]
    fn adoption_error_bounded_by_round_trip(
        offset in -1_000_000i64..1_000_000,
        fwd in 1i64..9_000,
        bwd in 1i64..9_000,
    ) {
        let c = cfg(2, 10_000); // δ = 10 ms; rtt < 2δ always here
        let mut p0 = FailAwareClock::new(ProcessId(0), c);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        // p0's hw clock reads real time; p1's reads real + offset.
        p0.on_start(HwTime(0));
        p1.on_start(HwTime(offset));
        // Give p0 majority contact first (p1 answers p0's probe).
        round(&mut p0, 0, &mut p1, offset, 1_000, fwd, bwd);
        // p1 adopts from p0.
        let t_real = 50_000;
        round(&mut p1, offset, &mut p0, 0, t_real, fwd, bwd);
        let real_now = t_real + fwd + bwd + 10;
        let t1 = HwTime(real_now + offset);
        prop_assert!(p1.is_synced(t1), "timely adoption must sync");
        let s1 = p1.read(t1).unwrap();
        // Source time at the same real instant.
        let s0 = p0.read_unchecked(HwTime(real_now));
        let dev = (s1.0 - s0.0).abs();
        prop_assert!(
            dev <= fwd + bwd + 2,
            "deviation {dev} exceeds rtt {} (fwd {fwd} bwd {bwd})",
            fwd + bwd
        );
        // And the advertised error bound is honest.
        prop_assert!(dev <= p1.err_bound().as_micros() + 2);
    }

    /// Late round trips (> 2δ) never produce synchronization.
    #[test]
    fn late_round_trips_rejected(
        extra in 1i64..50_000,
        split in 0.0f64..1.0,
    ) {
        let c = cfg(2, 5_000); // δ = 5 ms → rtt budget 10 ms
        let rtt = 10_000 + extra;
        let fwd = ((rtt as f64) * split) as i64;
        let bwd = rtt - fwd;
        let mut p0 = FailAwareClock::new(ProcessId(0), c);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        p0.on_start(HwTime(0));
        p1.on_start(HwTime(0));
        round(&mut p0, 0, &mut p1, 0, 500, 100, 100); // p0 majority contact
        round(&mut p1, 0, &mut p0, 0, 2_000, fwd.max(1), bwd.max(1));
        prop_assert!(!p1.is_synced(HwTime(2_000 + rtt + 1)),
            "late round trip (rtt {rtt}) must not synchronize");
    }

    /// Every request gets exactly one reply, addressed to the requester,
    /// echoing the request's hardware send time.
    #[test]
    fn requests_always_answered_correctly(
        rid in any::<u64>(),
        hw_send in -1_000_000i64..1_000_000,
        now in 0i64..1_000_000,
        rank in 0u16..5,
    ) {
        let c = cfg(5, 10_000);
        let mut p = FailAwareClock::new(ProcessId(3), c);
        p.on_start(HwTime(0));
        let from = ProcessId(rank);
        prop_assume!(from != ProcessId(3));
        let acts = p.handle(
            HwTime(now),
            ClockEvent::Msg {
                from,
                msg: ClockSyncMsg::Request {
                    sender: from,
                    rid,
                    hw_send: HwTime(hw_send),
                },
            },
        );
        prop_assert_eq!(acts.len(), 1);
        match &acts[0] {
            ClockAction::Send(to, ClockSyncMsg::Reply { rid: r, hw_send_echo, sync_at_reply, .. }) => {
                prop_assert_eq!(*to, from);
                prop_assert_eq!(*r, rid);
                prop_assert_eq!(*hw_send_echo, HwTime(hw_send));
                // Reply carries the responder's unchecked time base.
                prop_assert_eq!(*sync_at_reply, SyncTime(now));
            }
            other => prop_assert!(false, "unexpected action {other:?}"),
        }
    }

    /// Fail-awareness is truthful under silence: with no messages at all,
    /// a non-source process never claims synchronization, at any time.
    #[test]
    fn silence_never_synchronizes(rank in 1u16..8, probes in 0usize..20) {
        let c = cfg(8, 10_000);
        let mut p = FailAwareClock::new(ProcessId(rank), c);
        p.on_start(HwTime(0));
        let mut t = HwTime(0);
        for _ in 0..probes {
            t = t + c.resync_interval;
            p.handle(t, ClockEvent::Tick);
            prop_assert!(!p.is_synced(t), "synced without any peer contact");
        }
    }
}
