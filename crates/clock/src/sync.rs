//! The fail-aware clock synchronization state machine (sans-I/O).
//!
//! [`FailAwareClock`] is a pure state machine: feed it [`ClockEvent`]s
//! with the current hardware time, apply the returned [`ClockAction`]s
//! (send/broadcast/schedule-tick) to whatever transport hosts it. The
//! same machine runs unchanged on the simulator, the event-loop runtime,
//! the thread-based runtime and the UDP runtime.

// tw-lint: allow-file(float-state) -- ρ (drift bound) and the ε error-bound
// derivation follow the paper's real-valued formulas; results are rounded to
// integral micros before they touch any protocol decision.

use std::collections::BTreeMap;
use tw_proto::{ClockSyncMsg, Duration, HwTime, ProcessId, SyncTime};

/// Static parameters of the clock synchronization protocol.
#[derive(Debug, Clone, Copy)]
pub struct ClockSyncConfig {
    /// Team size N.
    pub n: usize,
    /// One-way timeout δ of the datagram service: a round trip is timely
    /// iff it completes within 2δ.
    pub delta: Duration,
    /// Drift-rate bound ρ (e.g. `1e-4`).
    pub rho: f64,
    /// How often each process probes (hardware time between ticks).
    pub resync_interval: Duration,
    /// How long one successful adoption keeps the clock synchronized.
    pub sync_validity: Duration,
    /// How long without hearing a lower-ranked synced process before a
    /// process assumes the source role.
    pub takeover_timeout: Duration,
    /// How long a peer's timely reply counts toward the majority-contact
    /// requirement.
    pub peer_validity: Duration,
}

impl ClockSyncConfig {
    /// A sensible configuration for a team of `n` on a link with one-way
    /// timeout `delta`: probe every 4δ, adoptions valid for 6 probe
    /// rounds, takeover after 3 rounds.
    pub fn for_team(n: usize, delta: Duration) -> Self {
        let resync = delta * 4;
        ClockSyncConfig {
            n,
            delta,
            rho: 1e-4,
            resync_interval: resync,
            sync_validity: resync * 6,
            takeover_timeout: resync * 3,
            peer_validity: resync * 3,
        }
    }

    /// The deviation bound ε this configuration guarantees between two
    /// synchronized clocks while the system is stable: each clock reads
    /// its upstream reference with error ≤ δ/2 + ρ·2δ and then drifts for
    /// at most `sync_validity`; two clocks can be on opposite sides.
    pub fn epsilon(&self) -> Duration {
        let read_err =
            self.delta.as_micros() as f64 / 2.0 + self.rho * 2.0 * self.delta.as_micros() as f64;
        let drift_err = self.rho * self.sync_validity.as_micros() as f64;
        // Two-sided, and adoption can chain through up to n−1 hops.
        let hops = (self.n.max(2) - 1) as f64;
        Duration((2.0 * (read_err * hops + drift_err)).ceil() as i64)
    }

    /// Majority size for this team (⌊n/2⌋ + 1).
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }
}

/// Input to the state machine.
#[derive(Debug, Clone)]
pub enum ClockEvent {
    /// The periodic resync tick fired.
    Tick,
    /// A clock-sync datagram arrived.
    Msg {
        /// The sending process.
        from: ProcessId,
        /// The message.
        msg: ClockSyncMsg,
    },
}

/// Output of the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClockAction {
    /// Broadcast to all other team members.
    Broadcast(ClockSyncMsg),
    /// Send to one process.
    Send(ProcessId, ClockSyncMsg),
    /// (Re-)schedule the next [`ClockEvent::Tick`] after this much
    /// hardware time.
    ScheduleTick(Duration),
}

/// Why the clock currently is (or is not) synchronized — for traces and
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStatus {
    /// Synchronized by adopting a lower-ranked synced process's time.
    Adopted {
        /// The process last adopted from.
        from: ProcessId,
    },
    /// Synchronized as the source of the time base.
    Source,
    /// Not synchronized (and the process knows it).
    Unsynced,
}

/// The fail-aware clock of one process.
#[derive(Debug, Clone)]
pub struct FailAwareClock {
    pid: ProcessId,
    cfg: ClockSyncConfig,
    /// Synchronized time = hardware time + offset.
    offset: Duration,
    /// Adoption/self-renewal deadline: synced only while `hw < valid_until`
    /// (and the majority-contact condition holds).
    valid_until: HwTime,
    /// Who we last adopted from (None while acting as source or unsynced).
    adopted_from: Option<ProcessId>,
    /// Acting as source?
    is_source: bool,
    /// Last time we heard a *synced, lower-ranked* process.
    last_lower_heard: HwTime,
    /// Last timely contact per peer (for the majority requirement).
    peers: BTreeMap<ProcessId, HwTime>,
    /// Request id of the most recent probe.
    rid: u64,
    /// Hardware send time of the most recent probe.
    probe_sent: HwTime,
    /// Most recent reading-error bound (µs), for experiments.
    err_bound: Duration,
    started: bool,
}

impl FailAwareClock {
    /// Create the clock for process `pid`.
    pub fn new(pid: ProcessId, cfg: ClockSyncConfig) -> Self {
        FailAwareClock {
            pid,
            cfg,
            offset: Duration::ZERO,
            valid_until: HwTime(i64::MIN),
            adopted_from: None,
            is_source: false,
            last_lower_heard: HwTime(i64::MIN),
            peers: BTreeMap::new(),
            rid: 0,
            probe_sent: HwTime(i64::MIN),
            err_bound: Duration::MAX,
            started: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClockSyncConfig {
        &self.cfg
    }

    /// Start (or restart after a crash): forgets all sync state.
    pub fn on_start(&mut self, now_hw: HwTime) -> Vec<ClockAction> {
        let cfg = self.cfg;
        *self = FailAwareClock::new(self.pid, cfg);
        self.started = true;
        self.last_lower_heard = now_hw; // grace period before takeover
        if self.pid.rank() == 0 {
            // Rank 0 bootstraps the time base immediately.
            self.become_source(now_hw);
        }
        self.probe(now_hw)
    }

    /// Handle one event; returns the actions to perform.
    pub fn handle(&mut self, now_hw: HwTime, ev: ClockEvent) -> Vec<ClockAction> {
        debug_assert!(self.started, "handle() before on_start()");
        match ev {
            ClockEvent::Tick => self.on_tick(now_hw),
            ClockEvent::Msg { from, msg } => self.on_msg(now_hw, from, msg),
        }
    }

    /// Read the synchronized clock; `None` while not synchronized
    /// (fail-awareness: the caller *knows*).
    pub fn read(&self, now_hw: HwTime) -> Option<SyncTime> {
        if self.is_synced(now_hw) {
            Some(self.read_unchecked(now_hw))
        } else {
            None
        }
    }

    /// Read the synchronized time base without the fail-awareness check
    /// (diagnostics only).
    pub fn read_unchecked(&self, now_hw: HwTime) -> SyncTime {
        SyncTime(now_hw.0 + self.offset.0)
    }

    /// Is this clock currently synchronized?
    pub fn is_synced(&self, now_hw: HwTime) -> bool {
        now_hw < self.valid_until && self.majority_contact(now_hw)
    }

    /// Current status (for traces and experiments).
    pub fn status(&self, now_hw: HwTime) -> SyncStatus {
        if !self.is_synced(now_hw) {
            SyncStatus::Unsynced
        } else if self.is_source {
            SyncStatus::Source
        } else {
            SyncStatus::Adopted {
                from: self.adopted_from.expect("adopted implies source pid"),
            }
        }
    }

    /// Latest remote-reading error bound (µs); `Duration::MAX` before the
    /// first adoption.
    pub fn err_bound(&self) -> Duration {
        self.err_bound
    }

    /// Test/bench support: force this clock into a permanently
    /// synchronized source state (sync time == hardware time). Not part
    /// of the protocol — unit tests use it to skip the bootstrap rounds.
    #[doc(hidden)]
    pub fn force_synced(&mut self) {
        self.started = true;
        self.is_source = true;
        self.adopted_from = None;
        self.offset = Duration::ZERO;
        self.err_bound = Duration::ZERO;
        self.valid_until = HwTime(i64::MAX);
        for r in 0..self.cfg.n {
            if r != self.pid.rank() {
                self.peers.insert(ProcessId(r as u16), HwTime(i64::MAX / 2));
            }
        }
    }

    // ---- internals -----------------------------------------------------

    fn majority_contact(&self, now_hw: HwTime) -> bool {
        if self.cfg.n == 1 {
            return true;
        }
        let fresh = self
            .peers
            .values()
            .filter(|&&t| now_hw - t <= self.cfg.peer_validity)
            .count();
        // +1 counts this process itself.
        fresh + 1 >= self.cfg.majority()
    }

    fn become_source(&mut self, now_hw: HwTime) {
        self.is_source = true;
        self.adopted_from = None;
        self.valid_until = now_hw + self.cfg.sync_validity;
        if self.err_bound == Duration::MAX {
            self.err_bound = Duration::ZERO; // source defines the base
        }
    }

    fn probe(&mut self, now_hw: HwTime) -> Vec<ClockAction> {
        self.rid += 1;
        self.probe_sent = now_hw;
        vec![
            ClockAction::Broadcast(ClockSyncMsg::Request {
                sender: self.pid,
                rid: self.rid,
                hw_send: now_hw,
            }),
            ClockAction::ScheduleTick(self.cfg.resync_interval),
        ]
    }

    fn on_tick(&mut self, now_hw: HwTime) -> Vec<ClockAction> {
        // Source takeover check: lowest-ranked process that has heard no
        // lower-ranked synced process for the takeover timeout assumes
        // the source role.
        if !self.is_source && now_hw - self.last_lower_heard > self.cfg.takeover_timeout {
            self.become_source(now_hw);
        }
        // Source self-renewal.
        if self.is_source {
            self.valid_until = now_hw + self.cfg.sync_validity;
        }
        self.probe(now_hw)
    }

    fn on_msg(&mut self, now_hw: HwTime, from: ProcessId, msg: ClockSyncMsg) -> Vec<ClockAction> {
        match msg {
            ClockSyncMsg::Request {
                sender,
                rid,
                hw_send,
            } => {
                debug_assert_eq!(sender, from);
                vec![ClockAction::Send(
                    sender,
                    ClockSyncMsg::Reply {
                        sender: self.pid,
                        rid,
                        hw_send_echo: hw_send,
                        sync_at_reply: self.read_unchecked(now_hw),
                        synced: self.is_synced(now_hw),
                    },
                )]
            }
            ClockSyncMsg::Reply {
                sender,
                rid,
                hw_send_echo,
                sync_at_reply,
                synced,
            } => {
                debug_assert_eq!(sender, from);
                // Only the latest probe's replies are considered, and only
                // when the echoed send time matches (stale/duplicate
                // rejection, paper §4.2's implicit assumption).
                if rid != self.rid || hw_send_echo != self.probe_sent {
                    return vec![];
                }
                let rtt = now_hw - hw_send_echo;
                let timely = rtt <= self.cfg.delta * 2;
                if !timely {
                    return vec![];
                }
                self.peers.insert(sender, now_hw);
                if synced && sender.rank() < self.pid.rank() {
                    self.last_lower_heard = now_hw;
                    // Adopt: remote sync time now ≈ sync_at_reply + rtt/2.
                    let est = SyncTime(sync_at_reply.0 + rtt.as_micros() / 2);
                    self.offset = Duration(est.0 - now_hw.0);
                    self.valid_until = now_hw + self.cfg.sync_validity;
                    self.adopted_from = Some(sender);
                    self.is_source = false;
                    let err = rtt.as_micros() as f64 / 2.0 + self.cfg.rho * rtt.as_micros() as f64;
                    self.err_bound = Duration(err.ceil() as i64);
                }
                vec![]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> ClockSyncConfig {
        ClockSyncConfig::for_team(n, Duration::from_millis(10))
    }

    /// Drive a request/reply round between two clocks by hand, with the
    /// given one-way delay, at requester hardware time `t_req`.
    fn round(
        requester: &mut FailAwareClock,
        responder: &mut FailAwareClock,
        t_req: HwTime,
        one_way: Duration,
        responder_hw_at_reply: HwTime,
    ) {
        let acts = requester.handle(t_req, ClockEvent::Tick);
        let req = acts
            .iter()
            .find_map(|a| match a {
                ClockAction::Broadcast(m) => Some(*m),
                _ => None,
            })
            .expect("probe broadcast");
        let reply_acts = responder.handle(
            responder_hw_at_reply,
            ClockEvent::Msg {
                from: requester.pid,
                msg: req,
            },
        );
        let reply = reply_acts
            .iter()
            .find_map(|a| match a {
                ClockAction::Send(_, m) => Some(*m),
                _ => None,
            })
            .expect("reply");
        requester.handle(
            t_req + one_way * 2,
            ClockEvent::Msg {
                from: responder.pid,
                msg: reply,
            },
        );
    }

    #[test]
    fn rank0_is_source_immediately() {
        let mut c = FailAwareClock::new(ProcessId(0), cfg(1));
        c.on_start(HwTime(0));
        assert!(c.is_synced(HwTime(1)));
        assert_eq!(c.status(HwTime(1)), SyncStatus::Source);
        assert_eq!(c.read(HwTime(5)), Some(SyncTime(5)));
    }

    #[test]
    fn nonzero_rank_starts_unsynced() {
        let mut c = FailAwareClock::new(ProcessId(1), cfg(3));
        c.on_start(HwTime(0));
        assert!(!c.is_synced(HwTime(1)));
        assert_eq!(c.read(HwTime(1)), None);
        assert_eq!(c.status(HwTime(1)), SyncStatus::Unsynced);
    }

    #[test]
    fn adoption_from_source_bounds_deviation() {
        let c = cfg(2);
        let mut p0 = FailAwareClock::new(ProcessId(0), c);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        // p1's hardware clock is 1 s ahead of p0's.
        p0.on_start(HwTime(0));
        p1.on_start(HwTime(1_000_000));
        let one_way = Duration::from_millis(1);
        // p0 also needs majority contact: run a p0-probe round answered
        // by p1.
        round(&mut p0, &mut p1, HwTime(10_000), one_way, HwTime(1_011_000));
        // p1 probes p0; p0 replies 1 ms later at its hw 12_000+1000.
        round(&mut p1, &mut p0, HwTime(1_012_000), one_way, HwTime(13_000));
        let t = HwTime(1_020_000); // p1 hw; p0 hw is 20_000
        assert!(p1.is_synced(t));
        let s1 = p1.read(t).unwrap();
        let s0 = p0.read_unchecked(HwTime(20_000));
        assert!(
            (s1.0 - s0.0).abs() <= 2_000,
            "deviation {} too large",
            (s1.0 - s0.0).abs()
        );
        assert_eq!(p1.status(t), SyncStatus::Adopted { from: ProcessId(0) });
        assert!(p1.err_bound() <= Duration::from_millis(2));
    }

    #[test]
    fn late_replies_are_rejected() {
        let c = cfg(2);
        let mut p0 = FailAwareClock::new(ProcessId(0), c);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        p0.on_start(HwTime(0));
        p1.on_start(HwTime(0));
        // Round trip of 2·δ + 1µs: not timely, no adoption.
        round(
            &mut p1,
            &mut p0,
            HwTime(1_000),
            Duration(c.delta.as_micros() + 1),
            HwTime(1_000),
        );
        assert!(!p1.is_synced(HwTime(25_000)));
    }

    #[test]
    fn stale_rid_rejected() {
        let c = cfg(2);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        p1.on_start(HwTime(0));
        p1.handle(HwTime(100), ClockEvent::Tick); // rid bumps to 2
                                                  // Reply to rid 1 (from on_start's probe) must be ignored.
        p1.handle(
            HwTime(200),
            ClockEvent::Msg {
                from: ProcessId(0),
                msg: ClockSyncMsg::Reply {
                    sender: ProcessId(0),
                    rid: 1,
                    hw_send_echo: HwTime(0),
                    sync_at_reply: SyncTime(0),
                    synced: true,
                },
            },
        );
        assert!(!p1.is_synced(HwTime(201)));
    }

    #[test]
    fn sync_expires_without_resync() {
        let c = cfg(2);
        let mut p0 = FailAwareClock::new(ProcessId(0), c);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        p0.on_start(HwTime(0));
        p1.on_start(HwTime(0));
        // p0 probes first so its own majority-contact condition holds and
        // its replies carry synced=true.
        round(
            &mut p0,
            &mut p1,
            HwTime(500),
            Duration::from_millis(1),
            HwTime(1_500),
        );
        round(
            &mut p1,
            &mut p0,
            HwTime(3_000),
            Duration::from_millis(1),
            HwTime(4_000),
        );
        assert!(p1.is_synced(HwTime(10_000)));
        // Past the validity window with no further adoption: unsynced.
        let later = HwTime(3_000 + c.sync_validity.as_micros() + 10_000);
        assert!(!p1.is_synced(later));
    }

    #[test]
    fn takeover_after_source_silence() {
        let c = cfg(2);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        p1.on_start(HwTime(0));
        // p1 keeps hearing replies from itself? No — drive ticks with a
        // peer reply from rank 2 (higher, non-adoptable) to satisfy
        // majority contact... In a team of 2, majority is 2, so p1 needs
        // contact with p0. Without p0 it must stay unsynced forever even
        // after takeover. Check exactly that:
        let mut t = HwTime(0);
        for _ in 0..10 {
            t += c.resync_interval;
            p1.handle(t, ClockEvent::Tick);
        }
        // p1 became source (no lower-ranked heard) …
        assert!(p1.is_source);
        // … but fail-awareness still reports unsynced: no majority contact.
        assert!(!p1.is_synced(t));
    }

    #[test]
    fn takeover_with_majority_contact_becomes_synced() {
        let c = cfg(3); // majority = 2 → one fresh peer + self suffices
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        let mut p2 = FailAwareClock::new(ProcessId(2), c);
        p1.on_start(HwTime(0));
        p2.on_start(HwTime(0));
        let mut t = HwTime(0);
        for _ in 0..5 {
            t += c.resync_interval;
            // p1 probes, p2 answers (unsynced replies still count as
            // majority contact).
            round(&mut p1, &mut p2, t, Duration::from_millis(1), t);
        }
        assert!(p1.is_synced(t + Duration::from_millis(2)));
        assert_eq!(p1.status(t + Duration::from_millis(2)), SyncStatus::Source);
    }

    #[test]
    fn adoption_chain_p2_from_p1() {
        let c = cfg(3);
        let mut p0 = FailAwareClock::new(ProcessId(0), c);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        let mut p2 = FailAwareClock::new(ProcessId(2), c);
        p0.on_start(HwTime(0));
        p1.on_start(HwTime(500_000));
        p2.on_start(HwTime(9_000_000));
        let d = Duration::from_millis(1);
        // p0 probes first (p1 answers) so p0 reaches majority contact
        // (n=3 → majority 2 → one fresh peer + self).
        round(&mut p0, &mut p1, HwTime(30_000), d, HwTime(531_000));
        // p1 adopts from p0.
        round(&mut p1, &mut p0, HwTime(540_000), d, HwTime(41_000));
        assert!(p1.is_synced(HwTime(542_001)));
        // p2 adopts from p1 (p0 never talks to p2 here).
        round(&mut p2, &mut p1, HwTime(9_050_000), d, HwTime(591_000));
        let t2 = HwTime(9_052_001);
        assert!(p2.is_synced(t2));
        // p2's synchronized time tracks p0's time base through the chain:
        // p0 hw == sync; at p2 hw 9_052_001, p0 hw ≈ 92_001… allow the
        // two-hop error.
        let s2 = p2.read(t2).unwrap();
        assert!(
            (s2.0 - 92_001).abs() <= 4_000,
            "chained deviation {}",
            s2.0 - 92_001
        );
    }

    #[test]
    fn epsilon_is_positive_and_scales_with_delta() {
        let a = ClockSyncConfig::for_team(3, Duration::from_millis(1)).epsilon();
        let b = ClockSyncConfig::for_team(3, Duration::from_millis(10)).epsilon();
        assert!(a > Duration::ZERO);
        assert!(b > a);
    }

    #[test]
    fn restart_forgets_sync() {
        let c = cfg(2);
        let mut p0 = FailAwareClock::new(ProcessId(0), c);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        p0.on_start(HwTime(0));
        p1.on_start(HwTime(0));
        round(
            &mut p0,
            &mut p1,
            HwTime(500),
            Duration::from_millis(1),
            HwTime(1_500),
        );
        round(
            &mut p1,
            &mut p0,
            HwTime(3_000),
            Duration::from_millis(1),
            HwTime(4_000),
        );
        assert!(p1.is_synced(HwTime(5_002)));
        p1.on_start(HwTime(6_000));
        assert!(!p1.is_synced(HwTime(6_001)));
    }

    #[test]
    fn requests_always_answered() {
        let c = cfg(2);
        let mut p1 = FailAwareClock::new(ProcessId(1), c);
        p1.on_start(HwTime(0));
        let acts = p1.handle(
            HwTime(10),
            ClockEvent::Msg {
                from: ProcessId(0),
                msg: ClockSyncMsg::Request {
                    sender: ProcessId(0),
                    rid: 1,
                    hw_send: HwTime(5),
                },
            },
        );
        match &acts[..] {
            [ClockAction::Send(to, ClockSyncMsg::Reply { synced, .. })] => {
                assert_eq!(*to, ProcessId(0));
                assert!(!synced);
            }
            other => panic!("unexpected actions {other:?}"),
        }
    }
}
