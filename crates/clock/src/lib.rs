//! # tw-clock — fail-aware clock synchronization
//!
//! The timewheel membership protocol's multiple-failure election divides a
//! *global time base* into slots; that time base is provided by a
//! fail-aware clock synchronization protocol (paper §2, citing Fetzer &
//! Cristian's fail-awareness work): synchronized clocks deviate by at most
//! a known ε **and every process knows, at any moment, whether its clock
//! is currently synchronized**. A process that cannot keep its clock
//! synchronized must leave the group and rejoin once synchronized again.
//!
//! ## The protocol implemented here
//!
//! A symmetric round-trip scheme with a rank-ordered reference chain:
//!
//! * Every process periodically broadcasts a time **request**; every
//!   receiver answers with a **reply** carrying its current synchronized
//!   time and its synced flag (and echoing the request's hardware send
//!   time, so the requester can measure the round trip on its own clock).
//! * A requester *adopts* the time of a **synced process with lower rank**
//!   when the round trip was timely (≤ 2δ): the remote synchronized time
//!   at receipt is estimated as `sync_at_reply + rtt/2`, with reading
//!   error ≤ `rtt/2 + ρ·rtt`.
//! * Rank 0 — or, after its crash, the lowest-ranked process that has
//!   heard no lower-ranked synced process for a takeover timeout — acts
//!   as the **source**, continuing the time base on its own hardware
//!   clock (keeping whatever offset it last adopted, so the time base
//!   survives source failover with a bounded jump).
//! * **Fail-awareness**: a process reports itself synchronized only while
//!   (a) its last adoption (or source self-renewal) is within the
//!   validity window, *and* (b) it has recently heard timely replies from
//!   a majority of the team. An isolated or partitioned-minority process
//!   therefore *knows* it is unsynchronized — exactly the signal the
//!   membership layer consumes.
//!
//! This is a deliberately simple instance of the fail-aware design
//! pattern: the interface (synchronized reads + a truthful synced flag +
//! an error bound) is what the membership protocol consumes; DESIGN.md
//! records the substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sync;

pub use sync::{ClockAction, ClockEvent, ClockSyncConfig, FailAwareClock, SyncStatus};

/// Commonly used items.
pub mod prelude {
    pub use crate::{ClockAction, ClockEvent, ClockSyncConfig, FailAwareClock, SyncStatus};
}
