//! Negative coverage for `timewheel::invariants`: fabricate deliberately
//! corrupted member logs and prove each checker can actually fail.
//!
//! The checkers gate every integration test and every schedule the
//! exhaustive explorer enumerates; a checker that silently accepts
//! garbage would turn all of that into green noise. Each test here
//! builds the *minimal* corrupted log for one invariant and asserts both
//! the targeted checker and the `check_all_members` aggregate flag it.

use bytes::Bytes;
use timewheel::events::Delivery;
use timewheel::harness::SimMember;
use timewheel::invariants::{
    check_all_members, check_fifo, check_majority, check_no_duplicate_deliveries,
    check_time_order, check_total_order_agreement, check_view_agreement,
};
use timewheel::{Config, Member};
use tw_proto::{
    Duration, HwTime, Ordinal, ProcessId, ProposalId, Semantics, SyncTime, View, ViewId,
};

const N: usize = 3;

fn blank(pid: u16) -> SimMember {
    let cfg = Config::for_team(N, Duration::from_millis(10));
    SimMember::new(Member::new_unchecked(ProcessId(pid), cfg))
}

fn delivery(proposer: u16, seq: u64, sem: Semantics, send_us: i64) -> Delivery {
    Delivery {
        id: ProposalId {
            proposer: ProcessId(proposer),
            seq,
        },
        ordinal: Some(Ordinal(seq)),
        semantics: sem,
        send_ts: SyncTime(send_us),
        payload: Bytes::from_static(b"x"),
    }
}

/// Install `view` on the member at local time `t_us` — keeps the views
/// log and the delivery-view alignment the checkers expect.
fn install(m: &mut SimMember, view: &View, t_us: i64) {
    m.views.push((HwTime::from_micros(t_us), view.clone()));
}

fn deliver(m: &mut SimMember, d: Delivery, vid: ViewId, t_us: i64) {
    m.deliveries.push((HwTime::from_micros(t_us), d));
    m.delivery_views.push(vid);
}

/// A majority view over members 0..k of an N-process team.
fn view(seq: u64, creator: u16, members: impl IntoIterator<Item = u16>) -> View {
    View::new(
        ViewId::new(seq, ProcessId(creator)),
        members.into_iter().map(ProcessId),
    )
}

fn refs(members: &[SimMember]) -> Vec<&SimMember> {
    members.iter().collect()
}

#[test]
fn clean_fabricated_log_passes() {
    let v = view(1, 0, [0, 1, 2]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    for (i, m) in team.iter_mut().enumerate() {
        install(m, &v, 100 + i as i64);
        deliver(m, delivery(0, 1, Semantics::TOTAL_STRONG, 200), v.id, 300);
        deliver(m, delivery(0, 2, Semantics::TOTAL_STRONG, 210), v.id, 310);
    }
    assert_eq!(check_all_members(&refs(&team)), Vec::new());
}

#[test]
fn duplicate_delivery_is_flagged() {
    let v = view(1, 0, [0, 1, 2]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    for m in team.iter_mut() {
        install(m, &v, 100);
    }
    // p1 applies the same proposal twice within one life.
    deliver(&mut team[1], delivery(0, 1, Semantics::TOTAL_STRONG, 200), v.id, 300);
    deliver(&mut team[1], delivery(0, 1, Semantics::TOTAL_STRONG, 200), v.id, 310);

    let viols = check_no_duplicate_deliveries(&refs(&team));
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert!(viols[0].0.contains("twice"), "{viols:?}");
    assert!(!check_all_members(&refs(&team)).is_empty());
}

#[test]
fn fifo_inversion_is_flagged() {
    let v = view(1, 0, [0, 1, 2]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    for m in team.iter_mut() {
        install(m, &v, 100);
    }
    // p2 delivers proposer 0's seq 2 before seq 1.
    deliver(&mut team[2], delivery(0, 2, Semantics::UNORDERED_WEAK, 210), v.id, 300);
    deliver(&mut team[2], delivery(0, 1, Semantics::UNORDERED_WEAK, 200), v.id, 310);

    let viols = check_fifo(&refs(&team));
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert!(viols[0].0.contains("after seq"), "{viols:?}");
    assert!(!check_all_members(&refs(&team)).is_empty());
}

#[test]
fn two_completed_views_sharing_a_seq_are_flagged() {
    // Two *different* majority groups both complete at seq 1: {0,1}
    // created by p0, and {1,2} created by p2 (p1 schizophrenically joins
    // both). A correct run can never produce this — two majorities of
    // the same team intersect, and the intersection member's decider
    // hands the seq to exactly one lineage.
    let va = view(1, 0, [0, 1]);
    let vb = view(1, 2, [1, 2]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    install(&mut team[0], &va, 100);
    install(&mut team[1], &va, 100);
    install(&mut team[1], &vb, 200);
    install(&mut team[2], &vb, 200);

    let viols = check_view_agreement(&refs(&team));
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert!(viols[0].0.contains("two completed majority groups"), "{viols:?}");
    assert!(!check_all_members(&refs(&team)).is_empty());
}

#[test]
fn same_view_id_with_diverging_member_sets_is_flagged() {
    let mut va = view(1, 0, [0, 1]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    install(&mut team[0], &va, 100);
    va.members.insert(ProcessId(2)); // p1 saw a different set under the same id
    install(&mut team[1], &va, 100);

    let viols = check_view_agreement(&refs(&team));
    assert!(
        viols.iter().any(|v| v.0.contains("two member sets")),
        "{viols:?}"
    );
}

#[test]
fn minority_view_is_flagged() {
    // A singleton view in a 3-process team: the paper's majority rule
    // (|view| > n/2) exists precisely to forbid this split-brain shape.
    let v = view(1, 0, [0]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    install(&mut team[0], &v, 100);

    let viols = check_majority(&refs(&team));
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert!(viols[0].0.contains("non-majority"), "{viols:?}");
    assert!(!check_all_members(&refs(&team)).is_empty());
}

#[test]
fn total_order_disagreement_in_a_completed_view_is_flagged() {
    let v = view(1, 0, [0, 1]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    install(&mut team[0], &v, 100);
    install(&mut team[1], &v, 100);
    let d1 = delivery(0, 1, Semantics::TOTAL_STRONG, 200);
    let d2 = delivery(1, 1, Semantics::TOTAL_STRONG, 205);
    deliver(&mut team[0], d1.clone(), v.id, 300);
    deliver(&mut team[0], d2.clone(), v.id, 310);
    deliver(&mut team[1], d2, v.id, 300);
    deliver(&mut team[1], d1, v.id, 310);

    let viols = check_total_order_agreement(&refs(&team));
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert!(viols[0].0.contains("total order disagreement"), "{viols:?}");
    assert!(!check_all_members(&refs(&team)).is_empty());
}

#[test]
fn total_order_divergence_outside_completed_views_is_not_flagged() {
    // Same inversion, but the view never completes (p1 never installs
    // it) — the paper scopes agreement to completed majority groups, so
    // the checker must stay quiet.
    let v = view(1, 0, [0, 1]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    install(&mut team[0], &v, 100); // p1 never installs v
    let d1 = delivery(0, 1, Semantics::TOTAL_STRONG, 200);
    let d2 = delivery(1, 1, Semantics::TOTAL_STRONG, 205);
    deliver(&mut team[0], d1.clone(), v.id, 300);
    deliver(&mut team[0], d2.clone(), v.id, 310);
    deliver(&mut team[1], d2, v.id, 300);
    deliver(&mut team[1], d1, v.id, 310);

    assert_eq!(check_total_order_agreement(&refs(&team)), Vec::new());
}

#[test]
fn time_order_inversion_is_flagged() {
    let v = view(1, 0, [0, 1, 2]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    for m in team.iter_mut() {
        install(m, &v, 100);
    }
    // p0 delivers a time-ordered update whose send timestamp precedes
    // the previous one.
    deliver(&mut team[0], delivery(1, 1, Semantics::TIME_STRICT, 500), v.id, 600);
    deliver(&mut team[0], delivery(2, 1, Semantics::TIME_STRICT, 400), v.id, 610);

    let viols = check_time_order(&refs(&team));
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert!(viols[0].0.contains("after ts"), "{viols:?}");
    assert!(!check_all_members(&refs(&team)).is_empty());
}

#[test]
fn duplicate_across_crash_lives_is_not_flagged() {
    // A crash-recovery starts a new life; re-applying an update after
    // the join-time state transfer is legal. The duplicate checker must
    // scope itself to one continuous life.
    let v = view(1, 0, [0, 1, 2]);
    let mut team: Vec<SimMember> = (0..N as u16).map(blank).collect();
    for m in team.iter_mut() {
        install(m, &v, 100);
    }
    let m = &mut team[1];
    m.leaves.push((
        HwTime::from_micros(0),
        timewheel::events::LeaveReason::Startup,
    ));
    deliver(m, delivery(0, 1, Semantics::TOTAL_STRONG, 200), v.id, 300);
    m.leaves.push((
        HwTime::from_micros(400),
        timewheel::events::LeaveReason::Startup,
    ));
    deliver(m, delivery(0, 1, Semantics::TOTAL_STRONG, 200), v.id, 500);

    assert_eq!(check_no_duplicate_deliveries(&refs(&team)), Vec::new());
}
