//! Property tests over the core's pure components: the FIFO cursor model,
//! the delivery conditions, and the §4.3 undeliverable classifier.

use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeSet;
use timewheel::buffers::ProposalBuffer;
use timewheel::config::Config;
use timewheel::delivery;
use timewheel::undeliverable::mark_undeliverables;
use tw_proto::{
    Atomicity, Descriptor, Duration, Incarnation, Oal, Ordering as Ord2, Ordinal, ProcessId,
    Proposal, ProposalId, Semantics, SyncTime, View, ViewId,
};

fn prop(sender: u16, seq: u64, sem: Semantics) -> Proposal {
    Proposal {
        sender: ProcessId(sender),
        incarnation: Incarnation(0),
        seq,
        send_ts: SyncTime(seq as i64),
        hdo: Ordinal::ZERO,
        semantics: sem,
        payload: Bytes::from_static(b"x"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Model check of the FIFO cursor: interleave inserts, deliveries
    /// and purges in random order; delivered sequence numbers per sender
    /// must come out strictly increasing, and every seq must be consumed
    /// at most once.
    #[test]
    fn fifo_cursor_model(ops in proptest::collection::vec((0u16..3, 1u64..12, 0u8..3), 0..80)) {
        let mut buf = ProposalBuffer::new();
        let mut delivered: Vec<(u16, u64)> = Vec::new();
        for (sender, seq, action) in ops {
            let id = ProposalId::new(ProcessId(sender), seq);
            match action {
                0 => {
                    buf.insert(prop(sender, seq, Semantics::UNORDERED_WEAK));
                }
                1 => {
                    if buf.has_pending(id) && buf.fifo_ready(id) {
                        buf.deliver(id);
                        delivered.push((sender, seq));
                    }
                }
                _ => {
                    buf.purge(id);
                }
            }
        }
        // Strictly increasing per sender.
        for s in 0..3u16 {
            let seqs: Vec<u64> = delivered.iter().filter(|(x, _)| *x == s).map(|(_, q)| *q).collect();
            for w in seqs.windows(2) {
                prop_assert!(w[0] < w[1], "sender {s} delivered out of order: {seqs:?}");
            }
        }
        // No duplicates.
        let uniq: BTreeSet<_> = delivered.iter().collect();
        prop_assert_eq!(uniq.len(), delivered.len());
    }

    /// Atomicity conditions are monotone in acknowledgements: adding an
    /// ack can only make a blocked proposal deliverable, never the
    /// reverse.
    #[test]
    fn atomicity_monotone_in_acks(
        n_deps in 1usize..6,
        acks in proptest::collection::vec((0usize..6, 0u16..5), 0..30),
        strict in any::<bool>(),
    ) {
        let group = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
        let mut oal = Oal::new();
        for i in 0..n_deps {
            oal.append(Descriptor::update(
                ProposalId::new(ProcessId(1), i as u64 + 1),
                Ordinal::ZERO,
                Semantics::UNORDERED_WEAK,
                SyncTime(i as i64),
                ProcessId(1),
            ));
        }
        let hdo = Ordinal(n_deps as u64);
        let sem = Semantics::new(
            Ord2::Unordered,
            if strict { Atomicity::Strict } else { Atomicity::Strong },
        );
        let mut p = prop(0, 1, sem);
        p.hdo = hdo;
        let mut was_ok = delivery::atomicity_ok(&oal, &group, &p);
        for (idx, rank) in acks {
            let o = Ordinal(oal.base().0 + idx as u64);
            oal.ack(o, ProcessId(rank));
            let now_ok = delivery::atomicity_ok(&oal, &group, &p);
            prop_assert!(!was_ok || now_ok, "ack revoked deliverability");
            was_ok = now_ok;
        }
        // Fully acknowledged ⇒ both levels deliverable.
        let mut o = oal.base();
        while o < oal.next_ordinal() {
            for r in 0..5u16 {
                oal.ack(o, ProcessId(r));
            }
            o = o.next();
        }
        prop_assert!(delivery::atomicity_ok(&oal, &group, &p));
    }

    /// The §4.3 classifier: marks are consistent — every marked ordinal
    /// is in the window; lost/orphan-order only hit departed proposers;
    /// the result is "closed" (running the classifier again marks
    /// nothing new); and survivors' fully-acked weak updates survive.
    #[test]
    fn classifier_is_sound_and_idempotent(
        entries in proptest::collection::vec(
            (0u16..6, 1u64..50, 0u8..3, 0u8..3, 0u64..10, 0u64..64),
            0..24,
        ),
    ) {
        let survivors: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let group = View::new(ViewId::new(2, ProcessId(0)), survivors.clone());
        let departed: BTreeSet<ProcessId> = [ProcessId(4), ProcessId(5)].into_iter().collect();
        let mut oal = Oal::new();
        for (sender, seq, ord_sel, atom_sel, hdo, ackbits) in entries {
            let sem = Semantics::new(
                [Ord2::Unordered, Ord2::Total, Ord2::Time][ord_sel as usize],
                [Atomicity::Weak, Atomicity::Strong, Atomicity::Strict][atom_sel as usize],
            );
            let mut d = Descriptor::update(
                ProposalId::new(ProcessId(sender), seq),
                Ordinal(hdo),
                sem,
                SyncTime(seq as i64),
                ProcessId(sender),
            );
            d.acks = tw_proto::AckBits(ackbits & 0b1111 | (1 << sender.min(5)));
            // Wipe departed-only acks sometimes to create "lost".
            if departed.contains(&ProcessId(sender)) && seq % 2 == 0 {
                d.acks = tw_proto::AckBits(1 << sender);
            }
            oal.append(d);
        }
        let report = mark_undeliverables(&mut oal, &group, &departed);
        // Soundness of categories.
        for (o, id) in &report.lost {
            prop_assert!(departed.contains(&id.proposer));
            prop_assert!(oal.get(*o).unwrap().undeliverable);
            prop_assert_eq!(oal.get(*o).unwrap().acks.count_in(&group), 0);
        }
        for (_, id) in &report.orphan_order {
            prop_assert!(departed.contains(&id.proposer));
        }
        // All marked ordinals are inside the window.
        for (o, _) in report
            .lost
            .iter()
            .chain(&report.orphan_order)
            .chain(&report.orphan_atomicity)
            .chain(&report.unknown_dependency)
        {
            prop_assert!(oal.get(*o).is_some());
        }
        // Idempotence: a second pass finds nothing.
        let second = mark_undeliverables(&mut oal, &group, &departed);
        prop_assert_eq!(second.total(), 0, "classifier not closed");
        // Survivor weak updates acked by a survivor are never marked.
        for (o, d) in oal.iter() {
            if let tw_proto::DescriptorBody::Update { id, semantics, .. } = &d.body {
                if !departed.contains(&id.proposer)
                    && semantics.atomicity == Atomicity::Weak
                {
                    prop_assert!(
                        !d.undeliverable,
                        "survivor weak update marked at {o}"
                    );
                }
            }
        }
    }

    /// Total-order gating: an ordered update never becomes deliverable
    /// while an earlier ordered update is neither delivered nor marked
    /// undeliverable.
    #[test]
    fn total_order_never_skips(
        k in 1usize..6,
        deliver_first in any::<bool>(),
    ) {
        let cfg = Config::for_team(5, Duration::from_millis(10));
        let group = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
        let sem = Semantics::new(Ord2::Total, Atomicity::Weak);
        let mut oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let mut ids = Vec::new();
        for i in 0..=k {
            let p = prop(i as u16 % 5, 1 + (i / 5) as u64, sem);
            let o = oal.append(Descriptor::update(
                p.id(), p.hdo, p.semantics, p.send_ts, p.sender,
            ));
            buf.learn_ordinal(p.id(), o);
            buf.insert(p.clone());
            ids.push(p);
        }
        let last = &ids[k];
        // The final update is blocked while any predecessor is pending.
        prop_assert!(!delivery::order_ok(&oal, &buf, &cfg, SyncTime(1_000), last));
        if deliver_first {
            // Deliver all predecessors in order → unblocked.
            for p in &ids[..k] {
                prop_assert!(delivery::deliverable(&oal, &buf, &group, &cfg, SyncTime(1_000), p));
                buf.deliver(p.id());
            }
        } else {
            // Mark all predecessors undeliverable → also unblocked.
            for p in &ids[..k] {
                let o = buf.ordinal_of(p.id()).unwrap();
                oal.mark_undeliverable(o);
                buf.purge(p.id());
            }
        }
        prop_assert!(delivery::order_ok(&oal, &buf, &cfg, SyncTime(1_000), last));
    }
}
