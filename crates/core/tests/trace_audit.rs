//! End-to-end trace audit: run the real protocol in the simulator with a
//! tracer attached to every member and tail the stream with the live
//! auditor. Unlike the unit fixtures in tw-obs (which feed the auditor
//! hand-written event sequences), these tests audit the traces the
//! protocol actually produces — formation, failure-free rotation, and a
//! crash-driven reconfiguration.

use std::sync::Arc;

use bytes::Bytes;
use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::Action;
use tw_obs::{SharedAuditor, TraceEvent, TraceSink, Tracer, VecSink};
use tw_proto::{Duration, ProcessId, Semantics};
use tw_sim::{SimTime, World};

/// Forwards every event both to the live auditor and to a buffer, so the
/// test can assert on what the protocol actually emitted.
struct Tee {
    auditor: SharedAuditor,
    events: VecSink,
}

impl TraceSink for Tee {
    fn record(&self, ev: &TraceEvent) {
        self.auditor.record(ev);
        self.events.record(ev);
    }
}

fn attach_tracers(
    w: &mut World<timewheel::harness::SimMember>,
    n: usize,
    sink: &Arc<Tee>,
) {
    for i in 0..n {
        let tracer = Tracer::new(sink.clone() as Arc<dyn TraceSink>);
        w.actor_mut(ProcessId(i as u16)).member.set_tracer(tracer);
    }
}

/// Schedule `count` TOTAL_STRONG proposals from rotating senders.
fn inject_proposals(
    w: &mut World<timewheel::harness::SimMember>,
    n: usize,
    count: usize,
    gap: Duration,
) {
    for k in 0..count {
        let sender = ProcessId((k % n) as u16);
        let t = w.now() + gap * (k + 1) as i64;
        let payload = Bytes::from(format!("u{k}"));
        w.call_at(t, sender, move |a, ctx| {
            let actions = a
                .member
                .propose(ctx.now_hw(), payload, Semantics::TOTAL_STRONG)
                .expect("member in group accepts proposals");
            for act in actions {
                match act {
                    Action::Broadcast(m) => ctx.broadcast(m),
                    Action::Send(to, m) => ctx.send(to, m),
                    Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                    _ => {}
                }
            }
        });
    }
}

fn count_events(events: &[TraceEvent], pred: impl Fn(&TraceEvent) -> bool) -> usize {
    events.iter().filter(|ev| pred(ev)).count()
}

/// Failure-free formation plus a proposal burst: the trace stream must
/// contain the rotation (decisions sent and received), view installs and
/// deliveries — and no suspicion or election traffic — and the auditor
/// must find nothing wrong with it.
#[test]
fn failure_free_run_audits_clean() {
    const N: usize = 5;
    let params = TeamParams::new(N);
    let cfg = params.protocol_config();
    let sink = Arc::new(Tee {
        auditor: SharedAuditor::new(N),
        events: VecSink::new(),
    });

    let mut w = team_world(&params);
    attach_tracers(&mut w, N, &sink);

    run_until_pred(&mut w, SimTime::from_millis(5_000), |w| all_in_group(w, N))
        .expect("group forms");

    const PROPOSALS: usize = 8;
    inject_proposals(&mut w, N, PROPOSALS, cfg.cycle());
    w.run_for(cfg.cycle() * (PROPOSALS as i64 + 6));

    let events = sink.events.snapshot();
    assert!(
        count_events(&events, |e| matches!(e, TraceEvent::DecisionSent { .. })) > 0,
        "rotation emitted no decisions"
    );
    assert!(
        count_events(&events, |e| matches!(e, TraceEvent::DecisionReceived { .. })) > 0,
        "no member traced accepting a decision"
    );
    assert!(
        count_events(&events, |e| matches!(e, TraceEvent::ViewInstalled { .. })) >= N,
        "formation installed fewer views than members"
    );
    // Every proposal is delivered at every member.
    let delivered = count_events(&events, |e| matches!(e, TraceEvent::Delivered { .. }));
    assert!(
        delivered >= N * PROPOSALS,
        "expected at least {} deliveries, traced {delivered}",
        N * PROPOSALS
    );
    assert_eq!(
        count_events(&events, |e| {
            matches!(
                e,
                TraceEvent::SuspicionRaised { .. }
                    | TraceEvent::NoDecisionHop { .. }
                    | TraceEvent::ReconfigSlotFired { .. }
            )
        }),
        0,
        "failure-free run traced membership machinery"
    );

    sink.auditor.assert_clean();
}

/// Crash one member after formation: the trace must show the suspicion
/// and the reconfiguration down to a 4-member view, and the stream must
/// still satisfy every auditor invariant.
#[test]
fn crash_reconfiguration_audits_clean() {
    const N: usize = 5;
    let params = TeamParams::new(N).seed(7);
    let sink = Arc::new(Tee {
        auditor: SharedAuditor::new(N),
        events: VecSink::new(),
    });

    let mut w = team_world(&params);
    attach_tracers(&mut w, N, &sink);

    run_until_pred(&mut w, SimTime::from_millis(5_000), |w| all_in_group(w, N))
        .expect("group forms");

    let crash_at = w.now() + Duration::from_millis(5);
    w.crash_at(crash_at, ProcessId(2));
    run_until_pred(&mut w, SimTime::from_millis(10_000), |w| {
        all_in_group(w, N - 1)
    })
    .expect("survivors reconfigure to a 4-member view");

    let events = sink.events.snapshot();
    assert!(
        count_events(&events, |e| matches!(
            e,
            TraceEvent::SuspicionRaised { suspect: ProcessId(2), .. }
        )) > 0,
        "no survivor traced suspecting the crashed member"
    );
    assert!(
        count_events(&events, |e| matches!(
            e,
            TraceEvent::ViewInstalled { members, .. } if members.count() == N - 1
        )) >= N - 1,
        "survivors did not all trace installing the 4-member view"
    );

    sink.auditor.assert_clean();
}
