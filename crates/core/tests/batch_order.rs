//! Batched dispatch is observably identical to sequential dispatch.
//!
//! The hot path batches two things: a member drains several queued
//! client updates through one `propose_batch` call, and a receiver
//! applies every frame of a multi-frame datagram through one
//! `on_messages` call. Both must preserve the §3 orders exactly — the
//! per-sender FIFO order, the total order over ordinals, and the
//! Deliver/InstallView interleaving that view synchrony depends on.
//! These tests pin batched output to the sequential baseline, message
//! for message and action for action.

use bytes::Bytes;
use timewheel::events::Action;
use timewheel::{Config, Member};
use tw_proto::{
    AliveList, Decision, Duration, HwTime, Msg, Oal, ProcessId, Semantics, SyncTime, View, ViewId,
};

const N: usize = 3;

fn team_view() -> View {
    View::new(
        ViewId::new(1, ProcessId(0)),
        (0..N as u16).map(ProcessId),
    )
}

fn member(pid: u16) -> Member {
    let cfg = Config::for_team(N, Duration::from_millis(10));
    Member::new_in_view(ProcessId(pid), cfg, team_view())
}

fn payloads() -> Vec<(Bytes, Semantics)> {
    vec![
        (Bytes::from_static(b"a"), Semantics::UNORDERED_WEAK),
        (Bytes::from_static(b"b"), Semantics::TOTAL_STRONG),
        (Bytes::from_static(b"c"), Semantics::UNORDERED_WEAK),
        (Bytes::from_static(b"d"), Semantics::TIME_STRICT),
        (Bytes::from_static(b"e"), Semantics::UNORDERED_WEAK),
    ]
}

fn broadcasts(actions: &[Action]) -> Vec<Msg> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Broadcast(m) => Some(m.clone()),
            _ => None,
        })
        .collect()
}

fn delivered_payloads(actions: &[Action]) -> Vec<Bytes> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Deliver(d) => Some(d.payload.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn propose_batch_matches_sequential_proposes() {
    let mut seq = member(0);
    let mut bat = member(0);
    let now = HwTime(1_000);

    let mut seq_actions = Vec::new();
    for (payload, sem) in payloads() {
        seq_actions.extend(seq.propose(now, payload, sem).unwrap());
    }
    let bat_actions = bat.propose_batch(now, payloads()).unwrap();

    // Identical wire traffic: same proposals, same seqs, same send_ts.
    assert_eq!(broadcasts(&seq_actions), broadcasts(&bat_actions));
    // Identical delivery sequence (weak updates self-deliver, in the
    // same per-sender FIFO order).
    assert_eq!(
        delivered_payloads(&seq_actions),
        delivered_payloads(&bat_actions)
    );
    assert_eq!(seq.delivered_count(), bat.delivered_count());
}

#[test]
fn propose_batch_send_ts_strictly_increasing() {
    let mut m = member(0);
    let msgs = broadcasts(&m.propose_batch(HwTime(1_000), payloads()).unwrap());
    let mut last = None;
    for msg in msgs {
        let Msg::Proposal(p) = msg else {
            panic!("expected proposal")
        };
        if let Some(prev) = last {
            assert!(p.send_ts > prev, "send_ts must strictly increase");
        }
        last = Some(p.send_ts);
    }
}

#[test]
fn propose_batch_empty_is_noop() {
    let mut m = member(0);
    let actions = m.propose_batch(HwTime(1_000), Vec::new()).unwrap();
    assert!(actions.is_empty());
    assert_eq!(m.delivered_count(), 0);
}

/// Drive a proposer and the decider long enough to produce a mixed bag
/// of real protocol traffic — proposals plus at least one decision.
fn capture_traffic() -> Vec<Msg> {
    let mut proposer = member(1);
    let mut decider = member(0);
    let mut msgs = Vec::new();

    let actions = proposer
        .propose_batch(HwTime(1_000), payloads())
        .unwrap();
    let proposals = broadcasts(&actions);
    msgs.extend(proposals.clone());

    // A member born into a view holds no decider role; the rotation is
    // armed by receiving the previous decision. Seed one from process 2
    // — its successor in [0, 1, 2] is 0, so the decider picks up the
    // role and emits within `decider_interval`.
    let seed = Msg::Decision(Decision {
        sender: ProcessId(2),
        send_ts: SyncTime(1_500),
        view: team_view(),
        oal: Oal::new(),
        alive: AliveList::EMPTY,
    });
    msgs.push(seed.clone());

    // Feed the proposals to the decider and tick it across slots until
    // it broadcasts a decision covering them.
    let mut decided = false;
    for step in 0..200i64 {
        let now = HwTime(2_000 + step * 1_000);
        let mut out = Vec::new();
        if step == 0 {
            out.extend(decider.on_messages(now, ProcessId(2), vec![seed.clone()]));
            out.extend(decider.on_messages(now, ProcessId(1), proposals.clone()));
        }
        out.extend(decider.on_tick(now));
        for m in broadcasts(&out) {
            if matches!(m, Msg::Decision(_)) {
                decided = true;
            }
            msgs.push(m);
        }
        if decided {
            break;
        }
    }
    assert!(decided, "decider never produced a decision");
    msgs
}

#[test]
fn on_messages_matches_sequential_on_message() {
    let traffic = capture_traffic();
    assert!(
        traffic.iter().any(|m| matches!(m, Msg::Decision(_))),
        "traffic must include a decision"
    );
    assert!(
        traffic.iter().any(|m| matches!(m, Msg::Proposal(_))),
        "traffic must include proposals"
    );

    // Two identical receivers: one applies the batch message by
    // message, the other in a single on_messages call.
    let mut seq = member(2);
    let mut bat = member(2);
    let now = HwTime(500_000);

    let mut seq_actions = Vec::new();
    for m in traffic.clone() {
        seq_actions.extend(seq.on_message(now, ProcessId(0), m));
    }
    let bat_actions = bat.on_messages(now, ProcessId(0), traffic);

    // Action-for-action equality: deliveries, view installs, outbound
    // traffic, everything — in the same order.
    assert_eq!(seq_actions, bat_actions);
    assert_eq!(seq.delivered_count(), bat.delivered_count());
    assert_eq!(seq.view(), bat.view());
    assert_eq!(seq.oal().next_ordinal(), bat.oal().next_ordinal());
}

#[test]
fn on_messages_interleaves_deliveries_with_view_changes() {
    // The §3 guarantee the single-try_deliver shortcut would break:
    // when one datagram carries both a proposal and a decision, the
    // proposal's delivery must happen at the same point (relative to
    // any InstallView) as under sequential processing.
    let traffic = capture_traffic();
    let mut seq = member(2);
    let mut bat = member(2);
    let now = HwTime(500_000);

    let mut seq_kinds = Vec::new();
    for m in traffic.clone() {
        for a in seq.on_message(now, ProcessId(0), m) {
            seq_kinds.push(kind_of(&a));
        }
    }
    let bat_kinds: Vec<_> = bat
        .on_messages(now, ProcessId(0), traffic)
        .iter()
        .map(kind_of)
        .collect();
    assert_eq!(seq_kinds, bat_kinds);
}

fn kind_of(a: &Action) -> &'static str {
    match a {
        Action::Broadcast(_) => "broadcast",
        Action::Send(..) => "send",
        Action::Deliver(_) => "deliver",
        Action::InstallView(_) => "install-view",
        Action::ScheduleClockTick(_) => "clock-tick",
        Action::LeftGroup { .. } => "left-group",
        Action::InstallAppState(_) => "app-state",
    }
}

#[test]
fn on_messages_ignores_own_echo() {
    let mut m = member(2);
    let traffic = capture_traffic();
    let actions = m.on_messages(HwTime(500_000), ProcessId(2), traffic);
    assert!(actions.is_empty());
    assert_eq!(m.delivered_count(), 0);
}
