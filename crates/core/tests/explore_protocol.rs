//! Exploration of the real protocol: the standard small-scope scenarios
//! must come back clean, must not be vacuous (updates really deliver in
//! some schedules), and the deliberately-broken fixture must be caught.

use timewheel::explore::{
    check_team, config_for, deliveries_in, run_broken_fixture, run_scenario, scenario, team,
    Budgets, ExploreMember, Scenario,
};
use tw_sim::explore::Explorer;

fn quick() -> Budgets {
    Budgets::default() // deliveries 4, timer fires 1: completes everywhere
}

fn deep() -> Budgets {
    Budgets {
        deliveries: 6,
        timer_fires: 2,
        ..Budgets::default()
    }
}

/// Every crash placement of a formed 3-member group stays invariant-
/// clean, at budgets that saturate the scenario's whole bounded space.
#[test]
fn single_failure_explores_clean() {
    let sc = scenario("single-failure").expect("standard scenario");
    let rep = run_scenario(sc, &deep());
    assert!(rep.clean(), "violations: {:#?}", rep.violations);
    assert!(!rep.truncated);
    assert!(rep.schedules > 0);
}

/// Every single-message omission (wrong-suspicion inducing) stays clean.
#[test]
fn false_alarm_explores_clean() {
    let sc = scenario("false-alarm").expect("standard scenario");
    let rep = run_scenario(sc, &deep());
    assert!(rep.clean(), "violations: {:#?}", rep.violations);
    assert!(!rep.truncated);
    assert!(rep.schedules > 0);
}

/// The join phase from scratch: all interleavings at the quick budget.
#[test]
fn reconfiguration_explores_clean() {
    let sc = scenario("reconfiguration").expect("standard scenario");
    let rep = run_scenario(sc, &quick());
    assert!(rep.clean(), "violations: {:#?}", rep.violations);
    assert!(!rep.truncated);
    assert!(
        rep.schedules > 10_000,
        "join phase should branch heavily, got {}",
        rep.schedules
    );
}

/// The explored scenarios actually deliver updates — the delivery-side
/// invariants are exercised, not vacuously true over empty logs.
#[test]
fn exploration_is_not_vacuous() {
    let sc = scenario("single-failure").expect("standard scenario");
    let mut max_delivered = 0usize;
    let mut actors = team(sc);
    actors[0].set_proposals(1);
    let rep = Explorer::new(config_for(sc, &deep()), |a: &[ExploreMember]| {
        max_delivered = max_delivered.max(deliveries_in(a));
        check_team(a)
    })
    .run(actors);
    assert!(rep.clean());
    assert!(
        max_delivered >= 3,
        "expected some schedule to deliver the update everywhere, max was {max_delivered}"
    );
}

/// Sleep-set reduction must not change verdicts, only effort: both modes
/// agree the scenarios are clean, and DPOR never enlarges the space.
#[test]
fn dpor_and_full_enumeration_agree() {
    for name in ["single-failure", "false-alarm"] {
        let sc = scenario(name).expect("standard scenario");
        let full = run_scenario(sc, &Budgets { dpor: false, ..quick() });
        let dpor = run_scenario(sc, &quick());
        assert_eq!(full.clean(), dpor.clean(), "{name}");
        assert!(dpor.schedules <= full.schedules, "{name}");
        assert!(dpor.schedules > 0, "{name}");
    }
}

/// Crash placements genuinely enlarge the schedule space (the fault
/// budget is exercised, not ignored).
#[test]
fn crash_budget_enlarges_the_space() {
    let sc = scenario("single-failure").expect("standard scenario");
    let no_crash = Scenario { crashes: 0, ..sc.clone() };
    let b = Budgets { dpor: false, ..quick() };
    let with_crash = run_scenario(sc, &b);
    let without = run_scenario(&no_crash, &b);
    assert!(
        with_crash.schedules > without.schedules,
        "{} !> {}",
        with_crash.schedules,
        without.schedules
    );
}

/// The pipeline self-test: a member that duplicates its first delivery
/// MUST be reported. If this fixture explores clean, green exploration
/// runs are meaningless.
#[test]
fn broken_fixture_is_caught() {
    let rep = run_broken_fixture(&quick());
    assert!(!rep.clean(), "sabotaged member escaped the checkers");
    let v = &rep.violations[0];
    assert!(!v.schedule.is_empty(), "violation must carry its schedule");
    assert!(
        v.violations.iter().any(|m| m.contains("twice")),
        "expected the duplicate-delivery invariant, got: {:?}",
        v.violations
    );
}
