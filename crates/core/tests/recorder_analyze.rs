//! End-to-end flight-recorder acceptance: run the real protocol in the
//! simulator with a crash-safe [`FlightRecorder`] attached to every
//! member, crash one member, then reconstruct the recovery **offline**
//! from the five per-node recording files alone — exactly what the
//! `tw-trace` CLI does post mortem. The reconstructed recovery span must
//! show per-hop latency attribution and fit the paper's §4.2 envelope,
//! and the offline audit (live invariants plus the cross-node checks)
//! must be clean.

use std::path::PathBuf;
use std::sync::Arc;

use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use tw_obs::{
    analyze, render_timeline, FlightRecorder, RecorderConfig, Recording, TimelineOptions,
    TraceEvent, TraceSet, TraceSink, Tracer,
};
use tw_proto::{Duration, ProcessId};
use tw_sim::SimTime;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-core-recana-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Attach a fresh recorder to every member; returns the recorders so the
/// test can flush and then load them back.
fn attach_recorders(
    w: &mut tw_sim::World<timewheel::harness::SimMember>,
    cfg: &timewheel::Config,
    dir: &std::path::Path,
) -> Vec<Arc<FlightRecorder>> {
    (0..cfg.n)
        .map(|i| {
            let pid = ProcessId(i as u16);
            let rc = RecorderConfig::new(pid, cfg.n, cfg.epsilon).capacity(64);
            let rec = Arc::new(
                FlightRecorder::create(dir.join(format!("node-{i}.twrec")), rc)
                    .expect("create recording"),
            );
            let tracer = Tracer::new(rec.clone() as Arc<dyn TraceSink>);
            w.actor_mut(pid).member.set_tracer(tracer);
            rec
        })
        .collect()
}

/// The full post-mortem pipeline: form a 5-member group, crash p2,
/// let the survivors reconfigure, then throw the live world away and
/// analyze nothing but the recording files.
#[test]
fn crash_recovery_reconstructs_from_recordings_alone() {
    const N: usize = 5;
    let params = TeamParams::new(N).seed(7);
    let cfg = params.protocol_config();
    let dir = tmp_dir("crash");

    let mut w = team_world(&params);
    let recorders = attach_recorders(&mut w, &cfg, &dir);

    run_until_pred(&mut w, SimTime::from_millis(5_000), |w| all_in_group(w, N))
        .expect("group forms");

    let crash_at = w.now() + Duration::from_millis(5);
    w.crash_at(crash_at, ProcessId(2));
    run_until_pred(&mut w, SimTime::from_millis(10_000), |w| {
        all_in_group(w, N - 1)
    })
    .expect("survivors reconfigure to a 4-member view");

    // Let some failure-free rotation follow the install so the
    // recordings also contain post-recovery decisions.
    w.run_for(cfg.cycle() * 4);
    for rec in &recorders {
        rec.flush();
    }
    drop(w);

    // ---- Offline: only the files from here on. ----
    let recordings: Vec<Recording> = (0..N)
        .map(|i| {
            let r = Recording::load(dir.join(format!("node-{i}.twrec"))).expect("load recording");
            assert_eq!(r.pid, ProcessId(i as u16));
            assert_eq!(r.team, N);
            assert_eq!(r.damage, None, "clean shutdown left damage on node {i}");
            r
        })
        .collect();
    assert!(
        recordings.iter().all(|r| !r.events.is_empty()),
        "every member recorded something"
    );

    let set = TraceSet::new(recordings).expect("5 distinct recordings");
    assert_eq!(set.epsilon, cfg.epsilon, "ε comes from the file headers");
    let a = analyze(&set);

    // The recovery span: p2 suspected, no-decision hops attributed
    // per-survivor, and all four survivors installing the 4-member view.
    let rec_span = a
        .recoveries
        .iter()
        .find(|r| r.suspect == ProcessId(2))
        .expect("recovery span for the crashed member");
    assert!(
        !rec_span.hops.is_empty(),
        "no per-hop attribution in the recovery span"
    );
    assert!(
        rec_span.hops.iter().all(|h| h.cost >= Duration::ZERO),
        "hop costs must be non-negative on the synchronized clock"
    );
    assert_eq!(
        rec_span.installs.len(),
        N - 1,
        "all survivors install the recovered view"
    );
    let total = rec_span.total().expect("completed recovery has a total");

    // §4.2: suspicion → final install within the analytic envelope.
    let envelope = cfg.decision_timeout * 2
        + (cfg.big_d + cfg.delta) * (N as i64 - 2)
        + cfg.tick * 4;
    assert!(
        total <= envelope,
        "recovery took {total}, over the envelope {envelope}"
    );

    // Per-phase latency attribution made it into the histograms.
    for key in [
        "span.recovery.total_us",
        "span.recovery.last_hop_to_install_us",
    ] {
        let h = a
            .latencies
            .histograms
            .get(key)
            .unwrap_or_else(|| panic!("missing latency histogram {key}"));
        assert!(h.count > 0, "{key} recorded no samples");
    }

    // Offline audit: live invariants and cross-node checks all clean.
    assert!(
        a.audits_clean(),
        "offline audit found violations: {:?} / {:?}",
        a.audit,
        a.cross
    );

    // The timeline renders every lane and mentions the recovery.
    let timeline = render_timeline(
        &a.merged,
        a.team,
        TimelineOptions {
            deliveries: false,
            max_rows: 10_000,
        },
    );
    for i in 0..N {
        assert!(timeline.contains(&format!("p{i}")), "lane p{i} missing");
    }
    assert!(
        timeline.contains("suspicion suspect=p2"),
        "timeline does not show the suspicion"
    );
}

/// Torn-tail recovery at the protocol level: truncate one node's file
/// mid-segment (a crash while spilling) and the analysis still runs on
/// the surviving prefix, reporting the damage.
#[test]
fn torn_recording_still_analyzes() {
    const N: usize = 5;
    let params = TeamParams::new(N).seed(11);
    let cfg = params.protocol_config();
    let dir = tmp_dir("torn");

    let mut w = team_world(&params);
    let recorders = attach_recorders(&mut w, &cfg, &dir);
    run_until_pred(&mut w, SimTime::from_millis(5_000), |w| all_in_group(w, N))
        .expect("group forms");
    w.run_for(cfg.cycle() * 8);
    for rec in &recorders {
        rec.flush();
    }
    drop(w);

    // Tear node 3's file: drop the last 5 bytes (mid-segment with
    // overwhelming likelihood; if the cut lands on a boundary the
    // recording is simply clean and shorter, which the assert allows).
    let torn_path = dir.join("node-3.twrec");
    let bytes = std::fs::read(&torn_path).unwrap();
    std::fs::write(&torn_path, &bytes[..bytes.len() - 5]).unwrap();

    let recordings: Vec<Recording> = (0..N)
        .map(|i| Recording::load(dir.join(format!("node-{i}.twrec"))).expect("load"))
        .collect();
    let torn = &recordings[3];
    assert!(
        torn.damage.is_some(),
        "5-byte tear should land mid-segment for this trace"
    );

    let set = TraceSet::new(recordings).expect("recordings still merge");
    let a = analyze(&set);
    assert!(
        a.merged
            .iter()
            .any(|e| matches!(e, TraceEvent::ViewInstalled { .. })),
        "merged stream lost the formation installs"
    );
    // A torn tail loses events, never invents them: the offline audit
    // of a failure-free run must still be clean.
    assert!(
        a.audits_clean(),
        "torn tail broke the offline audit: {:?} / {:?}",
        a.audit,
        a.cross
    );
}
