//! Runtime-checkable protocol invariants.
//!
//! These checkers encode the paper's correctness properties over the logs
//! a [`crate::harness::SimMember`] records — the integration
//! and property tests run them after every scenario, and the bounded
//! schedule explorer (`cargo xtask explore`) runs them at every terminal
//! state it enumerates:
//!
//! * **view agreement** — views with the same id have identical member
//!   sets, and no two different *completed* majority groups (groups
//!   joined by all their members) share a sequence number;
//! * **majority** — every installed view contains a majority of the team;
//! * **unique creator** — at most one decider creates any view seq;
//! * **total-order agreement** — any two members deliver their common
//!   total-ordered updates in the same relative order;
//! * **FIFO** — each member delivers each proposer's updates in
//!   ascending sequence order;
//! * **time-order** — each member delivers time-ordered updates in
//!   non-decreasing send-timestamp order;
//! * **no duplicates** — no member delivers the same update twice.
//!
//! Every checker operates on a plain slice of member logs
//! (`&[&SimMember]`), so any host that can produce logs — the seeded
//! [`World`], the exhaustive explorer, or a test fabricating corrupted
//! logs directly — gets the same verdicts. The `*`-suffixed `_world`
//! wrappers adapt a finished simulation.

use crate::events::Delivery;
use crate::harness::SimMember;
use std::collections::BTreeMap;
use tw_proto::{Ordering, ProcessId, View};
use tw_sim::World;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated: {}", self.0)
    }
}

/// Check every invariant over a finished simulation; returns all
/// violations found (empty = clean).
pub fn check_all(world: &World<SimMember>) -> Vec<Violation> {
    check_all_members(&members_of(world))
}

/// Check every invariant over a slice of member logs (the member at
/// index `i` must be process `i`; the slice length is the team size).
pub fn check_all_members(members: &[&SimMember]) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(check_view_agreement(members));
    v.extend(check_majority(members));
    v.extend(check_total_order_agreement(members));
    v.extend(check_fifo(members));
    v.extend(check_time_order(members));
    v.extend(check_no_duplicate_deliveries(members));
    v
}

/// Assert-style wrapper for tests: panics with the violations.
pub fn assert_all(world: &World<SimMember>) {
    let v = check_all(world);
    assert!(v.is_empty(), "protocol invariants violated: {v:#?}");
}

/// Collect the per-process member logs of a finished simulation.
pub fn members_of(world: &World<SimMember>) -> Vec<&SimMember> {
    (0..world.len())
        .map(|i| world.actor(ProcessId(i as u16)))
        .collect()
}

fn views_of<'a>(members: &'a [&SimMember], p: ProcessId) -> impl Iterator<Item = &'a View> {
    members[p.rank()].views.iter().map(|(_, v)| v)
}

/// Majority-agreement on views (paper §3): the protocol provides a
/// sequence of *completed* majority groups — groups joined by **all**
/// their members — and all members agree on that sequence. During
/// unstable periods a decider may create a group whose first decision is
/// lost before the other members join it; such a never-completed group is
/// explicitly outside the agreement guarantee ("there may be some limited
/// divergences between the histories seen by the members of completed
/// majority groups and other team members").
///
/// Checked here: (a) views with the same id always have identical member
/// sets, and (b) no two *different completed* views share a sequence
/// number.
pub fn check_view_agreement(members: &[&SimMember]) -> Vec<Violation> {
    let mut out = Vec::new();
    // (a) id ⇒ member set.
    let mut by_id: BTreeMap<tw_proto::ViewId, &View> = BTreeMap::new();
    for i in 0..members.len() {
        let p = ProcessId(i as u16);
        for v in views_of(members, p) {
            match by_id.get(&v.id) {
                Some(prev) if *prev != v => out.push(Violation(format!(
                    "view id {} has two member sets: {} vs {} (seen at {})",
                    v.id, prev, v, p
                ))),
                _ => {
                    by_id.insert(v.id, v);
                }
            }
        }
    }
    // (b) at most one completed view per seq.
    let installed_by: Vec<std::collections::BTreeSet<tw_proto::ViewId>> = (0..members.len())
        .map(|i| views_of(members, ProcessId(i as u16)).map(|v| v.id).collect())
        .collect();
    let mut completed_by_seq: BTreeMap<u64, &View> = BTreeMap::new();
    for v in by_id.values() {
        let completed = v
            .members
            .iter()
            .all(|m| installed_by[m.rank()].contains(&v.id));
        if !completed {
            continue;
        }
        match completed_by_seq.get(&v.id.seq) {
            Some(prev) if **prev != **v => out.push(Violation(format!(
                "two completed majority groups at seq {}: {} vs {}",
                v.id.seq, prev, v
            ))),
            _ => {
                completed_by_seq.insert(v.id.seq, v);
            }
        }
    }
    out
}

/// Every installed view contains a majority of the team.
pub fn check_majority(members: &[&SimMember]) -> Vec<Violation> {
    let n = members.len();
    let mut out = Vec::new();
    for i in 0..n {
        let p = ProcessId(i as u16);
        for v in views_of(members, p) {
            if !v.is_majority_of(n) {
                out.push(Violation(format!(
                    "{} installed non-majority view {} (team {})",
                    p, v, n
                )));
            }
        }
    }
    out
}

/// The set of *completed* view ids: views installed by every one of
/// their members (the scope of the paper's majority-agreement
/// guarantees).
pub fn completed_view_ids(members: &[&SimMember]) -> std::collections::BTreeSet<tw_proto::ViewId> {
    let installed_by: Vec<std::collections::BTreeSet<tw_proto::ViewId>> = (0..members.len())
        .map(|i| views_of(members, ProcessId(i as u16)).map(|v| v.id).collect())
        .collect();
    let mut out = std::collections::BTreeSet::new();
    for i in 0..members.len() {
        for v in views_of(members, ProcessId(i as u16)) {
            if v.members
                .iter()
                .all(|m| installed_by[m.rank()].contains(&v.id))
            {
                out.insert(v.id);
            }
        }
    }
    out
}

/// Total-order agreement, scoped to the paper's §3 guarantee: the
/// members of each **completed** majority group agree on the order of
/// the total-ordered updates they delivered *while in that group*. A
/// member that delivered inside a group the others never completed — or
/// that was excluded while a new lineage re-ordered in-flight updates —
/// is explicitly outside the guarantee ("limited divergences between the
/// histories seen by the members of completed majority groups and other
/// team members"); the application layer reconciles such members through
/// the join-time state transfer.
pub fn check_total_order_agreement(members: &[&SimMember]) -> Vec<Violation> {
    let completed = completed_view_ids(members);
    // Per member: view-id → ordered list of total deliveries in it.
    let per_member: Vec<BTreeMap<tw_proto::ViewId, Vec<&Delivery>>> = members
        .iter()
        .map(|a| {
            let mut m: BTreeMap<tw_proto::ViewId, Vec<&Delivery>> = BTreeMap::new();
            for ((_, d), vid) in a.deliveries.iter().zip(&a.delivery_views) {
                if d.semantics.ordering == Ordering::Total && completed.contains(vid) {
                    m.entry(*vid).or_default().push(d);
                }
            }
            m
        })
        .collect();
    let mut out = Vec::new();
    for vid in &completed {
        for a in 0..members.len() {
            let Some(da) = per_member[a].get(vid) else {
                continue;
            };
            for (b, pm) in per_member.iter().enumerate().skip(a + 1) {
                let Some(db) = pm.get(vid) else { continue };
                let pos_b: BTreeMap<_, _> =
                    db.iter().enumerate().map(|(i, d)| (d.id, i)).collect();
                let common: Vec<_> = da
                    .iter()
                    .filter_map(|d| pos_b.get(&d.id).map(|&i| (d.id, i)))
                    .collect();
                for w in common.windows(2) {
                    if w[0].1 >= w[1].1 {
                        out.push(Violation(format!(
                            "total order disagreement in {} between p{a} and p{b}: {} vs {}",
                            vid, w[0].0, w[1].0
                        )));
                    }
                }
            }
        }
    }
    out
}

/// Split a member's delivery log into continuous lives (a crash-recovery
/// wipes volatile state; the fresh incarnation's log is a new life whose
/// consistency is re-established by the join-time state transfer).
fn lives_of<'a>(members: &'a [&SimMember], p: ProcessId) -> Vec<Vec<&'a Delivery>> {
    let a = members[p.rank()];
    let mut restarts: Vec<tw_proto::HwTime> = a
        .leaves
        .iter()
        .filter(|(_, r)| matches!(r, crate::events::LeaveReason::Startup))
        .map(|(t, _)| *t)
        .collect();
    restarts.sort();
    let mut lives = vec![Vec::new()];
    let mut next_restart = restarts.iter().skip(1).peekable(); // skip initial start
    for (t, d) in &a.deliveries {
        while next_restart.peek().is_some_and(|r| **r <= *t) {
            next_restart.next();
            lives.push(Vec::new());
        }
        lives.last_mut().expect("non-empty").push(d);
    }
    lives
}

/// Each member delivers each proposer's updates in ascending seq order,
/// within each of its continuous lives.
pub fn check_fifo(members: &[&SimMember]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..members.len() {
        let p = ProcessId(i as u16);
        for life in lives_of(members, p) {
            let mut last: BTreeMap<ProcessId, u64> = BTreeMap::new();
            for d in life {
                if let Some(&prev) = last.get(&d.id.proposer) {
                    if d.id.seq <= prev {
                        out.push(Violation(format!(
                            "{} delivered {} after seq {} of the same proposer",
                            p, d.id, prev
                        )));
                    }
                }
                last.insert(d.id.proposer, d.id.seq);
            }
        }
    }
    out
}

/// Time-ordered deliveries occur in non-decreasing send-timestamp order
/// within each continuous life.
pub fn check_time_order(members: &[&SimMember]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..members.len() {
        let p = ProcessId(i as u16);
        for life in lives_of(members, p) {
            let mut last = None;
            for d in life {
                if d.semantics.ordering != Ordering::Time {
                    continue;
                }
                if let Some(prev) = last {
                    if d.send_ts < prev {
                        out.push(Violation(format!(
                            "{} delivered time-ordered {} with ts {} after ts {}",
                            p, d.id, d.send_ts, prev
                        )));
                    }
                }
                last = Some(d.send_ts);
            }
        }
    }
    out
}

/// No member delivers any update twice within one continuous life
/// (after a crash, the fresh incarnation's state is rebuilt from the
/// transferred snapshot, so a re-delivery across lives is not a
/// duplicate application).
pub fn check_no_duplicate_deliveries(members: &[&SimMember]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..members.len() {
        let p = ProcessId(i as u16);
        for life in lives_of(members, p) {
            let mut seen = std::collections::BTreeSet::new();
            for d in life {
                if !seen.insert(d.id) {
                    out.push(Violation(format!("{} delivered {} twice", p, d.id)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{all_in_group, run_until_pred, team_world, TeamParams};
    use tw_sim::SimTime;

    #[test]
    fn clean_failure_free_run_passes_all_checks() {
        let mut w = team_world(&TeamParams::new(3));
        run_until_pred(&mut w, SimTime::from_secs(10), |w| all_in_group(w, 3)).unwrap();
        w.run_for(tw_proto::Duration::from_secs(5));
        assert_all(&w);
    }

    #[test]
    fn world_and_member_slice_paths_agree() {
        let mut w = team_world(&TeamParams::new(3));
        run_until_pred(&mut w, SimTime::from_secs(10), |w| all_in_group(w, 3)).unwrap();
        assert_eq!(check_all(&w), check_all_members(&members_of(&w)));
    }

    #[test]
    fn violation_display() {
        let v = Violation("boom".into());
        assert!(v.to_string().contains("boom"));
    }
}
