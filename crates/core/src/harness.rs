//! Hosting the protocol on the deterministic simulator.
//!
//! [`SimMember`] adapts a [`Member`] to [`tw_sim::Actor`], recording
//! everything experiments need (deliveries, view installations, leave
//! events) with hardware timestamps. [`team_world`] builds a whole team
//! in one call; the integration tests and every experiment binary go
//! through it.

use crate::config::Config;
use crate::events::{Action, Delivery, LeaveReason};
use crate::member::Member;
use tw_proto::{Duration, HwTime, Msg, ProcessId, View};
use tw_sim::{Actor, ClockConfig, Ctx, LinkModel, World, WorldConfig};

/// Timer token for the fixed-period protocol tick.
const TICK: u64 = 1;
/// Timer token for the clock-synchronization resync tick.
const CLOCK_TICK: u64 = 2;

/// What the application hook is called with.
#[derive(Debug)]
pub enum AppEvent<'a> {
    /// An update was delivered (apply it).
    Deliver(&'a Delivery),
    /// A join-time snapshot arrived (replace the application state).
    InstallSnapshot(&'a bytes::Bytes),
}

/// Application hook: invoked synchronously on every delivery and on
/// join-time snapshot installation; a `Some(snapshot)` return value
/// becomes the member's fresh application snapshot (shipped to joiners
/// in state transfers), keeping snapshot and delivery stream consistent
/// by construction.
pub type DeliveryHook = Box<dyn FnMut(AppEvent<'_>) -> Option<bytes::Bytes>>;

/// A [`Member`] wired to the simulator, with an experiment log.
pub struct SimMember {
    /// The protocol state machine.
    pub member: Member,
    /// Every delivered update, with the local hardware receive time.
    pub deliveries: Vec<(HwTime, Delivery)>,
    /// The view this member was in at each delivery (aligned with
    /// `deliveries`) — lets checkers scope agreement to *completed*
    /// majority groups, the paper's §3 guarantee.
    pub delivery_views: Vec<tw_proto::ViewId>,
    /// Every installed view, with the local hardware time.
    pub views: Vec<(HwTime, View)>,
    /// Every departure to join state.
    pub leaves: Vec<(HwTime, LeaveReason)>,
    /// Optional application layered on the delivery stream.
    pub on_deliver: Option<DeliveryHook>,
}

/// Manual impl: the exhaustive schedule explorer (`tw_sim::explore`)
/// forks member state at every branch point, but [`DeliveryHook`] is an
/// arbitrary `FnMut` and not clonable — forks carry the full protocol
/// state and logs with `on_deliver` reset to `None`. Explored scenarios
/// therefore exercise the protocol layer, not application hooks.
impl Clone for SimMember {
    fn clone(&self) -> Self {
        SimMember {
            member: self.member.clone(),
            deliveries: self.deliveries.clone(),
            delivery_views: self.delivery_views.clone(),
            views: self.views.clone(),
            leaves: self.leaves.clone(),
            on_deliver: None,
        }
    }
}

impl SimMember {
    /// Wrap a member.
    pub fn new(member: Member) -> Self {
        SimMember {
            member,
            deliveries: Vec::new(),
            delivery_views: Vec::new(),
            views: Vec::new(),
            leaves: Vec::new(),
            on_deliver: None,
        }
    }

    /// Attach an application hook (see [`DeliveryHook`]).
    pub fn with_hook(mut self, hook: DeliveryHook) -> Self {
        self.on_deliver = Some(hook);
        self
    }

    pub(crate) fn apply(&mut self, actions: Vec<Action>, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now_hw();
        for a in actions {
            match a {
                Action::Broadcast(m) => ctx.broadcast(m),
                Action::Send(to, m) => ctx.send(to, m),
                Action::ScheduleClockTick(d) => {
                    ctx.set_timer(d, CLOCK_TICK);
                }
                Action::Deliver(d) => {
                    if let Some(hook) = &mut self.on_deliver {
                        if let Some(snapshot) = hook(AppEvent::Deliver(&d)) {
                            self.member.set_app_snapshot(snapshot);
                        }
                    }
                    self.delivery_views.push(self.member.view().id);
                    self.deliveries.push((now, d));
                }
                Action::InstallAppState(b) => {
                    if let Some(hook) = &mut self.on_deliver {
                        if let Some(snapshot) = hook(AppEvent::InstallSnapshot(&b)) {
                            self.member.set_app_snapshot(snapshot);
                        }
                    }
                }
                Action::InstallView(v) => self.views.push((now, v)),
                Action::LeftGroup { reason } => self.leaves.push((now, reason)),
            }
        }
    }

    pub(crate) fn arm_tick(&self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(self.member.config().tick, TICK);
    }
}

impl Actor for SimMember {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let actions = self.member.on_start(ctx.now_hw());
        self.apply(actions, ctx);
        self.arm_tick(ctx);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let actions = self.member.on_recover(ctx.now_hw());
        self.apply(actions, ctx);
        self.arm_tick(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, msg: Msg) {
        let actions = self.member.on_message(ctx.now_hw(), from, msg);
        self.apply(actions, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match token {
            TICK => {
                let actions = self.member.on_tick(ctx.now_hw());
                self.apply(actions, ctx);
                self.arm_tick(ctx);
            }
            CLOCK_TICK => {
                let actions = self.member.on_clock_tick(ctx.now_hw());
                self.apply(actions, ctx);
            }
            _ => {}
        }
    }
}

/// Parameters for building a simulated team.
#[derive(Debug, Clone)]
pub struct TeamParams {
    /// Team size.
    pub n: usize,
    /// One-way timeout δ.
    pub delta: Duration,
    /// Simulation seed.
    pub seed: u64,
    /// Network model (its `max_timely_delay()` should be ≤ δ).
    pub link: LinkModel,
    /// Hardware clock drift magnitude; process `i` gets
    /// `±drift_ppm` alternating, so clocks genuinely diverge.
    pub drift_ppm: f64, // tw-lint: allow(float-state) -- experiment knob for the simulated clock environment, not protocol state
    /// Override the derived protocol config (for ablations).
    pub config: Option<Config>,
}

impl TeamParams {
    /// Defaults: δ = 10 ms LAN, ±50 ppm drift.
    pub fn new(n: usize) -> Self {
        TeamParams {
            n,
            delta: Duration::from_millis(10),
            seed: 42,
            link: LinkModel::default(),
            drift_ppm: 50.0,
            config: None,
        }
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the link model.
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// The protocol configuration this team will run.
    pub fn protocol_config(&self) -> Config {
        self.config
            .unwrap_or_else(|| Config::for_team(self.n, self.delta))
    }
}

/// Build a world with `params.n` members, each running the full protocol
/// stack. Call `world.run_until(..)` to execute.
pub fn team_world(params: &TeamParams) -> World<SimMember> {
    let cfg = params.protocol_config();
    let mut world = World::new(WorldConfig {
        seed: params.seed,
        link: params.link,
        sched_jitter: Duration::ZERO,
        trace: false,
    });
    for i in 0..params.n {
        let pid = ProcessId(i as u16);
        let member = Member::new_unchecked(pid, cfg);
        let drift = if i % 2 == 0 {
            params.drift_ppm
        } else {
            -params.drift_ppm
        };
        world.add_process(SimMember::new(member), ClockConfig::with_drift_ppm(drift));
    }
    world
}

/// Step the world until `pred` holds or `deadline` passes. Returns the
/// time the predicate first held.
pub fn run_until_pred<F>(
    world: &mut World<SimMember>,
    deadline: tw_sim::SimTime,
    mut pred: F,
) -> Option<tw_sim::SimTime>
where
    F: FnMut(&World<SimMember>) -> bool,
{
    loop {
        if pred(world) {
            return Some(world.now());
        }
        if world.now() >= deadline {
            return None;
        }
        if !world.step() {
            return if pred(world) { Some(world.now()) } else { None };
        }
    }
}

/// Convenience predicate: every live member is in failure-free state with
/// a view of exactly `members` size.
pub fn all_in_group(world: &World<SimMember>, expect_members: usize) -> bool {
    (0..world.len()).all(|i| {
        let p = ProcessId(i as u16);
        if world.status(p) != tw_sim::ProcessStatus::Up {
            return true;
        }
        let m = &world.actor(p).member;
        m.state() == crate::member::CreatorState::FailureFree && m.view().len() == expect_members
    })
}

/// Convenience predicate: all live members that are in a group share the
/// same view id, and at least `min_members` are in a group.
pub fn group_agreed(world: &World<SimMember>, min_members: usize) -> bool {
    let mut ids = std::collections::BTreeSet::new();
    let mut count = 0;
    for i in 0..world.len() {
        let p = ProcessId(i as u16);
        if world.status(p) != tw_sim::ProcessStatus::Up {
            continue;
        }
        let m = &world.actor(p).member;
        if m.state() == crate::member::CreatorState::FailureFree && !m.view().is_empty() {
            ids.insert(m.view().id);
            count += 1;
        }
    }
    ids.len() == 1 && count >= min_members
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_sim::SimTime;

    #[test]
    fn team_world_builds_n_processes() {
        let w = team_world(&TeamParams::new(3));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn initial_group_forms_on_simulator() {
        let params = TeamParams::new(3);
        let mut w = team_world(&params);
        let formed = run_until_pred(&mut w, SimTime::from_secs(10), |w| all_in_group(w, 3));
        assert!(formed.is_some(), "3-team never formed a group");
        // All three installed the same view.
        let v0 = w.actor(ProcessId(0)).member.view().clone();
        for i in 1..3u16 {
            assert_eq!(w.actor(ProcessId(i)).member.view(), &v0);
        }
        assert!(v0.is_majority_of(3));
    }

    #[test]
    fn formation_time_is_a_few_cycles() {
        let params = TeamParams::new(5);
        let cfg = params.protocol_config();
        let mut w = team_world(&params);
        let formed =
            run_until_pred(&mut w, SimTime::from_secs(30), |w| all_in_group(w, 5)).unwrap();
        // Formation should take at most ~4 cycles (clock sync + 2 join
        // rounds + settle).
        assert!(
            formed.as_micros() <= cfg.cycle().as_micros() * 5,
            "took {formed} (cycle = {})",
            cfg.cycle()
        );
    }

    #[test]
    fn decider_rotation_keeps_running_failure_free() {
        let params = TeamParams::new(3);
        let mut w = team_world(&params);
        run_until_pred(&mut w, SimTime::from_secs(10), |w| all_in_group(w, 3)).unwrap();
        w.reset_stats();
        w.run_for(Duration::from_secs(10));
        let s = w.stats();
        assert!(s.kind("decision").sends > 50, "rotation stalled");
        assert_eq!(s.kind("no-decision").sends, 0);
        assert_eq!(s.kind("reconfig").sends, 0);
        assert_eq!(s.kind("join").sends, 0);
        // Everyone is still in the same group.
        assert!(all_in_group(&w, 3));
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let params = TeamParams::new(3).seed(seed);
            let mut w = team_world(&params);
            w.run_until(SimTime::from_secs(8));
            (
                w.stats().kind("decision").sends,
                w.actor(ProcessId(0)).member.views_installed(),
            )
        };
        assert_eq!(run(7), run(7));
    }
}
