//! The failure detector: expected-sender surveillance and alive-lists.
//!
//! The paper's detector (§4.2) is an attendance-list scheme proven
//! message-minimal \[6]: during failure-free periods *nothing extra* is
//! sent — the detector merely checks that the decider rotation keeps
//! producing control messages. It maintains:
//!
//! * an **alive-list** — every team member from which a control message
//!   arrived within the last `N` slots (plus the owner itself); and
//! * an **expected sender** — after accepting a control message with
//!   timestamp `ts` from the rotation, the next member in the ring must
//!   produce one with a greater timestamp before `ts + timeout`, else it
//!   is *suspected* and the group creator is informed.
//!
//! Both are unreliable by design: alive-lists may contain crashed
//! processes or miss live ones, and different detectors may disagree —
//! agreement is the group creator's job, not the detector's.

use std::collections::BTreeMap;
use tw_proto::{AliveList, Duration, ProcessId, SyncTime};

/// Tracks who has been heard from, and rejects stale/duplicate control
/// messages by send timestamp (paper §4.2: "we assume that processes
/// reject duplicate or old control messages").
#[derive(Debug, Clone, Default)]
pub struct AliveTracker {
    last_heard: BTreeMap<ProcessId, SyncTime>,
}

impl AliveTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a control message from `p` with send timestamp `ts` if it
    /// is fresher than anything seen from `p`. Returns false (reject) for
    /// duplicates and stale messages.
    pub fn record_if_fresh(&mut self, p: ProcessId, ts: SyncTime) -> bool {
        match self.last_heard.get(&p) {
            Some(&prev) if ts <= prev => false,
            _ => {
                self.last_heard.insert(p, ts);
                true
            }
        }
    }

    /// Last control-message timestamp heard from `p`.
    pub fn last_heard(&self, p: ProcessId) -> Option<SyncTime> {
        self.last_heard.get(&p).copied()
    }

    /// The alive-list at `now`: `me` plus every process heard from within
    /// `window` (the member passes `N` slot lengths, per §4.2).
    pub fn alive_list(&self, me: ProcessId, now: SyncTime, window: Duration) -> AliveList {
        let mut list = AliveList::EMPTY;
        list.set(me);
        for (&p, &ts) in &self.last_heard {
            if now - ts <= window {
                list.set(p);
            }
        }
        list
    }

    /// Forget everything (crash recovery).
    pub fn clear(&mut self) {
        self.last_heard.clear();
    }
}

/// The expected-sender watchdog.
#[derive(Debug, Clone, Default)]
pub struct ExpectedSender {
    expected: Option<ProcessId>,
    last_ts: SyncTime,
    deadline: SyncTime,
}

impl ExpectedSender {
    /// No expectation (join state, or between groups).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm: after accepting a control message with timestamp `base_ts`,
    /// expect the next one from `next` with a greater timestamp before
    /// `base_ts + timeout`.
    pub fn arm(&mut self, next: ProcessId, base_ts: SyncTime, timeout: Duration) {
        self.expected = Some(next);
        self.last_ts = base_ts;
        self.deadline = base_ts + timeout;
    }

    /// Stop watching.
    pub fn disarm(&mut self) {
        self.expected = None;
    }

    /// Who we are waiting for, if anyone.
    pub fn expected(&self) -> Option<ProcessId> {
        self.expected
    }

    /// Timestamp of the last accepted control message in the rotation.
    pub fn last_ts(&self) -> SyncTime {
        self.last_ts
    }

    /// The current deadline.
    pub fn deadline(&self) -> SyncTime {
        self.deadline
    }

    /// Would a control message from `p` with timestamp `ts` satisfy the
    /// current expectation? (right sender, fresher timestamp)
    pub fn satisfied_by(&self, p: ProcessId, ts: SyncTime) -> bool {
        self.expected == Some(p) && ts > self.last_ts
    }

    /// If the deadline has passed, return the suspect (the expected
    /// sender) — a *timeout failure* in the paper's terms.
    pub fn timed_out(&self, now: SyncTime) -> Option<ProcessId> {
        match self.expected {
            Some(p) if now > self.deadline => Some(p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_stale() {
        let mut t = AliveTracker::new();
        assert!(t.record_if_fresh(ProcessId(1), SyncTime(10)));
        assert!(!t.record_if_fresh(ProcessId(1), SyncTime(10)), "duplicate");
        assert!(!t.record_if_fresh(ProcessId(1), SyncTime(5)), "stale");
        assert!(t.record_if_fresh(ProcessId(1), SyncTime(11)));
        assert_eq!(t.last_heard(ProcessId(1)), Some(SyncTime(11)));
    }

    #[test]
    fn alive_list_windows_out_old_entries() {
        let mut t = AliveTracker::new();
        t.record_if_fresh(ProcessId(1), SyncTime(0));
        t.record_if_fresh(ProcessId(2), SyncTime(90));
        let list = t.alive_list(ProcessId(0), SyncTime(100), Duration(50));
        assert!(list.contains(ProcessId(0)), "self always included");
        assert!(!list.contains(ProcessId(1)), "too old");
        assert!(list.contains(ProcessId(2)));
    }

    #[test]
    fn clear_resets() {
        let mut t = AliveTracker::new();
        t.record_if_fresh(ProcessId(1), SyncTime(5));
        t.clear();
        assert_eq!(t.last_heard(ProcessId(1)), None);
        // After clear, older timestamps are fresh again (new incarnation).
        assert!(t.record_if_fresh(ProcessId(1), SyncTime(3)));
    }

    #[test]
    fn watchdog_times_out_only_past_deadline() {
        let mut w = ExpectedSender::new();
        w.arm(ProcessId(2), SyncTime(100), Duration(50));
        assert_eq!(w.timed_out(SyncTime(150)), None, "at deadline: not yet");
        assert_eq!(w.timed_out(SyncTime(151)), Some(ProcessId(2)));
        w.disarm();
        assert_eq!(w.timed_out(SyncTime(1_000)), None);
    }

    #[test]
    fn satisfaction_needs_sender_and_fresh_ts() {
        let mut w = ExpectedSender::new();
        w.arm(ProcessId(2), SyncTime(100), Duration(50));
        assert!(w.satisfied_by(ProcessId(2), SyncTime(120)));
        assert!(!w.satisfied_by(ProcessId(1), SyncTime(120)), "wrong sender");
        assert!(!w.satisfied_by(ProcessId(2), SyncTime(100)), "not fresher");
    }

    #[test]
    fn rearming_moves_the_deadline() {
        let mut w = ExpectedSender::new();
        w.arm(ProcessId(1), SyncTime(0), Duration(50));
        w.arm(ProcessId(2), SyncTime(40), Duration(50));
        assert_eq!(w.timed_out(SyncTime(60)), None);
        assert_eq!(w.expected(), Some(ProcessId(2)));
        assert_eq!(w.timed_out(SyncTime(91)), Some(ProcessId(2)));
    }
}
