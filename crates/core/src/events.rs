//! Inputs, outputs and observations of the protocol state machine.
//!
//! [`Member`](crate::member::Member) is sans-I/O: hosts feed it events
//! and apply the returned [`Action`]s. Everything a host or an experiment
//! needs to observe is surfaced here, not read out of private state.

use bytes::Bytes;
use tw_proto::{Duration, Msg, Ordinal, ProcessId, ProposalId, Semantics, SyncTime, View};

/// An instruction from the protocol to its host.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Broadcast a message to all other team members.
    Broadcast(Msg),
    /// Send a message to one team member.
    Send(ProcessId, Msg),
    /// Hand an update to the application (all delivery conditions hold).
    Deliver(Delivery),
    /// A new group view was installed.
    InstallView(View),
    /// (Re-)arm the clock-synchronization resync tick after this much
    /// hardware time. The protocol tick is fixed-period and managed by
    /// the host directly.
    ScheduleClockTick(Duration),
    /// The member left the group (lost synchronization or was excluded)
    /// and returned to join state.
    LeftGroup {
        /// Why it left.
        reason: LeaveReason,
    },
    /// A join-time state transfer arrived: the application must replace
    /// its state with this snapshot before applying further deliveries.
    InstallAppState(Bytes),
}

/// Why a member dropped back to join state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveReason {
    /// A new group formed without this member.
    Excluded,
    /// The fail-aware clock reported loss of synchronization.
    LostClockSync,
    /// The member just started or recovered from a crash.
    Startup,
}

/// An update delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Which proposal this is.
    pub id: ProposalId,
    /// The ordinal it was ordered with, when known at delivery time
    /// (unordered updates may legally deliver before ordering — these are
    /// the paper's `dpd` entries).
    pub ordinal: Option<Ordinal>,
    /// The semantics it was broadcast with.
    pub semantics: Semantics,
    /// Its synchronized send timestamp.
    pub send_ts: SyncTime,
    /// The opaque application payload.
    pub payload: Bytes,
}

/// A point-in-time observation of a member, used by experiments, traces
/// and invariant checkers.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberObservation {
    /// The member.
    pub pid: ProcessId,
    /// Synchronized time of the observation (`None` if unsynchronized).
    pub now: Option<SyncTime>,
    /// Its current creator state, as a static label.
    pub state: &'static str,
    /// Its current view.
    pub view: View,
    /// Whether it currently holds the decider role.
    pub is_decider: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_proto::ViewId;

    #[test]
    fn delivery_equality_ignores_nothing() {
        let d = Delivery {
            id: ProposalId::new(ProcessId(0), 1),
            ordinal: Some(Ordinal(4)),
            semantics: Semantics::TOTAL_STRONG,
            send_ts: SyncTime(9),
            payload: Bytes::from_static(b"x"),
        };
        assert_eq!(d.clone(), d);
    }

    #[test]
    fn action_variants_compare() {
        let v = View::new(ViewId::new(1, ProcessId(0)), [ProcessId(0)]);
        assert_eq!(Action::InstallView(v.clone()), Action::InstallView(v));
        assert_ne!(
            Action::LeftGroup {
                reason: LeaveReason::Excluded
            },
            Action::LeftGroup {
                reason: LeaveReason::Startup
            }
        );
    }
}
