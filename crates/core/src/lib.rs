//! # timewheel — the timewheel group membership protocol
//!
//! A Rust implementation of *The Timewheel Group Membership Protocol*
//! (Mishra, Fetzer, Cristian — IPPS 1998) together with the timewheel
//! atomic broadcast protocol it is interwoven with, for the **timed
//! asynchronous distributed system model**.
//!
//! ## What the protocol does
//!
//! A fixed *team* of `N` processes runs a replicated service. The
//! membership protocol maintains a consistent, system-wide *group* (view)
//! of the members currently exhibiting synchronous behaviour, with the
//! properties (paper §3):
//!
//! 1. a process that is ∆-stable for long enough has an up-to-date group;
//! 2. any two up-to-date groups at the same time are identical;
//! 3. a ∆-stable process is included in every up-to-date group;
//! 4. a process whose group has been out of date for ∆ time units is
//!    excluded from all up-to-date groups;
//! 5. every up-to-date group contains a majority of the team.
//!
//! ## How (the short version)
//!
//! * **Failure-free periods cost nothing.** The broadcast protocol's
//!   rotating *decider* sends a decision message at least every `D` time
//!   units; the failure detector simply watches that rotation. No
//!   membership messages flow at all.
//! * **Single failures are fast.** If the expected decider falls silent,
//!   a ring of *no-decision* messages removes it: each surviving member
//!   concurs in turn; the suspect's predecessor installs the new group.
//!   If some member *has* the allegedly-missed decision (false alarm), it
//!   enters *wrong-suspicion* state and rescues the group with no
//!   membership change.
//! * **Multiple failures fall back to time slots.** Synchronized clocks
//!   (from [`tw_clock`]) divide time into cycles of `N` slots; members
//!   exchange *reconfiguration* messages in their slots and the member
//!   with the freshest decision timestamp, seconded by a majority with
//!   identical reconfiguration lists, forms the new group.
//! * **Joins use the same slots**: joining processes send *join* messages
//!   once per own slot; the initial group forms when a majority agree on
//!   identical join lists.
//!
//! ## Crate layout
//!
//! The protocol core is **sans-I/O**: [`Member`] consumes timestamped
//! inputs (messages, ticks, client proposals) and returns [`Action`]s.
//! Adapters host it anywhere; [`harness`] runs whole teams on the
//! deterministic simulator from [`tw_sim`], which is what the test-suite
//! and the experiment harness use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffers;
pub mod config;
pub mod delivery;
pub mod detector;
pub mod events;
pub mod explore;
pub mod harness;
pub mod invariants;
pub mod member;
pub mod undeliverable;

pub use config::Config;
pub use events::{Action, Delivery, LeaveReason, MemberObservation};
pub use member::{CreatorState, Member, ProposeError};

/// Commonly used items.
pub mod prelude {
    pub use crate::config::Config;
    pub use crate::events::{Action, Delivery};
    pub use crate::harness::{team_world, SimMember, TeamParams};
    pub use crate::member::{CreatorState, Member};
    pub use tw_proto::prelude::*;
}
