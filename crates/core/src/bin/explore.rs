//! Exhaustive small-scope schedule explorer CLI.
//!
//! Invoked as `cargo xtask explore [flags]`. Enumerates every schedule
//! (delivery interleavings × crash placements × omission placements) of
//! the standard scenarios within explicit budgets, running the paper's
//! invariants at every terminal state. Exits non-zero on any violation
//! (each reported with its full schedule) — and the `--broken-fixture`
//! mode inverts that, proving the pipeline can fail at all.

use std::process::ExitCode;
use timewheel::explore::{
    run_broken_fixture, run_scenario, scenario, Budgets, Scenario, SCENARIOS,
};
use tw_sim::explore::ExploreReport;

const USAGE: &str = "\
explore — exhaustive small-scope schedule exploration

  --members N        team size for all scenarios (default: per-scenario, 3)
  --faults N         crash budget override (default: per-scenario)
  --drops N          omission budget override (default: per-scenario)
  --scenario NAME    run one scenario: reconfiguration | single-failure | false-alarm
                     (default: all three)
  --deliveries N     delivery budget per schedule (default 4)
  --timer-fires N    timer fires per process per schedule (default 1)
  --proposals N      updates proposed by p0 (default 1)
  --max-schedules N  schedule cap per scenario (default 2000000)
  --no-dpor          exact enumeration (no sleep-set reduction)
  --broken-fixture   run the deliberately-broken actor; exit 0 iff a
                     violation IS reported (pipeline self-test)
";

fn parse_flag(args: &[String], i: &mut usize, name: &str) -> Result<Option<String>, String> {
    if args[*i] != name {
        return Ok(None);
    }
    *i += 1;
    match args.get(*i) {
        Some(v) => {
            *i += 1;
            Ok(Some(v.clone()))
        }
        None => Err(format!("{name} needs a value")),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budgets = Budgets::default();
    let mut members: Option<usize> = None;
    let mut faults: Option<usize> = None;
    let mut drops: Option<usize> = None;
    let mut only: Option<String> = None;
    let mut broken = false;

    let mut i = 0;
    while i < args.len() {
        let bad_num = |n: &str, v: &String| format!("{n}: not a number: {v}");
        if let Some(v) = parse_flag(&args, &mut i, "--members")? {
            members = Some(v.parse().map_err(|_| bad_num("--members", &v))?);
        } else if let Some(v) = parse_flag(&args, &mut i, "--faults")? {
            faults = Some(v.parse().map_err(|_| bad_num("--faults", &v))?);
        } else if let Some(v) = parse_flag(&args, &mut i, "--drops")? {
            drops = Some(v.parse().map_err(|_| bad_num("--drops", &v))?);
        } else if let Some(v) = parse_flag(&args, &mut i, "--scenario")? {
            only = Some(v);
        } else if let Some(v) = parse_flag(&args, &mut i, "--deliveries")? {
            budgets.deliveries = v.parse().map_err(|_| bad_num("--deliveries", &v))?;
        } else if let Some(v) = parse_flag(&args, &mut i, "--timer-fires")? {
            budgets.timer_fires = v.parse().map_err(|_| bad_num("--timer-fires", &v))?;
        } else if let Some(v) = parse_flag(&args, &mut i, "--proposals")? {
            budgets.proposals = v.parse().map_err(|_| bad_num("--proposals", &v))?;
        } else if let Some(v) = parse_flag(&args, &mut i, "--max-schedules")? {
            budgets.max_schedules = v.parse().map_err(|_| bad_num("--max-schedules", &v))?;
        } else if args[i] == "--no-dpor" {
            budgets.dpor = false;
            i += 1;
        } else if args[i] == "--broken-fixture" {
            broken = true;
            i += 1;
        } else if args[i] == "--help" || args[i] == "-h" {
            println!("{USAGE}");
            return Ok(true);
        } else {
            return Err(format!("unknown flag `{}`\n\n{USAGE}", args[i]));
        }
    }

    if broken {
        let rep = run_broken_fixture(&budgets);
        report("broken-fixture", &rep);
        return if rep.clean() {
            Err("broken fixture explored clean — the checking pipeline is not catching bugs".into())
        } else {
            println!("broken fixture correctly caught — pipeline can fail, green runs mean something");
            Ok(true)
        };
    }

    let selected: Vec<Scenario> = match &only {
        Some(name) => {
            let sc = scenario(name)
                .ok_or_else(|| format!("unknown scenario `{name}` (see --help)"))?;
            vec![sc.clone()]
        }
        None => SCENARIOS.to_vec(),
    };

    let mut all_clean = true;
    for mut sc in selected {
        if let Some(n) = members {
            sc.members = n;
        }
        if let Some(f) = faults {
            sc.crashes = f;
        }
        if let Some(d) = drops {
            sc.drops = d;
        }
        println!(
            "== {} (n={}, crashes={}, drops={}): {}",
            sc.name, sc.members, sc.crashes, sc.drops, sc.about
        );
        let rep = run_scenario(&sc, &budgets);
        report(sc.name, &rep);
        all_clean &= rep.clean();
    }
    Ok(all_clean)
}

fn report(name: &str, rep: &ExploreReport) {
    println!(
        "   {name}: {} schedules, {} transitions, {} sleep-pruned{}",
        rep.schedules,
        rep.transitions,
        rep.sleep_pruned,
        if rep.truncated { " (TRUNCATED)" } else { "" }
    );
    for v in &rep.violations {
        println!("   VIOLATION after {} steps:", v.schedule.len());
        for s in &v.schedule {
            println!("     {s}");
        }
        for msg in &v.violations {
            println!("     => {msg}");
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("explore: violations found");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("explore: {e}");
            ExitCode::FAILURE
        }
    }
}
