//! The protocol participant: failure detector + group creator + broadcast.
//!
//! [`Member`] is the sans-I/O composition of everything one team member
//! runs: the fail-aware clock, the failure detector's expected-sender
//! watchdog and alive-list, the six-state group creator of the paper's
//! Fig. 2, and the timewheel atomic broadcast pipeline. Hosts feed it
//! four kinds of events — start/recover, protocol ticks, clock-sync
//! ticks, and received messages — plus client `propose` calls, and apply
//! the returned [`Action`]s.
//!
//! The group-creator state machine (Fig. 2):
//!
//! ```text
//!        ┌──────┐   D (me ∈ view) / created group
//!        │ Join │ ─────────────────────────────► FailureFree ◄────┐
//!        └──────┘                                 │  ▲  │          │ D
//!            ▲      timeout, me=succ(suspect)     │  │  └── ND(expected) ──► WrongSuspicion
//!            │           ┌───────────────────────┘  │D                     │ ND(pred) → decider
//!   D(all) & me ∉ view   ▼                           │                      ▼
//!        ┌──────────┐  1-failure-send ◄── ND(pred) ── 1-failure-receive     │
//!        │ NFailure │ ◄── timeout / R ──── (both) ◄──────────────────┘      │
//!        └──────────┘ ── created group / D(me ∈ view) ──► FailureFree ◄─────┘
//! ```

/// Broadcast-side member behaviour (public for its [`ProposeError`]).
pub mod broadcast;
mod decider;
mod join;
mod nfailure;
mod single;

pub use broadcast::ProposeError;

use crate::buffers::ProposalBuffer;
use crate::config::Config;
use crate::detector::{AliveTracker, ExpectedSender};
use crate::events::{Action, LeaveReason, MemberObservation};
use crate::undeliverable::PurgeReport;
use bytes::Bytes;
use std::collections::BTreeMap;
use tw_clock::{ClockAction, ClockEvent, FailAwareClock};
use tw_obs::{ClockStamp, TraceEvent, Tracer};
use tw_proto::{
    AliveList, HwTime, Incarnation, Msg, Oal, ProcessId, ProposalId, SyncTime, UpdateDesc, View,
    ViewId,
};

/// The six states of the group creator (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreatorState {
    /// Not in any group; sending join messages in own slots.
    Join,
    /// Normal operation: the decider rotation is healthy.
    FailureFree,
    /// A single failure was suspected, and this member does *not* concur
    /// (it holds the allegedly missed decision).
    WrongSuspicion,
    /// A single failure was suspected; this member concurs but has not
    /// yet sent its no-decision message.
    OneFailureReceive,
    /// A single failure was suspected; this member has sent its
    /// no-decision message.
    OneFailureSend,
    /// Multiple failures: slotted reconfiguration election in progress.
    NFailure,
}

impl CreatorState {
    /// Static label for traces and experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            CreatorState::Join => "join",
            CreatorState::FailureFree => "failure-free",
            CreatorState::WrongSuspicion => "wrong-suspicion",
            CreatorState::OneFailureReceive => "1-failure-receive",
            CreatorState::OneFailureSend => "1-failure-send",
            CreatorState::NFailure => "n-failure",
        }
    }

    /// Is this one of the single-failure election states?
    pub fn in_single_failure_election(self) -> bool {
        matches!(
            self,
            CreatorState::WrongSuspicion
                | CreatorState::OneFailureReceive
                | CreatorState::OneFailureSend
        )
    }
}

/// A remembered join message.
#[derive(Debug, Clone)]
pub(crate) struct JoinRecord {
    pub incarnation: Incarnation,
    pub ts: SyncTime,
    pub set: std::collections::BTreeSet<ProcessId>,
}

/// A remembered reconfiguration message.
#[derive(Debug, Clone)]
pub(crate) struct ReconfigRecord {
    pub ts: SyncTime,
    pub list: std::collections::BTreeSet<ProcessId>,
    pub last_decision_ts: SyncTime,
    #[allow(dead_code)] // carried for diagnostics; creation uses our own last view
    pub last_view: ViewId,
    pub oal: Oal,
    pub dpd: Vec<UpdateDesc>,
}

/// One team member's full protocol state.
#[derive(Debug, Clone)]
pub struct Member {
    pub(crate) cfg: Config,
    pub(crate) pid: ProcessId,
    pub(crate) incarnation: Incarnation,
    pub(crate) clock: FailAwareClock,
    pub(crate) state: CreatorState,
    pub(crate) alive: AliveTracker,
    pub(crate) watchdog: ExpectedSender,
    /// Latest alive-list received from each member (piggybacked on
    /// control messages) — drives join integration.
    pub(crate) peer_alive: BTreeMap<ProcessId, AliveList>,
    /// Current group (empty before the first view).
    pub(crate) view: View,
    pub(crate) oal: Oal,
    pub(crate) last_decision_ts: SyncTime,
    /// When I must emit my decision (set on assuming the decider role).
    pub(crate) decider_due: Option<SyncTime>,
    pub(crate) my_seq: u64,
    /// Timestamp of the last message this member sent; outgoing
    /// timestamps are forced strictly increasing (receivers reject
    /// non-increasing control timestamps as duplicates).
    pub(crate) last_sent_ts: SyncTime,
    pub(crate) buf: ProposalBuffer,
    /// Descriptors of updates delivered before ordering (the `dpd` pool).
    pub(crate) dpd_descs: BTreeMap<ProposalId, UpdateDesc>,
    /// Last retransmission request per missing proposal (rate limiting).
    pub(crate) nack_last: BTreeMap<ProposalId, SyncTime>,
    /// Application snapshot the host keeps fresh, shipped to joiners.
    pub(crate) app_snapshot: Bytes,
    /// Application state received via state transfer (host consumes it).
    pub(crate) transferred_state: Option<Bytes>,
    // --- join state ---
    pub(crate) join_heard: BTreeMap<ProcessId, JoinRecord>,
    pub(crate) last_join_slot: i64,
    // --- single-failure election ---
    pub(crate) suspect: Option<ProcessId>,
    pub(crate) sent_nd_at: Option<SyncTime>,
    pub(crate) last_ctrl_sent: Option<Msg>,
    /// oal views and dpds gathered from this election's ND messages.
    pub(crate) election_oals: Vec<Oal>,
    pub(crate) election_dpds: BTreeMap<ProposalId, UpdateDesc>,
    // --- n-failure ---
    pub(crate) reconfig_heard: BTreeMap<ProcessId, ReconfigRecord>,
    pub(crate) last_reconfig_slot: i64,
    pub(crate) cooldown_until: SyncTime,
    /// A new group formed without me: wait for decisions from all its
    /// members before going back to join (paper §4.2 n-failure).
    pub(crate) nfail_wait: Option<(View, std::collections::BTreeSet<ProcessId>)>,
    // --- observability ---
    /// Updates delivered so far.
    pub(crate) delivered_count: u64,
    /// Views installed so far.
    pub(crate) views_installed: u64,
    /// The last §4.3 purge performed by this member as a new decider.
    pub(crate) last_purge: Option<PurgeReport>,
    /// Structured trace sink (disabled unless a host attaches one).
    pub(crate) tracer: Tracer,
    /// Hardware time of the entry point currently executing; pairs with
    /// the synchronized time to stamp emitted trace events.
    pub(crate) trace_hw: HwTime,
}

impl Member {
    /// Create a member with a validated configuration.
    pub fn new(pid: ProcessId, cfg: Config) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        Ok(Self::new_unchecked(pid, cfg))
    }

    /// Create a member without validating the configuration (for
    /// ablation experiments that deliberately violate the bounds).
    pub fn new_unchecked(pid: ProcessId, cfg: Config) -> Self {
        Member {
            cfg,
            pid,
            incarnation: Incarnation(0),
            clock: FailAwareClock::new(pid, cfg.clock),
            state: CreatorState::Join,
            alive: AliveTracker::new(),
            watchdog: ExpectedSender::new(),
            peer_alive: BTreeMap::new(),
            view: View::default(),
            oal: Oal::new(),
            last_decision_ts: SyncTime(i64::MIN / 2),
            decider_due: None,
            my_seq: 0,
            last_sent_ts: SyncTime(i64::MIN / 2),
            buf: ProposalBuffer::new(),
            dpd_descs: BTreeMap::new(),
            nack_last: BTreeMap::new(),
            app_snapshot: Bytes::new(),
            transferred_state: None,
            join_heard: BTreeMap::new(),
            last_join_slot: i64::MIN,
            suspect: None,
            sent_nd_at: None,
            last_ctrl_sent: None,
            election_oals: Vec::new(),
            election_dpds: BTreeMap::new(),
            reconfig_heard: BTreeMap::new(),
            last_reconfig_slot: i64::MIN,
            cooldown_until: SyncTime(i64::MIN / 2),
            nfail_wait: None,
            delivered_count: 0,
            views_installed: 0,
            last_purge: None,
            tracer: Tracer::disabled(),
            trace_hw: HwTime::ZERO,
        }
    }

    /// Attach a structured trace sink. Cloned members (e.g. forked
    /// simulator worlds) share the same sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Emit a trace event stamped with the entry point's hardware time
    /// and the given synchronized time. The closure only runs when a
    /// sink is attached.
    pub(crate) fn trace(&self, now: SyncTime, make: impl FnOnce(ClockStamp) -> TraceEvent) {
        let at = ClockStamp {
            hw: self.trace_hw,
            sync: now,
        };
        self.tracer.emit(|| make(at));
    }

    // ---- accessors ------------------------------------------------------

    /// This member's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Current creator state.
    pub fn state(&self) -> CreatorState {
        self.state
    }

    /// Current incarnation.
    pub fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    /// Current view (empty before the first group).
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Current oal snapshot.
    pub fn oal(&self) -> &Oal {
        &self.oal
    }

    /// Am I currently holding the decider role (assumed, decision not
    /// yet sent)?
    pub fn is_decider(&self) -> bool {
        self.decider_due.is_some()
    }

    /// Updates delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Views installed so far.
    pub fn views_installed(&self) -> u64 {
        self.views_installed
    }

    /// The §4.3 purge report from the last group this member created, if
    /// any.
    pub fn last_purge(&self) -> Option<&PurgeReport> {
        self.last_purge.as_ref()
    }

    /// The fail-aware clock (read-only).
    pub fn clock(&self) -> &FailAwareClock {
        &self.clock
    }

    /// Synchronized time now, if the clock is synchronized.
    pub fn now_sync(&self, now_hw: HwTime) -> Option<SyncTime> {
        self.clock.read(now_hw)
    }

    /// Fail-aware up-to-date check (membership spec §3): does this member
    /// currently *know* its group is up to date? True while the clock is
    /// synchronized, the creator is in failure-free state and the
    /// expected-sender deadline has not passed.
    pub fn is_up_to_date(&self, now_hw: HwTime) -> bool {
        match self.clock.read(now_hw) {
            Some(now) => {
                self.state == CreatorState::FailureFree
                    && self.watchdog.expected().is_some()
                    && now <= self.watchdog.deadline()
            }
            None => false,
        }
    }

    /// Debug: number of pending proposals.
    #[doc(hidden)]
    pub fn pending_len_dbg(&self) -> usize {
        self.buf.pending_len()
    }

    /// Debug: explain why each pending proposal is undeliverable.
    #[doc(hidden)]
    pub fn explain_pending_dbg(&self, now: SyncTime) -> Vec<String> {
        self.buf
            .pending()
            .map(|p| {
                let id = p.id();
                format!(
                    "{id} sem={} fifo={} marked={} ordinal={:?} atom={} order={}",
                    p.semantics,
                    self.buf.fifo_ready(id),
                    self.buf.is_locally_marked(id, now),
                    self.buf.ordinal_of(id).or_else(|| self.oal.ordinal_of(id)),
                    crate::delivery::atomicity_ok(&self.oal, &self.view, p),
                    crate::delivery::order_ok(&self.oal, &self.buf, &self.cfg, now, p),
                )
            })
            .collect()
    }

    /// Test/bench support: force the fail-aware clock into a
    /// permanently synchronized state (sync == hardware time).
    #[doc(hidden)]
    pub fn force_clock_sync(&mut self) {
        self.clock.force_synced();
    }

    /// Harness support: restart a crashed process as incarnation `inc`.
    /// A real recovery ([`Member::on_recover`]) bumps the incarnation of
    /// surviving state; a chaos-harness restart builds a *fresh* member
    /// (the crash destroyed the old one) and must place it in the right
    /// incarnation band so its proposal ids stay unique across lives.
    pub fn force_incarnation(&mut self, inc: Incarnation) {
        self.incarnation = inc;
        self.my_seq = (inc.0 as u64) << 32;
    }

    /// Explorer/test support: a member born directly into `view` in
    /// failure-free state with a force-synced clock, skipping the
    /// join protocol. The schedule explorer uses this to study formed
    /// groups under adversarial scheduling without spending its bounded
    /// budgets on start-up.
    #[doc(hidden)]
    pub fn new_in_view(pid: ProcessId, cfg: Config, view: View) -> Member {
        let mut m = Member::new_unchecked(pid, cfg);
        let _ = m.on_start(HwTime::ZERO); // arm trackers; discard join traffic
        m.force_clock_sync();
        m.view = view;
        m.state = CreatorState::FailureFree;
        m
    }

    /// Provide the application snapshot shipped to joiners.
    pub fn set_app_snapshot(&mut self, snapshot: Bytes) {
        self.app_snapshot = snapshot;
    }

    /// Take the application state received in a state transfer, if any.
    pub fn take_transferred_state(&mut self) -> Option<Bytes> {
        self.transferred_state.take()
    }

    /// A point-in-time observation for experiments.
    pub fn observe(&self, now_hw: HwTime) -> MemberObservation {
        MemberObservation {
            pid: self.pid,
            now: self.clock.read(now_hw),
            state: self.state.label(),
            view: self.view.clone(),
            is_decider: self.is_decider(),
        }
    }

    // ---- lifecycle -------------------------------------------------------

    /// Start at process creation.
    pub fn on_start(&mut self, now_hw: HwTime) -> Vec<Action> {
        self.trace_hw = now_hw;
        let mut actions = Vec::new();
        self.reset_protocol_state();
        for a in self.clock.on_start(now_hw) {
            actions.push(map_clock_action(a));
        }
        actions.push(Action::LeftGroup {
            reason: LeaveReason::Startup,
        });
        actions
    }

    /// Recover after a crash: new incarnation, all volatile state gone.
    pub fn on_recover(&mut self, now_hw: HwTime) -> Vec<Action> {
        self.trace_hw = now_hw;
        self.incarnation = self.incarnation.next();
        // Proposal ids must stay unique across incarnations even though
        // the sequence counter is volatile: restart the counter in a
        // fresh incarnation-numbered band.
        self.my_seq = (self.incarnation.0 as u64) << 32;
        self.buf.clear();
        let mut actions = self.on_start(now_hw);
        // on_start pushes Startup; keep it (recovery is a startup).
        actions.retain(|a| !matches!(a, Action::LeftGroup { .. }));
        actions.push(Action::LeftGroup {
            reason: LeaveReason::Startup,
        });
        actions
    }

    fn reset_protocol_state(&mut self) {
        self.state = CreatorState::Join;
        self.transferred_state = None;
        self.alive.clear();
        self.watchdog.disarm();
        self.peer_alive.clear();
        self.view = View::default();
        self.oal = Oal::new();
        self.last_decision_ts = SyncTime(i64::MIN / 2);
        self.decider_due = None;
        self.dpd_descs.clear();
        self.nack_last.clear();
        self.join_heard.clear();
        self.last_join_slot = i64::MIN;
        self.suspect = None;
        self.sent_nd_at = None;
        self.last_ctrl_sent = None;
        self.election_oals.clear();
        self.election_dpds.clear();
        self.reconfig_heard.clear();
        self.last_reconfig_slot = i64::MIN;
        self.cooldown_until = SyncTime(i64::MIN / 2);
        self.nfail_wait = None;
    }

    /// The clock-synchronization resync tick.
    pub fn on_clock_tick(&mut self, now_hw: HwTime) -> Vec<Action> {
        self.trace_hw = now_hw;
        self.clock
            .handle(now_hw, ClockEvent::Tick)
            .into_iter()
            .map(map_clock_action)
            .collect()
    }

    /// The periodic protocol tick: evaluates every deadline predicate.
    pub fn on_tick(&mut self, now_hw: HwTime) -> Vec<Action> {
        self.trace_hw = now_hw;
        let mut actions = Vec::new();
        let Some(now) = self.clock.read(now_hw) else {
            // Fail-awareness: we know we are not synchronized. A member
            // of a group must leave it (paper §2: such a process is
            // removed and rejoins once synchronized).
            if self.state != CreatorState::Join {
                self.leave_to_join(LeaveReason::LostClockSync, &mut actions);
            }
            return actions;
        };
        self.buf.expire_marks(now);

        match self.state {
            CreatorState::Join => self.join_tick(now, &mut actions),
            CreatorState::NFailure => self.nfailure_tick(now, &mut actions),
            _ => {
                // Decider duty first: emitting our decision also feeds
                // everyone's watchdog.
                if let Some(due) = self.decider_due {
                    if now >= due {
                        self.emit_decision(now, &mut actions);
                    }
                }
                if let Some(suspect) = self.watchdog.timed_out(now) {
                    self.on_timeout_failure(now, suspect, &mut actions);
                }
                self.maybe_nack(now, &mut actions);
            }
        }
        self.try_deliver(now, &mut actions);
        actions
    }

    /// A datagram arrived.
    pub fn on_message(&mut self, now_hw: HwTime, from: ProcessId, msg: Msg) -> Vec<Action> {
        self.trace_hw = now_hw;
        let mut actions = Vec::new();
        if from == self.pid {
            return actions; // own broadcast echo (possible on UDP runtimes)
        }
        self.dispatch_one(now_hw, from, msg, &mut actions);
        actions
    }

    /// Apply a batch of messages received from `from` in one dispatch —
    /// the decode of one multi-frame datagram.
    ///
    /// Semantically this is exactly `on_message` in a loop (each message
    /// drives deliveries before the next is applied, so the §3 delivery
    /// order and the Deliver/InstallView interleaving are identical to
    /// sequential processing — `tests/batch_order.rs` pins this down);
    /// the batching win is one handler entry, one actions vector and one
    /// coalesced outbound flush for the whole datagram.
    pub fn on_messages(&mut self, now_hw: HwTime, from: ProcessId, msgs: Vec<Msg>) -> Vec<Action> {
        self.trace_hw = now_hw;
        let mut actions = Vec::new();
        if from == self.pid {
            return actions; // own broadcast echo (possible on UDP runtimes)
        }
        for msg in msgs {
            self.dispatch_one(now_hw, from, msg, &mut actions);
        }
        actions
    }

    /// Dispatch one received message, appending its actions. Shared body
    /// of [`Member::on_message`] and [`Member::on_messages`].
    fn dispatch_one(&mut self, now_hw: HwTime, from: ProcessId, msg: Msg, actions: &mut Vec<Action>) {
        if let Msg::ClockSync(cs) = msg {
            for a in self.clock.handle(now_hw, ClockEvent::Msg { from, msg: cs }) {
                actions.push(map_clock_action(a));
            }
            return;
        }
        // Everything else needs a synchronized clock to timestamp-check.
        let Some(now) = self.clock.read(now_hw) else {
            return;
        };
        match msg {
            Msg::ClockSync(_) => unreachable!("handled above"),
            Msg::Proposal(p) => self.handle_proposal(now, p, actions),
            Msg::StateTransfer(st) => self.handle_state_transfer(now, st, actions),
            Msg::Decision(d) => self.handle_decision(now, d, actions),
            Msg::NoDecision(nd) => self.handle_no_decision(now, nd, actions),
            Msg::Join(j) => self.handle_join(now, j, actions),
            Msg::Reconfig(r) => self.handle_reconfig(now, r, actions),
            Msg::Nack(nk) => self.handle_nack(nk, actions),
        }
        self.try_deliver(now, actions);
    }

    // ---- shared helpers --------------------------------------------------

    /// Record a control message for alive-list/duplicate purposes.
    /// Returns false when the message is stale or duplicate and must be
    /// ignored (paper §4.2).
    pub(crate) fn ctrl_fresh(&mut self, sender: ProcessId, ts: SyncTime, alive: AliveList) -> bool {
        if !self.alive.record_if_fresh(sender, ts) {
            return false;
        }
        self.peer_alive.insert(sender, alive);
        true
    }

    /// Timestamp for an outgoing message: the current synchronized time,
    /// bumped if needed so that this member's send timestamps are
    /// strictly increasing (two messages in one tick would otherwise
    /// collide and be dropped as duplicates by receivers).
    pub(crate) fn stamp(&mut self, now: SyncTime) -> SyncTime {
        let ts = now.max(self.last_sent_ts + tw_proto::Duration(1));
        self.last_sent_ts = ts;
        ts
    }

    /// My current alive-list (self + heard within N slots).
    pub(crate) fn my_alive(&self, now: SyncTime) -> AliveList {
        self.alive
            .alive_list(self.pid, now, self.cfg.slot_len * self.cfg.n as i64)
    }

    /// The successor of `p` in the current view.
    pub(crate) fn succ(&self, p: ProcessId) -> ProcessId {
        self.view.successor_in_group(p).unwrap_or(p)
    }

    /// The successor of `p` in the current view with `skip` removed
    /// (the no-decision ring order).
    pub(crate) fn ring_succ(&self, skip: ProcessId, p: ProcessId) -> ProcessId {
        let mut cur = self.succ(p);
        if cur == skip {
            cur = self.succ(cur);
        }
        cur
    }

    /// Arm the watchdog for the normal decider rotation after a decision
    /// from `sender` at `ts`.
    pub(crate) fn arm_rotation(&mut self, sender: ProcessId, ts: SyncTime) {
        let next = self.succ(sender);
        self.watchdog.arm(next, ts, self.cfg.decision_timeout);
    }

    /// Arm the watchdog for the no-decision ring: after a control message
    /// from `after` at `base`, expect the next ring member.
    pub(crate) fn arm_ring(&mut self, suspect: ProcessId, after: ProcessId, base: SyncTime) {
        let next = self.ring_succ(suspect, after);
        self.watchdog.arm(next, base, self.cfg.election_timeout);
    }

    /// Leave the group and return to join state.
    pub(crate) fn leave_to_join(&mut self, reason: LeaveReason, actions: &mut Vec<Action>) {
        self.state = CreatorState::Join;
        self.view = View::default();
        // Assignments from the lineage we are leaving are void; the
        // rejoin's state transfer supplies fresh ones.
        self.buf.clear_ordinals();
        self.transferred_state = None;
        self.watchdog.disarm();
        self.decider_due = None;
        self.suspect = None;
        self.sent_nd_at = None;
        self.election_oals.clear();
        self.election_dpds.clear();
        self.reconfig_heard.clear();
        self.nfail_wait = None;
        self.join_heard.clear();
        self.last_join_slot = i64::MIN;
        actions.push(Action::LeftGroup { reason });
    }

    /// Record that we are now in `state` with `suspect` under election.
    pub(crate) fn enter_single_failure(&mut self, state: CreatorState, suspect: ProcessId) {
        debug_assert!(state.in_single_failure_election());
        self.state = state;
        self.suspect = Some(suspect);
        self.decider_due = None;
    }
}

fn map_clock_action(a: ClockAction) -> Action {
    match a {
        ClockAction::Broadcast(m) => Action::Broadcast(Msg::ClockSync(m)),
        ClockAction::Send(to, m) => Action::Send(to, Msg::ClockSync(m)),
        ClockAction::ScheduleTick(d) => Action::ScheduleClockTick(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_proto::Duration;

    fn member(pid: u16, n: usize) -> Member {
        Member::new(
            ProcessId(pid),
            Config::for_team(n, Duration::from_millis(10)),
        )
        .unwrap()
    }

    #[test]
    fn new_member_starts_in_join() {
        let m = member(0, 3);
        assert_eq!(m.state(), CreatorState::Join);
        assert!(m.view().is_empty());
        assert!(!m.is_decider());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = Config::for_team(3, Duration::from_millis(10));
        cfg.slot_len = Duration(1);
        assert!(Member::new(ProcessId(0), cfg).is_err());
        // unchecked constructor tolerates it (for ablations)
        let m = Member::new_unchecked(ProcessId(0), cfg);
        assert_eq!(m.state(), CreatorState::Join);
    }

    #[test]
    fn recover_bumps_incarnation_and_seq_band() {
        let mut m = member(0, 3);
        m.on_start(HwTime(0));
        assert_eq!(m.incarnation(), Incarnation(0));
        m.on_recover(HwTime(1_000));
        assert_eq!(m.incarnation(), Incarnation(1));
        assert_eq!(m.my_seq, 1u64 << 32);
    }

    #[test]
    fn start_emits_clock_probe_and_startup() {
        let mut m = member(0, 3);
        let actions = m.on_start(HwTime(0));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::ClockSync(_)))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ScheduleClockTick(_))));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::LeftGroup {
                reason: LeaveReason::Startup
            }
        )));
    }

    #[test]
    fn state_labels_are_distinct() {
        use CreatorState::*;
        let all = [
            Join,
            FailureFree,
            WrongSuspicion,
            OneFailureReceive,
            OneFailureSend,
            NFailure,
        ];
        let labels: std::collections::BTreeSet<_> = all.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
        assert!(WrongSuspicion.in_single_failure_election());
        assert!(!NFailure.in_single_failure_election());
        assert!(!Join.in_single_failure_election());
    }

    #[test]
    fn ctrl_fresh_rejects_stale() {
        let mut m = member(0, 3);
        assert!(m.ctrl_fresh(ProcessId(1), SyncTime(10), AliveList::EMPTY));
        assert!(!m.ctrl_fresh(ProcessId(1), SyncTime(10), AliveList::EMPTY));
        assert!(!m.ctrl_fresh(ProcessId(1), SyncTime(9), AliveList::EMPTY));
        assert!(m.ctrl_fresh(ProcessId(1), SyncTime(11), AliveList::EMPTY));
    }

    #[test]
    fn ring_succ_skips_suspect() {
        let mut m = member(0, 3);
        m.view = View::new(
            ViewId::new(1, ProcessId(0)),
            [ProcessId(0), ProcessId(1), ProcessId(2)],
        );
        assert_eq!(m.ring_succ(ProcessId(1), ProcessId(0)), ProcessId(2));
        assert_eq!(m.ring_succ(ProcessId(2), ProcessId(1)), ProcessId(0));
        assert_eq!(m.ring_succ(ProcessId(0), ProcessId(2)), ProcessId(1));
    }

    #[test]
    fn observation_reports_state() {
        let mut m = member(0, 3);
        m.on_start(HwTime(0));
        let obs = m.observe(HwTime(10));
        assert_eq!(obs.pid, ProcessId(0));
        assert_eq!(obs.state, "join");
        assert!(!obs.is_decider);
    }

    #[test]
    fn unsynced_message_handling_is_inert() {
        // p1 has no synchronized clock at start; a decision arriving then
        // is ignored rather than mis-timestamped.
        let mut m = member(1, 3);
        m.on_start(HwTime(0));
        let d = tw_proto::Decision {
            sender: ProcessId(0),
            send_ts: SyncTime(100),
            view: View::new(
                ViewId::new(1, ProcessId(0)),
                [ProcessId(0), ProcessId(1), ProcessId(2)],
            ),
            oal: Oal::new(),
            alive: AliveList::EMPTY,
        };
        let actions = m.on_message(HwTime(10), ProcessId(0), Msg::Decision(d));
        assert!(actions.is_empty());
        assert_eq!(m.state(), CreatorState::Join);
    }

    #[test]
    fn own_echo_ignored() {
        let mut m = member(0, 3);
        m.on_start(HwTime(0));
        let j = tw_proto::Join {
            sender: ProcessId(0),
            incarnation: Incarnation(0),
            send_ts: SyncTime(1),
            join_list: vec![],
            alive: AliveList::EMPTY,
        };
        let actions = m.on_message(HwTime(5), ProcessId(0), Msg::Join(j));
        assert!(actions.is_empty());
    }
}
