//! The multiple-failure (reconfiguration) election — the n-failure state
//! of paper §4.2.
//!
//! The synchronized time base is divided into cycles of `N` slots, one
//! per team member. Each member in n-failure state sends one
//! reconfiguration message per own slot, carrying its
//! reconfiguration-list, the timestamp of the freshest decision it knows,
//! and its oal view. A member creates the new group in its slot when a
//! majority `S` (itself included) sent fresh reconfiguration messages
//! with lists identical to its own, decision timestamps no greater than
//! its own, and all of `S` belonged to the last group it knows — the
//! highest-timestamp member wins, and slot order breaks ties.
//!
//! After a *mixed* election (a no-decision message followed by entering
//! n-failure), a member cools down for `N−1` slots, sending empty
//! reconfiguration-lists so that its earlier messages cannot help elect a
//! second decider (paper §4.2's at-most-one-decider argument).

use super::{CreatorState, Member, ReconfigRecord};
use crate::events::{Action, LeaveReason};
use std::collections::BTreeSet;
use tw_proto::{Decision, Msg, ProcessId, Reconfig, SyncTime};

impl Member {
    /// Enter n-failure state (from any election state or failure-free).
    pub(crate) fn enter_nfailure(&mut self, now: SyncTime, _actions: &mut Vec<Action>) {
        // Mixed-election guard: if we sent a no-decision message within
        // the last cycle, both elections could succeed — cool down for
        // N−1 slots (paper §4.2).
        if let Some(t) = self.sent_nd_at {
            if now - t <= self.cfg.cycle() {
                self.cooldown_until = now + self.cfg.slot_len * (self.cfg.n as i64 - 1);
            }
        }
        self.state = CreatorState::NFailure;
        self.suspect = None;
        self.decider_due = None;
        self.watchdog.disarm();
        self.nfail_wait = None;
        self.last_reconfig_slot = i64::MIN;
    }

    /// Per-tick behaviour in n-failure: once per own slot, send a
    /// reconfiguration message and (cooldown permitting) try to create
    /// the new group.
    pub(crate) fn nfailure_tick(&mut self, now: SyncTime, actions: &mut Vec<Action>) {
        if !self.cfg.in_slot_of(now, self.pid) {
            return;
        }
        let slot = self.cfg.slot_index(now);
        if slot == self.last_reconfig_slot {
            return;
        }
        let has_sent_before = self.last_reconfig_slot != i64::MIN;
        self.last_reconfig_slot = slot;
        let cooldown = now <= self.cooldown_until;
        // Creation BEFORE sending (paper §4.2): "the first process p
        // which can use these reconfiguration messages does not send a
        // reconfiguration message", so a process that misses p's first
        // decision ages p out of its reconfiguration-list within a cycle
        // instead of using p's stale messages to elect a second decider.
        if !cooldown && has_sent_before && self.try_reconfig_create(now, actions) {
            return;
        }
        self.send_reconfig(now, cooldown, actions);
    }

    /// My reconfiguration-list: myself plus everyone whose reconfiguration
    /// message arrived within the last cycle (see `my_join_set` for why
    /// the paper's "N−1 slots" is measured as a full cycle here).
    pub(crate) fn my_reconfig_set(&self, now: SyncTime) -> BTreeSet<ProcessId> {
        let horizon = self.cfg.cycle();
        let mut set: BTreeSet<ProcessId> = self
            .reconfig_heard
            .iter()
            .filter(|(_, r)| now - r.ts <= horizon)
            .map(|(p, _)| *p)
            .collect();
        set.insert(self.pid);
        set
    }

    /// Broadcast a reconfiguration message (empty list during cooldown).
    pub(crate) fn send_reconfig(&mut self, now: SyncTime, empty: bool, actions: &mut Vec<Action>) {
        let list = if empty {
            vec![]
        } else {
            self.my_reconfig_set(now).into_iter().collect()
        };
        let send_ts = self.stamp(now);
        let (slot, listed) = (self.cfg.slot_index(now), list.len() as u32);
        self.trace(now, |at| tw_obs::TraceEvent::ReconfigSlotFired {
            pid: self.pid,
            at,
            slot,
            listed,
            empty,
        });
        let r = Reconfig {
            sender: self.pid,
            send_ts,
            reconfig_list: list,
            last_decision_ts: self.last_decision_ts,
            last_view: self.view.id,
            oal_view: self.oal.clone(),
            dpd: self.dpd_field(),
            alive: self.my_alive(now),
        };
        let msg = Msg::Reconfig(r);
        self.last_ctrl_sent = Some(msg.clone());
        actions.push(Action::Broadcast(msg));
    }

    /// The creation condition (paper §4.2, four clauses).
    fn try_reconfig_create(&mut self, now: SyncTime, actions: &mut Vec<Action>) -> bool {
        if self.view.is_empty() {
            return false; // never had a group: join state handles formation
        }
        let my_list = self.my_reconfig_set(now);
        let mut members: BTreeSet<ProcessId> = BTreeSet::new();
        members.insert(self.pid);
        let mut merge = Vec::new();
        let mut dpds = Vec::new();
        for (p, rec) in &self.reconfig_heard {
            if *p == self.pid {
                continue;
            }
            // (1) received in p's last slot
            if !self.cfg.in_last_slot_of(now, rec.ts, *p) {
                continue;
            }
            // (2) identical reconfiguration-list
            if rec.list != my_list {
                continue;
            }
            // (3) decision timestamp not greater than mine
            if rec.last_decision_ts > self.last_decision_ts {
                continue;
            }
            // (4) member of the last group I know about
            if !self.view.contains(*p) {
                continue;
            }
            members.insert(*p);
            merge.push(rec.oal.clone());
            dpds.extend(rec.dpd.iter().copied());
        }
        if members.len() < self.cfg.majority() {
            return false;
        }
        self.create_group(now, members, merge, dpds, actions);
        true
    }

    /// Record a received reconfiguration message; in rotation-watching
    /// states a reconfiguration from the expected sender signals multiple
    /// failures.
    pub(crate) fn handle_reconfig(
        &mut self,
        now: SyncTime,
        r: Reconfig,
        actions: &mut Vec<Action>,
    ) {
        if !self.ctrl_fresh(r.sender, r.send_ts, r.alive) {
            return;
        }
        self.reconfig_heard.insert(
            r.sender,
            ReconfigRecord {
                ts: r.send_ts,
                list: r.reconfig_set(),
                last_decision_ts: r.last_decision_ts,
                last_view: r.last_view,
                oal: r.oal_view,
                dpd: r.dpd,
            },
        );
        match self.state {
            CreatorState::FailureFree
            | CreatorState::WrongSuspicion
            | CreatorState::OneFailureReceive
            | CreatorState::OneFailureSend => {
                if Some(r.sender) == self.watchdog.expected() {
                    self.enter_nfailure(now, actions);
                }
            }
            CreatorState::NFailure | CreatorState::Join => {}
        }
    }

    /// A decision arrived while in n-failure state.
    pub(crate) fn decision_in_nfailure(
        &mut self,
        now: SyncTime,
        d: Decision,
        actions: &mut Vec<Action>,
    ) {
        if d.view.contains(self.pid) {
            if d.send_ts > self.last_decision_ts || d.view.id.seq > self.view.id.seq {
                self.reconfig_heard.clear();
                self.accept_decision(now, d, actions);
            }
            return;
        }
        // A new group formed without me: delay the switch to join until
        // decisions from *all* its members were seen, so that if the new
        // decider role is lost within a round I can still participate in
        // the follow-up election (paper §4.2).
        let seen_all = {
            let entry = match &mut self.nfail_wait {
                Some((v, seen)) if v.id == d.view.id => {
                    seen.insert(d.sender);
                    Some((v.clone(), seen.clone()))
                }
                _ => {
                    let seen: BTreeSet<ProcessId> = [d.sender].into_iter().collect();
                    self.nfail_wait = Some((d.view.clone(), seen.clone()));
                    Some((d.view.clone(), seen))
                }
            };
            match entry {
                Some((v, seen)) => v.members.iter().all(|m| seen.contains(m)),
                None => false,
            }
        };
        if seen_all {
            self.leave_to_join(LeaveReason::Excluded, actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use tw_proto::{AliveList, Duration, HwTime, Oal, UpdateDesc, View, ViewId};

    fn cfg() -> Config {
        Config::for_team(5, Duration::from_millis(10))
    }

    /// A synced member of group {0..4} in n-failure state knowing a
    /// decision at ts=1000.
    fn nfail_member(pid: u16) -> Member {
        let mut m = Member::new(ProcessId(pid), cfg()).unwrap();
        m.on_start(HwTime(0));
        m.force_clock_sync();
        m.view = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
        m.state = CreatorState::NFailure;
        m.last_decision_ts = SyncTime(1_000);
        m
    }

    fn reconfig(sender: u16, ts: SyncTime, list: &[u16], decision_ts: i64) -> Reconfig {
        Reconfig {
            sender: ProcessId(sender),
            send_ts: ts,
            reconfig_list: list.iter().map(|&r| ProcessId(r)).collect(),
            last_decision_ts: SyncTime(decision_ts),
            last_view: ViewId::new(1, ProcessId(0)),
            oal_view: Oal::new(),
            dpd: vec![],
            alive: AliveList::EMPTY,
        }
    }

    /// A time inside pid's slot, at least one cycle in.
    fn slot_time(pid: u16, cycle_n: i64) -> SyncTime {
        let c = cfg();
        SyncTime(c.cycle().0 * cycle_n + c.slot_len.0 * pid as i64 + 10)
    }

    #[test]
    fn sends_reconfig_once_per_own_slot() {
        let mut m = nfail_member(0);
        let t = slot_time(0, 1);
        let a1 = m.on_tick(HwTime(t.0));
        assert!(a1
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Reconfig(_)))));
        let a2 = m.on_tick(HwTime(t.0 + 50));
        assert!(!a2
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Reconfig(_)))));
        // Not my slot:
        let a3 = m.on_tick(HwTime(slot_time(1, 1).0));
        assert!(!a3
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Reconfig(_)))));
    }

    #[test]
    fn creation_requires_matching_majority() {
        let mut m = nfail_member(0);
        // My own reconfig must precede creation: send one in cycle 1.
        m.on_tick(HwTime(slot_time(0, 1).0));
        // p1 and p2 sent matching reconfigs {0,1,2} in their last slots.
        let t1 = slot_time(1, 1);
        let t2 = slot_time(2, 1);
        m.handle_reconfig(t1, reconfig(1, t1, &[0, 1, 2], 1_000), &mut vec![]);
        m.handle_reconfig(t2, reconfig(2, t2, &[0, 1, 2], 1_000), &mut vec![]);
        // My slot next cycle: my list = {0,1,2} (both fresh) → matches.
        let t0 = slot_time(0, 2);
        let actions = m.on_tick(HwTime(t0.0));
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert_eq!(m.view().len(), 3);
        assert!(m.view().id.seq > 1, "seq advanced past the old view");
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Decision(_)))));
    }

    #[test]
    fn no_creation_with_stale_reconfigs() {
        let mut m = nfail_member(0);
        let t1 = slot_time(1, 1);
        m.handle_reconfig(t1, reconfig(1, t1, &[0, 1, 2], 1_000), &mut vec![]);
        let t2 = slot_time(2, 1);
        m.handle_reconfig(t2, reconfig(2, t2, &[0, 1, 2], 1_000), &mut vec![]);
        // Two cycles later, those reconfigs are stale.
        let t0 = slot_time(0, 4);
        m.on_tick(HwTime(t0.0));
        assert_eq!(m.state(), CreatorState::NFailure);
    }

    #[test]
    fn no_creation_when_peer_has_fresher_decision() {
        let mut m = nfail_member(0);
        let t1 = slot_time(1, 1);
        // p1 knows a NEWER decision (ts 2000 > my 1000): clause (3) fails
        // for me — p1 should win instead.
        m.handle_reconfig(t1, reconfig(1, t1, &[0, 1, 2], 2_000), &mut vec![]);
        let t2 = slot_time(2, 1);
        m.handle_reconfig(t2, reconfig(2, t2, &[0, 1, 2], 1_000), &mut vec![]);
        m.on_tick(HwTime(slot_time(0, 2).0));
        assert_eq!(m.state(), CreatorState::NFailure);
    }

    #[test]
    fn no_creation_with_mismatched_lists() {
        let mut m = nfail_member(0);
        let t1 = slot_time(1, 1);
        m.handle_reconfig(t1, reconfig(1, t1, &[1, 2], 1_000), &mut vec![]);
        let t2 = slot_time(2, 1);
        m.handle_reconfig(t2, reconfig(2, t2, &[0, 1, 2], 1_000), &mut vec![]);
        m.on_tick(HwTime(slot_time(0, 2).0));
        assert_eq!(m.state(), CreatorState::NFailure);
    }

    #[test]
    fn outsiders_to_last_group_excluded() {
        let mut m = nfail_member(0);
        // Last group was only {0,1,2}:
        m.view = View::new(ViewId::new(1, ProcessId(0)), [0, 1, 2].map(ProcessId));
        // p3 (not in the last group) sends matching reconfigs — clause 4
        // must reject it; with only p1 matching, majority of 5 (=3) via
        // {0,1} fails.
        let t1 = slot_time(1, 1);
        m.handle_reconfig(t1, reconfig(1, t1, &[0, 1, 3], 1_000), &mut vec![]);
        let t3 = slot_time(3, 1);
        m.handle_reconfig(t3, reconfig(3, t3, &[0, 1, 3], 1_000), &mut vec![]);
        m.on_tick(HwTime(slot_time(0, 2).0));
        assert_eq!(m.state(), CreatorState::NFailure);
    }

    #[test]
    fn cooldown_sends_empty_lists_and_blocks_creation() {
        let mut m = nfail_member(0);
        // Entered n-failure in slot 4 of cycle 0, right after sending an
        // ND: mixed election. Cooldown = N−1 slots from entry, which
        // covers my slot in cycle 1.
        let entry = slot_time(4, 0);
        m.sent_nd_at = Some(entry - Duration(100));
        m.state = CreatorState::OneFailureSend;
        let mut actions = Vec::new();
        m.enter_nfailure(entry, &mut actions);
        assert!(m.cooldown_until > entry);
        // Matching majority is available, but cooldown blocks creation.
        let t1 = slot_time(1, 0);
        let t2 = slot_time(2, 0);
        m.handle_reconfig(t1, reconfig(1, t1, &[0, 1, 2], 1_000), &mut vec![]);
        m.handle_reconfig(t2, reconfig(2, t2, &[0, 1, 2], 1_000), &mut vec![]);
        let t0 = slot_time(0, 1);
        assert!(t0 <= m.cooldown_until, "test setup: still cooling down");
        let a = m.on_tick(HwTime(t0.0));
        assert_eq!(m.state(), CreatorState::NFailure);
        let Some(Action::Broadcast(Msg::Reconfig(r))) = a
            .iter()
            .find(|x| matches!(x, Action::Broadcast(Msg::Reconfig(_))))
        else {
            panic!("no reconfig sent");
        };
        assert!(r.reconfig_list.is_empty(), "cooldown sends empty lists");
    }

    #[test]
    fn reconfig_from_expected_escalates_rotation_watchers() {
        let mut m = nfail_member(3);
        m.state = CreatorState::FailureFree;
        m.watchdog
            .arm(ProcessId(1), SyncTime(1_000), Duration(50_000));
        let r = reconfig(1, SyncTime(1_500), &[1], 900);
        m.handle_reconfig(SyncTime(1_501), r, &mut vec![]);
        assert_eq!(m.state(), CreatorState::NFailure);
    }

    #[test]
    fn reconfig_from_unexpected_only_recorded() {
        let mut m = nfail_member(3);
        m.state = CreatorState::FailureFree;
        m.watchdog
            .arm(ProcessId(1), SyncTime(1_000), Duration(50_000));
        let r = reconfig(2, SyncTime(1_500), &[2], 900);
        m.handle_reconfig(SyncTime(1_501), r, &mut vec![]);
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert!(m.reconfig_heard.contains_key(&ProcessId(2)));
    }

    #[test]
    fn inclusive_decision_restores_failure_free() {
        let mut m = nfail_member(3);
        let d = Decision {
            sender: ProcessId(0),
            send_ts: SyncTime(2_000),
            view: View::new(ViewId::new(2, ProcessId(0)), [0, 1, 3].map(ProcessId)),
            oal: Oal::new(),
            alive: AliveList::EMPTY,
        };
        let mut actions = Vec::new();
        m.handle_decision(SyncTime(2_001), d, &mut actions);
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert_eq!(m.view().len(), 3);
    }

    #[test]
    fn exclusive_decisions_wait_for_all_members() {
        let mut m = nfail_member(4);
        let new_view = View::new(ViewId::new(2, ProcessId(0)), [0, 1, 2].map(ProcessId));
        let mk = |sender: u16, ts: i64| Decision {
            sender: ProcessId(sender),
            send_ts: SyncTime(ts),
            view: new_view.clone(),
            oal: Oal::new(),
            alive: AliveList::EMPTY,
        };
        let mut actions = Vec::new();
        m.handle_decision(SyncTime(2_001), mk(0, 2_000), &mut actions);
        assert_eq!(m.state(), CreatorState::NFailure, "still waiting");
        m.handle_decision(SyncTime(2_101), mk(1, 2_100), &mut actions);
        assert_eq!(m.state(), CreatorState::NFailure);
        m.handle_decision(SyncTime(2_201), mk(2, 2_200), &mut actions);
        assert_eq!(m.state(), CreatorState::Join, "all members seen → join");
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::LeftGroup {
                reason: LeaveReason::Excluded
            }
        )));
    }

    #[test]
    fn merged_election_state_reaches_new_oal() {
        let mut m = nfail_member(0);
        m.on_tick(HwTime(slot_time(0, 1).0)); // own reconfig first
                                              // p1's reconfig carries a dpd entry; after creation the new oal
                                              // must order it.
        let t1 = slot_time(1, 1);
        let mut r1 = reconfig(1, t1, &[0, 1, 2], 1_000);
        r1.dpd = vec![UpdateDesc {
            id: tw_proto::ProposalId::new(ProcessId(1), 7),
            hdo: tw_proto::Ordinal::ZERO,
            semantics: tw_proto::Semantics::UNORDERED_WEAK,
            send_ts: SyncTime(900),
        }];
        m.handle_reconfig(t1, r1, &mut vec![]);
        let t2 = slot_time(2, 1);
        m.handle_reconfig(t2, reconfig(2, t2, &[0, 1, 2], 1_000), &mut vec![]);
        m.on_tick(HwTime(slot_time(0, 2).0));
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert!(
            m.oal()
                .ordinal_of(tw_proto::ProposalId::new(ProcessId(1), 7))
                .is_some(),
            "dpd update ordered by the new decider"
        );
    }
}
