//! Join state: initial group formation and re-integration (paper §4.2).
//!
//! A process in join state sends a join message once per own time slot,
//! carrying its *join-list* (everyone it heard a join from within the
//! last `N−1` slots, itself included). The first group forms when a
//! majority agree on identical join-lists; a process joining an existing
//! group is instead *integrated* by the decider that is its successor in
//! the group-to-be, once every member's alive-list contains it.

use super::{CreatorState, JoinRecord, Member};
use crate::events::Action;
use std::collections::BTreeSet;
use tw_proto::{Decision, Join, Msg, ProcessId, SyncTime};

impl Member {
    /// Per-tick behaviour in join state: once per own slot, send a join
    /// message, then check whether we can form the initial group.
    pub(crate) fn join_tick(&mut self, now: SyncTime, actions: &mut Vec<Action>) {
        if !self.cfg.in_slot_of(now, self.pid) {
            return;
        }
        let slot = self.cfg.slot_index(now);
        if slot == self.last_join_slot {
            return; // already acted in this slot
        }
        let has_sent_before = self.last_join_slot != i64::MIN;
        self.last_join_slot = slot;
        let list = self.my_join_set(now);
        // Creation is checked BEFORE sending this slot's join: the paper's
        // at-most-one-decider argument relies on the creator *not*
        // sending, so that processes which miss the first decision age
        // the creator out of their join-lists instead of reusing its
        // messages to elect a second decider.
        if has_sent_before && self.try_form_initial_group(now, &list, actions) {
            return;
        }
        let send_ts = self.stamp(now);
        let msg = Msg::Join(Join {
            sender: self.pid,
            incarnation: self.incarnation,
            send_ts,
            join_list: list
                .iter()
                .map(|p| {
                    let inc = if *p == self.pid {
                        self.incarnation
                    } else {
                        self.join_heard[p].incarnation
                    };
                    (*p, inc)
                })
                .collect(),
            alive: self.my_alive(now),
        });
        self.last_ctrl_sent = Some(msg.clone());
        actions.push(Action::Broadcast(msg));
    }

    /// Debug/experiment access to the current join set.
    #[doc(hidden)]
    pub fn my_join_set_dbg(&self, now: SyncTime) -> Vec<u16> {
        self.my_join_set(now).into_iter().map(|p| p.0).collect()
    }

    /// My current join-list: self plus every process whose join message
    /// arrived within the last cycle. (The paper says "the last N−1
    /// slots"; since each process sends exactly once per cycle in its own
    /// slot, N−1 slots is the gap measured between slot *starts* — with
    /// in-slot sending offsets the robust window is one full cycle.)
    pub(crate) fn my_join_set(&self, now: SyncTime) -> BTreeSet<ProcessId> {
        let horizon = self.cfg.cycle();
        let mut set: BTreeSet<ProcessId> = self
            .join_heard
            .iter()
            .filter(|(_, r)| now - r.ts <= horizon)
            .map(|(p, _)| *p)
            .collect();
        set.insert(self.pid);
        set
    }

    /// Become the initial decider if the paper's two conditions hold:
    /// (1) my join-list contains a majority, and (2) each listed process
    /// sent, in its own last slot, a join message whose join-list equals
    /// mine.
    fn try_form_initial_group(
        &mut self,
        now: SyncTime,
        list: &BTreeSet<ProcessId>,
        actions: &mut Vec<Action>,
    ) -> bool {
        if list.len() < self.cfg.majority() {
            return false;
        }
        for p in list {
            if *p == self.pid {
                continue;
            }
            let Some(rec) = self.join_heard.get(p) else {
                return false;
            };
            if !self.cfg.in_last_slot_of(now, rec.ts, *p) {
                return false;
            }
            if &rec.set != list {
                return false;
            }
        }
        // All agreed: create the group with exactly the join-list.
        self.create_group(now, list.clone(), vec![], vec![], actions);
        true
    }

    /// Record a join message (any state: members track joiners for
    /// integration; joiners build join-lists from these).
    pub(crate) fn handle_join(&mut self, _now: SyncTime, j: Join, _actions: &mut Vec<Action>) {
        if !self.ctrl_fresh(j.sender, j.send_ts, j.alive) {
            return;
        }
        self.buf.note_incarnation(j.sender, j.incarnation);
        let mut set = j.join_set();
        set.insert(j.sender);
        self.join_heard.insert(
            j.sender,
            JoinRecord {
                incarnation: j.incarnation,
                ts: j.send_ts,
                set,
            },
        );
    }

    /// Decision received while in join state: adopt it if the new group
    /// includes me (either the initial group forming around me or my
    /// re-integration completing).
    pub(crate) fn decision_in_join(
        &mut self,
        now: SyncTime,
        d: Decision,
        actions: &mut Vec<Action>,
    ) {
        if !d.view.contains(self.pid) {
            return; // someone else's group; keep joining
        }
        self.view = d.view.clone();
        self.views_installed += 1;
        self.trace_view_installed(now);
        actions.push(Action::InstallView(self.view.clone()));
        // Fresh oal adoption: our copy is empty or stale. (Ordinals from
        // a previous membership were voided on leaving; assignments
        // learned from a state transfer for this join are kept.)
        self.oal = d.oal.clone();
        self.sync_with_oal(now);
        self.last_decision_ts = d.send_ts;
        self.state = CreatorState::FailureFree;
        self.join_heard.clear();
        self.last_join_slot = i64::MIN;
        self.arm_rotation(d.sender, d.send_ts);
        self.decider_due = None;
        if self.succ(d.sender) == self.pid {
            self.decider_due = Some(now + self.cfg.decider_interval);
        }
    }

    /// Decider-side integration check (paper §4.2): a joiner `p` is ready
    /// when (a) its join message is fresh, (b) it is not yet in the view,
    /// (c) I am its successor in the group-to-be, and (d) every current
    /// member's alive-list already contains it.
    pub(crate) fn integration_candidate(&self, now: SyncTime) -> Option<ProcessId> {
        let cycle = self.cfg.cycle();
        'joiner: for (p, rec) in &self.join_heard {
            if self.view.contains(*p) {
                continue;
            }
            if now - rec.ts > cycle {
                continue; // stale join
            }
            // I must be p's successor in view ∪ {p}.
            let prospective = self
                .view
                .with(*p, self.view.id /* id irrelevant for rotation */);
            if prospective.successor_in_group(*p) != Some(self.pid) {
                continue;
            }
            // Every member must have p in its alive-list.
            for m in &self.view.members {
                if *m == self.pid {
                    if !self.my_alive(now).contains(*p) {
                        continue 'joiner;
                    }
                } else {
                    match self.peer_alive.get(m) {
                        Some(list) if list.contains(*p) => {}
                        _ => continue 'joiner,
                    }
                }
            }
            return Some(*p);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use tw_proto::{AliveList, Duration, HwTime, Incarnation, Oal, View, ViewId};

    fn cfg() -> Config {
        Config::for_team(3, Duration::from_millis(10))
    }

    /// A member with a synchronized clock (rank 0 is the time source).
    fn p0() -> Member {
        let mut m = Member::new(ProcessId(0), cfg()).unwrap();
        m.on_start(HwTime(0));
        m.force_clock_sync();
        m
    }

    fn join_msg(sender: u16, ts: SyncTime, list: &[u16]) -> Join {
        Join {
            sender: ProcessId(sender),
            incarnation: Incarnation(0),
            send_ts: ts,
            join_list: list
                .iter()
                .map(|&r| (ProcessId(r), Incarnation(0)))
                .collect(),
            alive: AliveList::EMPTY,
        }
    }

    #[test]
    fn sends_one_join_per_own_slot() {
        let mut m = p0();
        let c = cfg();
        // p0 owns slot 0 (t in [0, slot_len)).
        let t_in_slot = HwTime(c.slot_len.0 / 2);
        let a1 = m.on_tick(t_in_slot);
        assert!(a1
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Join(_)))));
        // Second tick in the same slot: no second join.
        let a2 = m.on_tick(HwTime(c.slot_len.0 / 2 + 100));
        assert!(!a2
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Join(_)))));
        // Not my slot: nothing.
        let a3 = m.on_tick(HwTime(c.slot_len.0 + 100));
        assert!(!a3
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Join(_)))));
        // Next cycle, my slot again: a new join.
        let a4 = m.on_tick(HwTime(c.cycle().0 + 100));
        assert!(a4
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Join(_)))));
    }

    #[test]
    fn join_set_includes_self_and_fresh_senders() {
        let mut m = p0();
        m.on_start(HwTime(0));
        m.handle_join(SyncTime(10), join_msg(1, SyncTime(10), &[1]), &mut vec![]);
        let set = m.my_join_set(SyncTime(20));
        assert!(set.contains(&ProcessId(0)));
        assert!(set.contains(&ProcessId(1)));
        // After a full cycle, p1's join ages out.
        let set2 = m.my_join_set(SyncTime(10) + cfg().cycle() + Duration(1));
        assert!(!set2.contains(&ProcessId(1)));
    }

    #[test]
    fn initial_group_forms_on_matching_majority() {
        let mut m = p0();
        let c = cfg();
        // p0 sends its own join in its cycle-0 slot first (creation
        // requires a previously sent join).
        m.on_tick(HwTime(5));
        // p1 and p2 each sent joins in their own last slots with list
        // {0,1,2}.
        let t1 = SyncTime(c.slot_len.0 + 5); // p1's slot
        let t2 = SyncTime(c.slot_len.0 * 2 + 5); // p2's slot
        m.handle_join(t1, join_msg(1, t1, &[0, 1, 2]), &mut vec![]);
        m.handle_join(t2, join_msg(2, t2, &[0, 1, 2]), &mut vec![]);
        // p0's slot in the next cycle:
        let now_hw = HwTime(c.cycle().0 + 5);
        let actions = m.on_tick(now_hw);
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert_eq!(m.view().len(), 3);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Decision(_)))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::InstallView(v) if v.len() == 3)));
    }

    #[test]
    fn no_group_on_mismatched_lists() {
        let mut m = p0();
        let c = cfg();
        let t1 = SyncTime(c.slot_len.0 + 5);
        // p1's list omits p2 → mismatch with p0's {0,1,2}.
        m.handle_join(t1, join_msg(1, t1, &[0, 1]), &mut vec![]);
        let t2 = SyncTime(c.slot_len.0 * 2 + 5);
        m.handle_join(t2, join_msg(2, t2, &[0, 1, 2]), &mut vec![]);
        m.on_tick(HwTime(c.cycle().0 + 5));
        assert_eq!(m.state(), CreatorState::Join);
    }

    #[test]
    fn no_group_below_majority() {
        let mut m = p0();
        let c = cfg();
        m.on_tick(HwTime(5)); // p0's own cycle-0 join
        let t1 = SyncTime(c.slot_len.0 + 5);
        m.handle_join(t1, join_msg(1, t1, &[0, 1]), &mut vec![]);
        // join set {0,1} = 2 of 3 → majority is 2… but p1's list {0,1}
        // must equal p0's {0,1} — it does! So this SHOULD form a group
        // of 2. Check the complement: only self → no group.
        let mut lone = Member::new(ProcessId(0), c).unwrap();
        lone.on_start(HwTime(0));
        lone.force_clock_sync();
        lone.on_tick(HwTime(5));
        assert_eq!(lone.state(), CreatorState::Join);
        // And the two-process majority does form:
        m.on_tick(HwTime(c.cycle().0 + 5));
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert_eq!(m.view().len(), 2);
    }

    #[test]
    fn decision_in_join_adopts_when_included() {
        let mut m = p0();
        let view = View::new(
            ViewId::new(1, ProcessId(1)),
            [ProcessId(0), ProcessId(1), ProcessId(2)],
        );
        let d = Decision {
            sender: ProcessId(1),
            send_ts: SyncTime(100),
            view,
            oal: Oal::new(),
            alive: AliveList::EMPTY,
        };
        let mut actions = Vec::new();
        m.handle_decision(SyncTime(101), d, &mut actions);
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert_eq!(m.view().len(), 3);
        // p2 is succ(p1); p0 is not the next decider.
        assert!(!m.is_decider());
    }

    #[test]
    fn decision_in_join_ignored_when_excluded() {
        let mut m = p0();
        let view = View::new(ViewId::new(1, ProcessId(1)), [ProcessId(1), ProcessId(2)]);
        let d = Decision {
            sender: ProcessId(1),
            send_ts: SyncTime(100),
            view,
            oal: Oal::new(),
            alive: AliveList::EMPTY,
        };
        m.handle_decision(SyncTime(101), d, &mut vec![]);
        assert_eq!(m.state(), CreatorState::Join);
        assert!(m.view().is_empty());
    }

    #[test]
    fn integration_needs_all_alive_lists() {
        let mut m = p0();
        m.view = View::new(ViewId::new(1, ProcessId(0)), [ProcessId(0), ProcessId(2)]);
        m.state = CreatorState::FailureFree;
        let now = SyncTime(1_000);
        // p1 wants in; succ of p1 in {0,1,2} is p2 — not me (p0): not my
        // call.
        m.handle_join(now, join_msg(1, now, &[1]), &mut vec![]);
        assert_eq!(m.integration_candidate(now), None);
        // Make me the successor: view {0,2}, joiner 1 → succ(1) = 2 ≠ 0.
        // Try joiner with rank that makes p0 the successor: joiner p3?
        // Team is 3 here, so test the positive case directly with a view
        // where I follow the joiner:
        m.view = View::new(ViewId::new(1, ProcessId(0)), [ProcessId(0), ProcessId(1)]);
        m.handle_join(now, join_msg(2, now, &[2]), &mut vec![]);
        // succ(2) in {0,1,2} wraps to 0 = me ✓. But peer alive-lists do
        // not mention p2 yet:
        assert_eq!(m.integration_candidate(now), None);
        // My own alive-list hears p2 (the join did that); p1's must too.
        let mut alive1 = AliveList::EMPTY;
        alive1.set(ProcessId(1));
        alive1.set(ProcessId(2));
        m.peer_alive.insert(ProcessId(1), alive1);
        assert_eq!(m.integration_candidate(now), Some(ProcessId(2)));
    }

    #[test]
    fn stale_joins_not_integrated() {
        let mut m = p0();
        m.view = View::new(ViewId::new(1, ProcessId(0)), [ProcessId(0), ProcessId(1)]);
        m.state = CreatorState::FailureFree;
        let old = SyncTime(0);
        m.handle_join(old, join_msg(2, old, &[2]), &mut vec![]);
        let mut alive1 = AliveList::EMPTY;
        alive1.set(ProcessId(2));
        m.peer_alive.insert(ProcessId(1), alive1);
        let much_later = old + cfg().cycle() + Duration(1);
        assert_eq!(m.integration_candidate(much_later), None);
    }
}
