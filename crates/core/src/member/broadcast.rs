//! Broadcast-side behaviour of a member: proposing updates, buffering
//! received proposals, driving deliveries, and join-time state transfer.

use super::{CreatorState, Member};
use crate::delivery;
use crate::events::Action;
use bytes::Bytes;
use tw_proto::{HwTime, Msg, ProcessId, Proposal, Semantics, StateTransfer, SyncTime};

/// Why a propose call was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// The member is not currently in a group.
    NotMember,
    /// The member's clock is not synchronized.
    NotSynced,
}

impl std::fmt::Display for ProposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProposeError::NotMember => "not a group member",
            ProposeError::NotSynced => "clock not synchronized",
        })
    }
}

impl std::error::Error for ProposeError {}

impl Member {
    /// Broadcast a client update with the given semantics.
    ///
    /// A broadcast may be initiated by a member at any time (paper §2);
    /// the update's `hdo` is the highest ordinal this member currently
    /// knows, which is what its delivery may be predicated on.
    pub fn propose(
        &mut self,
        now_hw: HwTime,
        payload: Bytes,
        semantics: Semantics,
    ) -> Result<Vec<Action>, ProposeError> {
        self.propose_batch(now_hw, std::iter::once((payload, semantics)))
    }

    /// Broadcast a batch of client updates in one dispatch.
    ///
    /// The pending-proposal drain of the hot path: every queued update
    /// shares one clock read and one delivery pass, and the contiguous
    /// `Broadcast` actions let the runtime coalesce the whole batch into
    /// a single multi-frame datagram per destination. Each proposal still
    /// gets its own strictly-increasing `send_ts` (receivers dedup on
    /// timestamps) and its own sequence number, so the per-sender FIFO
    /// order and the §3 total order are exactly those of sequential
    /// `propose` calls. An empty batch is a no-op returning no actions.
    pub fn propose_batch(
        &mut self,
        now_hw: HwTime,
        batch: impl IntoIterator<Item = (Bytes, Semantics)>,
    ) -> Result<Vec<Action>, ProposeError> {
        self.trace_hw = now_hw;
        let now = self.clock.read(now_hw).ok_or(ProposeError::NotSynced)?;
        if self.view.is_empty() || !self.view.contains(self.pid) {
            return Err(ProposeError::NotMember);
        }
        let mut actions = Vec::new();
        for (payload, semantics) in batch {
            self.my_seq += 1;
            let send_ts = self.stamp(now);
            let hdo = self
                .oal
                .highest_ordinal()
                .unwrap_or(tw_proto::Ordinal::ZERO);
            let p = Proposal {
                sender: self.pid,
                incarnation: self.incarnation,
                seq: self.my_seq,
                send_ts,
                hdo,
                semantics,
                payload,
            };
            actions.push(Action::Broadcast(Msg::Proposal(p.clone())));
            self.buf.insert(p);
        }
        if !actions.is_empty() {
            self.try_deliver(now, &mut actions);
        }
        Ok(actions)
    }

    /// Store a received proposal; §4.3 marks apply if it arrives from a
    /// currently suspected process after we asked for its removal.
    pub(crate) fn handle_proposal(&mut self, now: SyncTime, p: Proposal, _actions: &mut [Action]) {
        let id = p.id();
        if !self.buf.insert(p) {
            return;
        }
        // "p marks all those proposals undeliverable that are proposed by
        // q and are received after p has sent the no-decision or
        // reconfiguration message" (§4.3).
        if let (Some(suspect), Some(_)) = (self.suspect, self.sent_nd_at) {
            if id.proposer == suspect {
                self.buf.mark_local(id, now + self.cfg.cycle());
            }
        }
    }

    /// Drive deliveries to a fixpoint.
    pub(crate) fn try_deliver(&mut self, now: SyncTime, actions: &mut Vec<Action>) {
        if self.view.is_empty() {
            return;
        }
        while let Some(id) =
            delivery::next_deliverable(&self.oal, &self.buf, &self.view, &self.cfg, now)
        {
            let p = self.buf.deliver(id);
            let ordinal = self.buf.ordinal_of(id).or_else(|| self.oal.ordinal_of(id));
            if ordinal.is_none() {
                // Delivered before ordering: remember its descriptor for
                // the dpd field of control messages (§4.3).
                self.dpd_descs.insert(id, p.desc());
            }
            self.delivered_count += 1;
            let (semantics, send_ts, view) = (p.semantics, p.send_ts, self.view.id);
            self.trace(now, |at| tw_obs::TraceEvent::Delivered {
                pid: self.pid,
                at,
                id,
                ordinal,
                semantics,
                send_ts,
                view,
            });
            actions.push(Action::Deliver(crate::events::Delivery {
                id,
                ordinal,
                semantics: p.semantics,
                send_ts: p.send_ts,
                payload: p.payload,
            }));
        }
    }

    /// Current `dpd` field content: descriptors of updates delivered
    /// before any decider ordered them.
    pub(crate) fn dpd_field(&self) -> Vec<tw_proto::UpdateDesc> {
        self.dpd_descs.values().copied().collect()
    }

    /// Join-time state transfer from the integrating decider. Accepted in
    /// join state, or just after (the integrating decision may outrace
    /// the transfer on the wire) when it names our current view.
    pub(crate) fn handle_state_transfer(
        &mut self,
        _now: SyncTime,
        st: StateTransfer,
        actions: &mut Vec<Action>,
    ) {
        let acceptable = self.state == CreatorState::Join || st.view_id == self.view.id;
        if st.to != self.pid || !acceptable || self.transferred_state.is_some() {
            return;
        }
        actions.push(Action::InstallAppState(st.app_state.clone()));
        self.transferred_state = Some(st.app_state);
        for (p, next) in st.fifo {
            self.buf.set_fifo_cursor(p, next);
        }
        for p in st.proposals {
            self.buf.insert(p);
        }
        // Assignments of shipped proposals already outside the oal
        // window: learn them so they are never re-ordered.
        for (id, o) in st.ordinals {
            self.buf.learn_ordinal(id, o);
        }
    }

    /// Periodic loss repair: if the oal orders proposals we never
    /// received, ask a member that acknowledged them to retransmit
    /// (rate-limited to one request per proposal per `2D`).
    pub(crate) fn maybe_nack(&mut self, now: SyncTime, actions: &mut Vec<Action>) {
        use tw_proto::DescriptorBody;
        let retry = self.cfg.big_d * 2;
        let mut requests: std::collections::BTreeMap<ProcessId, Vec<tw_proto::ProposalId>> =
            std::collections::BTreeMap::new();
        for (_, desc) in self.oal.iter() {
            let DescriptorBody::Update { id, .. } = &desc.body else {
                continue;
            };
            if desc.undeliverable
                || self.buf.has_received(*id)
                || self.buf.is_locally_marked(*id, now)
            {
                continue;
            }
            if let Some(&last) = self.nack_last.get(id) {
                if now - last < retry {
                    continue;
                }
            }
            // Ask the lowest-ranked acknowledged holder (≠ me).
            let holder = self
                .view
                .members
                .iter()
                .copied()
                .find(|m| *m != self.pid && desc.acks.contains(*m));
            if let Some(h) = holder {
                self.nack_last.insert(*id, now);
                requests.entry(h).or_default().push(*id);
            }
        }
        for (holder, missing) in requests {
            let send_ts = self.stamp(now);
            actions.push(Action::Send(
                holder,
                Msg::Nack(tw_proto::Nack {
                    sender: self.pid,
                    send_ts,
                    missing,
                }),
            ));
        }
    }

    /// Answer a retransmission request with whatever we still hold.
    pub(crate) fn handle_nack(&mut self, nack: tw_proto::Nack, actions: &mut Vec<Action>) {
        for id in nack.missing {
            if let Some(p) = self.buf.retrieve(id) {
                actions.push(Action::Send(nack.sender, Msg::Proposal(p.clone())));
            }
        }
    }

    /// Build the state transfer for a joiner (decider side).
    pub(crate) fn build_state_transfer(&self, to: ProcessId) -> StateTransfer {
        let proposals: Vec<_> = self.buf.pending().cloned().collect();
        let ordinals = proposals
            .iter()
            .filter_map(|p| self.buf.ordinal_of(p.id()).map(|o| (p.id(), o)))
            .collect();
        StateTransfer {
            sender: self.pid,
            to,
            view_id: self.view.id,
            app_state: self.app_snapshot.clone(),
            proposals,
            fifo: self.buf.fifo_cursors(),
            ordinals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use tw_proto::{Duration, View, ViewId};

    fn synced_member(pid: u16) -> Member {
        let mut m = Member::new(
            tw_proto::ProcessId(pid),
            Config::for_team(3, Duration::from_millis(10)),
        )
        .unwrap();
        m.on_start(HwTime(0));
        m.force_clock_sync();
        m
    }

    /// Force p into a group with a synchronized clock (unit-test shortcut;
    /// integration tests build groups the honest way).
    fn in_group(m: &mut Member) {
        m.view = View::new(
            ViewId::new(1, tw_proto::ProcessId(0)),
            [
                tw_proto::ProcessId(0),
                tw_proto::ProcessId(1),
                tw_proto::ProcessId(2),
            ],
        );
        m.state = CreatorState::FailureFree;
    }

    #[test]
    fn propose_requires_sync() {
        let mut m = Member::new(
            tw_proto::ProcessId(1),
            Config::for_team(3, Duration::from_millis(10)),
        )
        .unwrap();
        m.on_start(HwTime(0)); // rank 1: unsynced at start
        in_group(&mut m);
        let r = m.propose(
            HwTime(1),
            Bytes::from_static(b"x"),
            Semantics::UNORDERED_WEAK,
        );
        assert_eq!(r.unwrap_err(), ProposeError::NotSynced);
    }

    #[test]
    fn propose_requires_membership() {
        let mut m = synced_member(0); // rank 0: source, synced
        let r = m.propose(
            HwTime(1),
            Bytes::from_static(b"x"),
            Semantics::UNORDERED_WEAK,
        );
        assert_eq!(r.unwrap_err(), ProposeError::NotMember);
    }

    #[test]
    fn propose_broadcasts_and_self_delivers_weak() {
        let mut m = synced_member(0);
        in_group(&mut m);
        let actions = m
            .propose(
                HwTime(1),
                Bytes::from_static(b"x"),
                Semantics::UNORDERED_WEAK,
            )
            .unwrap();
        assert!(matches!(actions[0], Action::Broadcast(Msg::Proposal(_))));
        // Weak unordered: own update delivers immediately.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Deliver(d) if d.payload == Bytes::from_static(b"x"))));
        assert_eq!(m.delivered_count(), 1);
    }

    #[test]
    fn propose_seq_increments() {
        let mut m = synced_member(0);
        in_group(&mut m);
        m.propose(HwTime(1), Bytes::new(), Semantics::UNORDERED_WEAK)
            .unwrap();
        m.propose(HwTime(2), Bytes::new(), Semantics::UNORDERED_WEAK)
            .unwrap();
        assert_eq!(m.my_seq, 2);
    }

    #[test]
    fn delivered_before_ordering_lands_in_dpd() {
        let mut m = synced_member(0);
        in_group(&mut m);
        m.propose(
            HwTime(1),
            Bytes::from_static(b"x"),
            Semantics::UNORDERED_WEAK,
        )
        .unwrap();
        assert_eq!(m.dpd_field().len(), 1);
    }

    #[test]
    fn state_transfer_only_for_me_in_join() {
        let mut m = synced_member(0);
        let st = StateTransfer {
            sender: tw_proto::ProcessId(1),
            to: tw_proto::ProcessId(2), // not me
            view_id: ViewId::new(1, tw_proto::ProcessId(1)),
            app_state: Bytes::from_static(b"s"),
            proposals: vec![],
            fifo: vec![],
            ordinals: vec![],
        };
        m.handle_state_transfer(SyncTime(0), st.clone(), &mut Vec::new());
        assert!(m.take_transferred_state().is_none());
        let st2 = StateTransfer {
            to: tw_proto::ProcessId(0),
            ..st
        };
        m.handle_state_transfer(SyncTime(0), st2, &mut Vec::new());
        assert_eq!(m.take_transferred_state(), Some(Bytes::from_static(b"s")));
    }

    #[test]
    fn build_state_transfer_carries_pending_and_fifo() {
        let mut m = synced_member(0);
        in_group(&mut m);
        m.propose(HwTime(1), Bytes::from_static(b"x"), Semantics::TOTAL_STRONG)
            .unwrap(); // total: stays pending (no ordinal yet)
        let st = m.build_state_transfer(tw_proto::ProcessId(2));
        assert_eq!(st.proposals.len(), 1);
        assert_eq!(st.to, tw_proto::ProcessId(2));
    }

    #[test]
    fn proposal_from_suspect_after_nd_marked() {
        let mut m = synced_member(0);
        in_group(&mut m);
        m.suspect = Some(tw_proto::ProcessId(1));
        m.sent_nd_at = Some(SyncTime(0));
        let p = Proposal {
            sender: tw_proto::ProcessId(1),
            incarnation: tw_proto::Incarnation(0),
            seq: 1,
            send_ts: SyncTime(1),
            hdo: tw_proto::Ordinal::ZERO,
            semantics: Semantics::UNORDERED_WEAK,
            payload: Bytes::new(),
        };
        m.handle_proposal(SyncTime(2), p.clone(), &mut []);
        assert!(m.buf.is_locally_marked(p.id(), SyncTime(3)));
        // And therefore not delivered by try_deliver.
        let mut actions = Vec::new();
        m.try_deliver(SyncTime(3), &mut actions);
        assert!(actions.is_empty());
    }
}
