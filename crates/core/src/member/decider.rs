//! Decider-role behaviour: accepting decisions, emitting decisions,
//! creating groups (the only way membership ever changes).
//!
//! Only the decider changes group-lists (paper §4.2): it appends a
//! membership descriptor to the oal of its decision message, and every
//! other member adopts the change from there. This file implements the
//! common machinery used by all four group-creation paths (initial join,
//! join integration, single-failure removal, reconfiguration).

use super::{CreatorState, Member};
use crate::events::{Action, LeaveReason};
use crate::undeliverable;
use std::collections::BTreeSet;
use tw_obs::TraceEvent;
use tw_proto::{
    AckBits, Decision, Descriptor, DescriptorBody, Msg, Oal, ProcessId, SyncTime, UpdateDesc,
    View, ViewId,
};

/// The view's member set as a bitset (for allocation-free trace events).
fn member_bits(view: &View) -> AckBits {
    let mut bits = AckBits::EMPTY;
    for p in &view.members {
        bits.set(*p);
    }
    bits
}

impl Member {
    /// Sequence number for a view created now: strictly above everything
    /// this member has seen, and at least the current timewheel slot
    /// index. The slot floor makes view sequence numbers globally
    /// time-ordered, so a group formed after a crash-and-amnesia restart
    /// (or by a previously partitioned creator) can never collide with a
    /// sequence number used by an earlier group — slot owners are unique,
    /// and later formations land in later slots.
    pub(crate) fn next_view_seq(&self, now: SyncTime) -> u64 {
        let slot = self.cfg.slot_index(now).max(1) as u64;
        (self.view.id.seq + 1).max(slot)
    }

    /// Route a received decision by creator state.
    pub(crate) fn handle_decision(
        &mut self,
        now: SyncTime,
        d: Decision,
        actions: &mut Vec<Action>,
    ) {
        if !self.ctrl_fresh(d.sender, d.send_ts, d.alive) {
            return;
        }
        match self.state {
            CreatorState::Join => self.decision_in_join(now, d, actions),
            CreatorState::NFailure => self.decision_in_nfailure(now, d, actions),
            CreatorState::OneFailureReceive if Some(d.sender) == self.suspect => {
                // The suspect is alive after all (its decision reached us,
                // possibly resent): stop concurring (§4.2
                // 1-failure-receive → wrong-suspicion).
                self.adopt_decision_payload(&d);
                self.enter_single_failure(CreatorState::WrongSuspicion, d.sender);
            }
            CreatorState::OneFailureSend if Some(d.sender) == self.suspect => {
                // Fig. 2 has no suspect-decision edge out of
                // 1-failure-send: we already asked for removal; the ring
                // or the wrong-suspicion rescue will resolve it.
            }
            _ => {
                // FailureFree / WrongSuspicion / 1-failure states: a
                // fresher decision restores the rotation.
                if d.send_ts > self.last_decision_ts {
                    self.accept_decision(now, d, actions);
                }
            }
        }
    }

    /// Full acceptance of a decision: adopt view and oal, rearm the
    /// rotation, return to failure-free state.
    pub(crate) fn accept_decision(
        &mut self,
        now: SyncTime,
        d: Decision,
        actions: &mut Vec<Action>,
    ) {
        let (from, send_ts, dview) = (d.sender, d.send_ts, d.view.id);
        self.trace(now, |at| TraceEvent::DecisionReceived {
            pid: self.pid,
            at,
            from,
            send_ts,
            view: dview,
        });
        if d.view.id.seq > self.view.id.seq {
            if !d.view.contains(self.pid) {
                // A new group without me: I am out (paper §4.2
                // wrong-suspicion: "switches to join state").
                self.leave_to_join(LeaveReason::Excluded, actions);
                return;
            }
            self.view = d.view.clone();
            self.views_installed += 1;
            self.trace_view_installed(now);
            actions.push(Action::InstallView(self.view.clone()));
        }
        self.adopt_decision_payload(&d);
        self.state = CreatorState::FailureFree;
        self.suspect = None;
        self.election_oals.clear();
        self.election_dpds.clear();
        self.arm_rotation(d.sender, d.send_ts);
        self.decider_due = None;
        if self.succ(d.sender) == self.pid {
            // I am the next decider; relinquish within D.
            self.decider_due = Some(now + self.cfg.decider_interval);
        }
    }

    /// Emit the `ViewInstalled` trace event for the freshly adopted view.
    pub(crate) fn trace_view_installed(&self, now: SyncTime) {
        let (view, members) = (self.view.id, member_bits(&self.view));
        self.trace(now, |at| TraceEvent::ViewInstalled {
            pid: self.pid,
            at,
            view,
            members,
        });
    }

    /// Adopt the oal carried by a decision: merge, learn ordinals, purge
    /// undeliverables, record own acknowledgements, update the decision
    /// frontier.
    pub(crate) fn adopt_decision_payload(&mut self, d: &Decision) {
        if self.oal.adopt_latest(&d.oal).is_err() {
            // Prefix violation: our oal belongs to a lineage the new
            // decider's election did not include (e.g. we held a
            // decision nobody in the electing majority saw). The decider
            // is authoritative — take its oal wholesale and void every
            // ordinal assignment we learned from the dead lineage.
            self.oal = d.oal.clone();
            self.buf.clear_ordinals();
        }
        self.sync_with_oal(d.send_ts);
        self.last_decision_ts = self.last_decision_ts.max(d.send_ts);
    }

    /// Reconcile buffers with the current oal: learn ordinal
    /// assignments, drop proposals a decider ruled undeliverable, and
    /// mark our own acknowledgement bits for everything we hold.
    pub(crate) fn sync_with_oal(&mut self, now: SyncTime) {
        let me = self.pid;
        let mut to_purge = Vec::new();
        let mut to_ack = Vec::new();
        for (o, desc) in self.oal.iter() {
            match &desc.body {
                DescriptorBody::Update { id, .. } => {
                    self.buf.learn_ordinal(*id, o);
                    self.dpd_descs.remove(id);
                    if desc.undeliverable {
                        to_purge.push(*id);
                    } else if self.buf.has_received(*id)
                        && !self.buf.is_locally_marked(*id, now)
                        && !desc.acks.contains(me)
                    {
                        to_ack.push(o);
                    }
                }
                DescriptorBody::Membership(_) => {
                    if !desc.acks.contains(me) {
                        to_ack.push(o);
                    }
                }
            }
        }
        for id in to_purge {
            self.buf.purge(id);
        }
        for o in to_ack {
            self.oal.ack(o, me);
        }
        // Everything below the window base is stable: stop archiving it.
        self.buf.gc_archive(self.oal.base());
    }

    /// Emit my decision message (I hold the decider role).
    pub(crate) fn emit_decision(&mut self, now: SyncTime, actions: &mut Vec<Action>) {
        debug_assert_eq!(self.state, CreatorState::FailureFree);
        // Join integration (paper §4.2): if a joiner is ready and I am
        // its successor in the group-to-be, extend the membership now.
        if let Some(joiner) = self.integration_candidate(now) {
            let new_view = self
                .view
                .with(joiner, ViewId::new(self.next_view_seq(now), self.pid));
            self.oal
                .append(Descriptor::membership(new_view.clone(), self.pid));
            self.view = new_view;
            self.views_installed += 1;
            self.trace_view_installed(now);
            actions.push(Action::InstallView(self.view.clone()));
            actions.push(Action::Send(
                joiner,
                Msg::StateTransfer(self.build_state_transfer(joiner)),
            ));
        }
        self.sync_with_oal(now);
        // Order every received-but-unordered proposal.
        let pending_ids: Vec<_> = self.buf.pending().map(|p| (p.id(), p.desc())).collect();
        for (id, desc) in pending_ids {
            self.append_update_if_new(id, desc, now);
        }
        // And every update delivered before ordering (dpd pool).
        let dpd: Vec<_> = self.dpd_descs.values().copied().collect();
        for desc in dpd {
            self.append_update_if_new(desc.id, desc, now);
        }
        // Prune the stable prefix (decider-side garbage collection).
        self.oal.prune_stable(&self.view);
        let send_ts = self.stamp(now);
        let view = self.view.id;
        self.trace(now, |at| TraceEvent::DecisionSent {
            pid: self.pid,
            at,
            send_ts,
            view,
        });
        let d = Decision {
            sender: self.pid,
            send_ts,
            view: self.view.clone(),
            oal: self.oal.clone(),
            alive: self.my_alive(now),
        };
        let msg = Msg::Decision(d);
        self.last_ctrl_sent = Some(msg.clone());
        actions.push(Action::Broadcast(msg));
        self.last_decision_ts = send_ts;
        self.decider_due = None;
        self.arm_rotation(self.pid, send_ts);
    }

    fn append_update_if_new(&mut self, id: tw_proto::ProposalId, desc: UpdateDesc, now: SyncTime) {
        if self.buf.ordinal_of(id).is_some() || self.oal.ordinal_of(id).is_some() {
            return;
        }
        if self.buf.is_locally_marked(id, now) {
            return; // under suspicion: neither delivered nor acknowledged
        }
        let o = self.oal.append(Descriptor::update(
            id,
            desc.hdo,
            desc.semantics,
            desc.send_ts,
            self.pid,
        ));
        self.buf.learn_ordinal(id, o);
        self.dpd_descs.remove(&id);
    }

    /// Become the decider of a freshly created group (initial formation,
    /// single-failure removal, or reconfiguration): merge the oal views
    /// gathered during the election, mark §4.3 undeliverables, append the
    /// `dpd` proposals and the membership descriptor, install, and send
    /// the first decision.
    pub(crate) fn create_group(
        &mut self,
        now: SyncTime,
        members: BTreeSet<ProcessId>,
        merge: Vec<Oal>,
        dpds: Vec<UpdateDesc>,
        actions: &mut Vec<Action>,
    ) {
        debug_assert!(members.contains(&self.pid));
        let departed: BTreeSet<ProcessId> = self
            .view
            .members
            .iter()
            .copied()
            .filter(|m| !members.contains(m))
            .collect();
        let new_view = View::new(ViewId::new(self.next_view_seq(now), self.pid), members);

        for v in &merge {
            if self.oal.adopt_latest(v).is_err() {
                // Prefix violation between election views: should be
                // unreachable (the election guarantees prefixes); prefer
                // the longer history we already adopted.
            }
        }
        self.sync_with_oal(now);
        // §4.3: mark undeliverables BEFORE appending anything new, so the
        // "highest known ordinal" is the old deciders' frontier.
        let report = undeliverable::mark_undeliverables(&mut self.oal, &new_view, &departed);
        for id in report.all_ids() {
            self.buf.purge(id);
        }
        let (lost, orphaned, unknown) = (
            report.lost.len() as u32,
            (report.orphan_order.len() + report.orphan_atomicity.len()) as u32,
            report.unknown_dependency.len() as u32,
        );
        self.last_purge = Some(report);
        // Append updates delivered by some member but never ordered.
        let mut all_dpds = dpds;
        all_dpds.extend(self.dpd_descs.values().copied());
        for desc in all_dpds {
            self.append_update_if_new(desc.id, desc, now);
        }
        self.oal
            .append(Descriptor::membership(new_view.clone(), self.pid));

        self.view = new_view;
        self.views_installed += 1;
        self.trace_view_installed(now);
        let view = self.view.id;
        self.trace(now, |at| TraceEvent::Purged {
            pid: self.pid,
            at,
            view,
            lost,
            orphaned,
            unknown,
        });
        actions.push(Action::InstallView(self.view.clone()));
        self.state = CreatorState::FailureFree;
        self.suspect = None;
        self.election_oals.clear();
        self.election_dpds.clear();
        self.reconfig_heard.clear();
        self.nfail_wait = None;
        self.emit_decision(now, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use bytes::Bytes;
    use tw_proto::{AliveList, Duration, HwTime, Semantics};

    fn member_in_group(pid: u16) -> Member {
        let mut m = Member::new(
            ProcessId(pid),
            Config::for_team(3, Duration::from_millis(10)),
        )
        .unwrap();
        m.on_start(HwTime(0));
        m.force_clock_sync();
        m.view = View::new(
            ViewId::new(1, ProcessId(0)),
            [ProcessId(0), ProcessId(1), ProcessId(2)],
        );
        m.state = CreatorState::FailureFree;
        m
    }

    fn decision_from(sender: u16, ts: i64, view: &View, oal: &Oal) -> Decision {
        Decision {
            sender: ProcessId(sender),
            send_ts: SyncTime(ts),
            view: view.clone(),
            oal: oal.clone(),
            alive: AliveList::EMPTY,
        }
    }

    #[test]
    fn accepting_decision_rearms_rotation_and_assigns_role() {
        let mut m = member_in_group(1);
        let view = m.view.clone();
        let d = decision_from(0, 100, &view, &Oal::new());
        let mut actions = Vec::new();
        m.handle_decision(SyncTime(101), d, &mut actions);
        // p1 is succ(p0): assumes the decider role.
        assert!(m.is_decider());
        assert_eq!(m.watchdog.expected(), Some(ProcessId(1)));
        assert_eq!(m.last_decision_ts, SyncTime(100));
    }

    #[test]
    fn non_successor_does_not_become_decider() {
        let mut m = member_in_group(2);
        let view = m.view.clone();
        let mut actions = Vec::new();
        m.handle_decision(
            SyncTime(101),
            decision_from(0, 100, &view, &Oal::new()),
            &mut actions,
        );
        assert!(!m.is_decider());
        assert_eq!(m.watchdog.expected(), Some(ProcessId(1)));
    }

    #[test]
    fn stale_decision_ignored() {
        let mut m = member_in_group(1);
        let view = m.view.clone();
        let mut actions = Vec::new();
        m.handle_decision(
            SyncTime(101),
            decision_from(0, 100, &view, &Oal::new()),
            &mut actions,
        );
        m.decider_due = None; // pretend we handled the duty
                              // An older decision from p2 must not regress anything.
        m.handle_decision(
            SyncTime(102),
            decision_from(2, 50, &view, &Oal::new()),
            &mut actions,
        );
        assert_eq!(m.last_decision_ts, SyncTime(100));
        assert!(!m.is_decider());
    }

    #[test]
    fn excluding_view_sends_member_to_join() {
        let mut m = member_in_group(2);
        let smaller = View::new(ViewId::new(2, ProcessId(0)), [ProcessId(0), ProcessId(1)]);
        let mut actions = Vec::new();
        m.handle_decision(
            SyncTime(101),
            decision_from(0, 100, &smaller, &Oal::new()),
            &mut actions,
        );
        assert_eq!(m.state(), CreatorState::Join);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::LeftGroup {
                reason: LeaveReason::Excluded
            }
        )));
    }

    #[test]
    fn emit_decision_orders_pending_proposals() {
        let mut m = member_in_group(0); // rank 0: clock synced as source
        m.propose(HwTime(1), Bytes::from_static(b"x"), Semantics::TOTAL_STRONG)
            .unwrap();
        let mut actions = Vec::new();
        m.emit_decision(SyncTime(50), &mut actions);
        let Some(Action::Broadcast(Msg::Decision(d))) = actions
            .iter()
            .find(|a| matches!(a, Action::Broadcast(Msg::Decision(_))))
        else {
            panic!("no decision broadcast");
        };
        assert_eq!(d.oal.len(), 1, "pending proposal ordered");
        assert_eq!(d.sender, ProcessId(0));
        assert!(!m.is_decider(), "role relinquished after sending");
    }

    #[test]
    fn emit_decision_orders_dpd_updates() {
        let mut m = member_in_group(0);
        // A weak unordered update delivered before ordering:
        m.propose(
            HwTime(1),
            Bytes::from_static(b"x"),
            Semantics::UNORDERED_WEAK,
        )
        .unwrap();
        assert_eq!(m.dpd_field().len(), 1);
        let mut actions = Vec::new();
        m.emit_decision(SyncTime(50), &mut actions);
        assert!(m.dpd_field().is_empty(), "ordered now");
        assert_eq!(m.oal.len(), 1);
    }

    #[test]
    fn create_group_removes_and_purges() {
        let mut m = member_in_group(0);
        // p2's proposal nobody received (only its own ack would exist;
        // we emulate by appending a descriptor with no survivor acks).
        let mut d = Descriptor::update(
            tw_proto::ProposalId::new(ProcessId(2), 1),
            tw_proto::Ordinal::ZERO,
            Semantics::UNORDERED_WEAK,
            SyncTime(1),
            ProcessId(2),
        );
        d.acks = tw_proto::AckBits::EMPTY;
        m.oal.append(d);
        let survivors: BTreeSet<_> = [ProcessId(0), ProcessId(1)].into_iter().collect();
        let mut actions = Vec::new();
        m.create_group(SyncTime(100), survivors, vec![], vec![], &mut actions);
        assert_eq!(m.view().len(), 2);
        assert!(!m.view().contains(ProcessId(2)));
        assert_eq!(m.view().id.seq, 2);
        let purge = m.last_purge().unwrap();
        assert_eq!(purge.lost.len(), 1);
        // First decision of the new group broadcast.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Decision(_)))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::InstallView(v) if v.len() == 2)));
    }

    #[test]
    fn suspect_decision_moves_receiver_to_wrong_suspicion() {
        let mut m = member_in_group(2);
        m.enter_single_failure(CreatorState::OneFailureReceive, ProcessId(0));
        let view = m.view.clone();
        let mut actions = Vec::new();
        m.handle_decision(
            SyncTime(101),
            decision_from(0, 100, &view, &Oal::new()),
            &mut actions,
        );
        assert_eq!(m.state(), CreatorState::WrongSuspicion);
        assert_eq!(m.suspect, Some(ProcessId(0)));
    }
}
