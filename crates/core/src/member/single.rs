//! The single-failure election and the wrong-suspicion path (paper §4.1,
//! §4.2: the failure-free, wrong-suspicion, 1-failure-receive and
//! 1-failure-send states).
//!
//! When the expected sender falls silent, the suspicion travels around
//! the ring as a chain of no-decision messages: the suspect's successor
//! starts it, every concurring member forwards it within `D`, and the
//! suspect's predecessor terminates it by removing the suspect (if a
//! majority would remain) or escalating to the reconfiguration election.
//! A member holding the allegedly missed decision refuses to concur
//! (wrong-suspicion) and rescues the rotation by becoming decider itself
//! when the ring reaches it — the group is never reformed over a false
//! alarm.

use super::{CreatorState, Member};
use crate::events::Action;
use tw_obs::TraceEvent;
use tw_proto::{DescriptorBody, Msg, NoDecision, ProcessId, SyncTime};

impl Member {
    /// The failure detector reported a timeout failure of `suspect`.
    pub(crate) fn on_timeout_failure(
        &mut self,
        now: SyncTime,
        suspect: ProcessId,
        actions: &mut Vec<Action>,
    ) {
        match self.state {
            CreatorState::FailureFree => {
                if suspect == self.pid {
                    // Degenerate: the watchdog is waiting for *us* (we
                    // are the decider and somehow missed our duty —
                    // e.g. a scheduling stall). Make up for it now.
                    self.emit_decision(now, actions);
                    return;
                }
                if !self.cfg.single_failure_fastpath {
                    // A2 ablation: skip the fast path entirely.
                    self.enter_nfailure(now, actions);
                    return;
                }
                self.begin_single_failure(now, suspect, actions);
            }
            CreatorState::WrongSuspicion
            | CreatorState::OneFailureReceive
            | CreatorState::OneFailureSend => {
                // A second failure inside the election window: multiple
                // failures (Fig. 2: timeout → n-failure).
                self.enter_nfailure(now, actions);
            }
            CreatorState::Join | CreatorState::NFailure => {}
        }
    }

    /// One election per cycle (paper §4.1): a process that contributed a
    /// no-decision message to an election may not take part in another
    /// single-failure election until a full cycle has passed — the old
    /// messages could otherwise combine with the new election to
    /// instantiate two deciders. Blocked participants fall through to
    /// the (slot-serialized) reconfiguration election instead.
    fn may_participate_in_election(&self, now: SyncTime) -> bool {
        match self.sent_nd_at {
            Some(t) => now - t > self.cfg.cycle(),
            None => true,
        }
    }

    /// Start the single-failure election for `suspect` from failure-free
    /// state.
    fn begin_single_failure(
        &mut self,
        now: SyncTime,
        suspect: ProcessId,
        actions: &mut Vec<Action>,
    ) {
        let view = self.view.id;
        self.trace(now, |at| TraceEvent::SuspicionRaised {
            pid: self.pid,
            at,
            suspect,
            view,
        });
        if !self.may_participate_in_election(now) {
            self.enter_nfailure(now, actions);
            return;
        }
        self.election_oals.clear();
        self.election_dpds.clear();
        if self.succ(suspect) == self.pid {
            // I am the suspect's successor: I open the no-decision ring.
            self.send_no_decision(now, suspect, actions);
            self.enter_single_failure(CreatorState::OneFailureSend, suspect);
            self.arm_ring(suspect, self.pid, now);
        } else {
            self.enter_single_failure(CreatorState::OneFailureReceive, suspect);
            // First expected ring message: the suspect's successor's ND.
            let first = self.succ(suspect);
            self.watchdog.arm(first, now, self.cfg.election_timeout);
        }
    }

    /// Broadcast my no-decision message for `suspect` and apply the §4.3
    /// local undeliverable marks.
    pub(crate) fn send_no_decision(
        &mut self,
        now: SyncTime,
        suspect: ProcessId,
        actions: &mut Vec<Action>,
    ) {
        // §4.3: mark the suspect's proposals that are ordered in the oal
        // but that I never received; they may be lost with it. The mark
        // expires after one cycle unless renewed.
        let until = now + self.cfg.cycle();
        let unreceived: Vec<_> = self
            .oal
            .iter()
            .filter_map(|(_, d)| match &d.body {
                DescriptorBody::Update { id, .. }
                    if id.proposer == suspect && !self.buf.has_received(*id) =>
                {
                    Some(*id)
                }
                _ => None,
            })
            .collect();
        for id in unreceived {
            self.buf.mark_local(id, until);
        }
        let send_ts = self.stamp(now);
        let view = self.view.id;
        self.trace(now, |at| TraceEvent::NoDecisionHop {
            pid: self.pid,
            at,
            suspect,
            send_ts,
            view,
        });
        let nd = NoDecision {
            sender: self.pid,
            send_ts,
            suspect,
            view_id: self.view.id,
            oal_view: self.oal.clone(),
            dpd: self.dpd_field(),
            alive: self.my_alive(now),
        };
        let msg = Msg::NoDecision(nd);
        self.sent_nd_at = Some(send_ts);
        self.last_ctrl_sent = Some(msg.clone());
        actions.push(Action::Broadcast(msg));
    }

    /// Route a received no-decision message by creator state.
    pub(crate) fn handle_no_decision(
        &mut self,
        now: SyncTime,
        nd: NoDecision,
        actions: &mut Vec<Action>,
    ) {
        if !self.ctrl_fresh(nd.sender, nd.send_ts, nd.alive) {
            return;
        }
        if nd.view_id != self.view.id {
            return; // a different group's election
        }
        // Election messages are only usable for about (N−1)·D after they
        // were sent (paper §4.1's at-most-one-decider argument).
        if now - nd.send_ts > self.cfg.big_d * (self.cfg.n as i64 - 1) {
            return;
        }
        // Gather §4.3 election state from every ND we accept.
        self.election_oals.push(nd.oal_view.clone());
        for d in &nd.dpd {
            self.election_dpds.insert(d.id, *d);
        }
        match self.state {
            CreatorState::FailureFree => self.nd_in_failure_free(now, nd, actions),
            CreatorState::OneFailureReceive => self.nd_in_one_failure_receive(now, nd, actions),
            CreatorState::OneFailureSend => self.nd_in_one_failure_send(now, nd),
            CreatorState::WrongSuspicion => self.nd_in_wrong_suspicion(now, nd, actions),
            CreatorState::Join | CreatorState::NFailure => {}
        }
    }

    fn nd_in_failure_free(&mut self, now: SyncTime, nd: NoDecision, actions: &mut Vec<Action>) {
        let expected = self.watchdog.expected();
        if Some(nd.sender) == expected {
            // The member I expected a decision from instead claims the
            // previous decider failed — but I have that decision (that is
            // why my expectation had advanced): wrong suspicion.
            if nd.suspect == self.pid {
                self.enter_single_failure(CreatorState::WrongSuspicion, nd.suspect);
                self.arm_ring(nd.suspect, nd.sender, nd.send_ts);
                self.resend_last_ctrl(actions);
            } else if self.ring_succ(nd.suspect, nd.sender) == self.pid {
                // The very ND that made me wrong-suspicious came from my
                // ring predecessor: the ring has already reached me, and
                // I hold the missed decision — rescue immediately.
                self.state = CreatorState::FailureFree;
                self.suspect = None;
                let (suspect, view) = (nd.suspect, self.view.id);
                self.trace(now, |at| TraceEvent::WrongSuspicionRescue {
                    pid: self.pid,
                    at,
                    suspect,
                    view,
                });
                self.emit_decision(now, actions);
            } else {
                self.enter_single_failure(CreatorState::WrongSuspicion, nd.suspect);
                self.arm_ring(nd.suspect, nd.sender, nd.send_ts);
            }
        } else if Some(nd.suspect) == expected {
            if !self.may_participate_in_election(now) {
                self.enter_nfailure(now, actions);
                return;
            }
            // Someone else noticed the silence before my tick did; concur.
            let suspect = nd.suspect;
            let view = self.view.id;
            self.trace(now, |at| TraceEvent::SuspicionRaised {
                pid: self.pid,
                at,
                suspect,
                view,
            });
            self.election_oals.push(nd.oal_view);
            if self.ring_succ(suspect, nd.sender) == self.pid {
                self.send_no_decision(now, suspect, actions);
                self.enter_single_failure(CreatorState::OneFailureSend, suspect);
                self.arm_ring(suspect, self.pid, now);
            } else {
                self.enter_single_failure(CreatorState::OneFailureReceive, suspect);
                self.arm_ring(suspect, nd.sender, nd.send_ts);
            }
        }
        // Any other ND: not addressed to my position in the rotation.
    }

    fn nd_in_one_failure_receive(
        &mut self,
        now: SyncTime,
        nd: NoDecision,
        actions: &mut Vec<Action>,
    ) {
        if Some(nd.suspect) != self.suspect || Some(nd.sender) != self.watchdog.expected() {
            return;
        }
        let suspect = nd.suspect;
        if self.ring_succ(suspect, nd.sender) == self.pid {
            // The ring reached me.
            if self.view.predecessor_in_group(suspect) == Some(self.pid) {
                // I am the suspect's predecessor: every member but the
                // suspect has concurred. Remove it if a majority remains
                // — unless my own stale no-decision from an earlier
                // election is still live, in which case creating here
                // could pair with that election into two deciders.
                if !self.may_participate_in_election(now) {
                    self.enter_nfailure(now, actions);
                    return;
                }
                if self.view.len() > self.cfg.majority() {
                    let members: std::collections::BTreeSet<_> = self
                        .view
                        .members
                        .iter()
                        .copied()
                        .filter(|m| *m != suspect)
                        .collect();
                    let merge = std::mem::take(&mut self.election_oals);
                    let dpds: Vec<_> = std::mem::take(&mut self.election_dpds)
                        .into_values()
                        .collect();
                    self.create_group(now, members, merge, dpds, actions);
                } else {
                    // Removal would break the majority property: escalate.
                    self.enter_nfailure(now, actions);
                }
            } else {
                // Concur and forward the ring.
                self.send_no_decision(now, suspect, actions);
                self.enter_single_failure(CreatorState::OneFailureSend, suspect);
                self.arm_ring(suspect, self.pid, now);
            }
        } else {
            // Ring progressing elsewhere; keep watching the next member.
            self.arm_ring(suspect, nd.sender, nd.send_ts);
        }
    }

    fn nd_in_one_failure_send(&mut self, _now: SyncTime, nd: NoDecision) {
        if Some(nd.suspect) != self.suspect || Some(nd.sender) != self.watchdog.expected() {
            return;
        }
        // Fig. 2: ND from expected sender → stay in 1-failure-send.
        self.arm_ring(nd.suspect, nd.sender, nd.send_ts);
    }

    fn nd_in_wrong_suspicion(&mut self, now: SyncTime, nd: NoDecision, actions: &mut Vec<Action>) {
        if nd.suspect == self.pid {
            // I am suspected but alive: resend my last control message so
            // the group can still see it (no guarantee — timed
            // asynchronous systems cannot promise a live member is never
            // excluded).
            self.resend_last_ctrl(actions);
        }
        if Some(nd.suspect) != self.suspect || Some(nd.sender) != self.watchdog.expected() {
            return;
        }
        let suspect = nd.suspect;
        if self.ring_succ(suspect, nd.sender) == self.pid {
            // The ring reached me, and I do not concur: I have the
            // allegedly missed decision. Rescue the rotation — become
            // decider with the information from that decision, *without*
            // any membership change.
            self.state = CreatorState::FailureFree;
            self.suspect = None;
            self.election_oals.clear();
            self.election_dpds.clear();
            let view = self.view.id;
            self.trace(now, |at| TraceEvent::WrongSuspicionRescue {
                pid: self.pid,
                at,
                suspect,
                view,
            });
            self.emit_decision(now, actions);
        } else {
            self.arm_ring(suspect, nd.sender, nd.send_ts);
        }
    }

    fn resend_last_ctrl(&self, actions: &mut Vec<Action>) {
        if let Some(msg) = &self.last_ctrl_sent {
            actions.push(Action::Broadcast(msg.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use tw_proto::{AliveList, Decision, Duration, HwTime, Oal, View, ViewId};

    fn cfg() -> Config {
        Config::for_team(5, Duration::from_millis(10))
    }

    /// A synced member of the 5-group {0..4} that has just accepted a
    /// decision from `last_decider` at ts=1000.
    fn member_after_decision(pid: u16, last_decider: u16) -> Member {
        let mut m = Member::new(ProcessId(pid), cfg()).unwrap();
        m.on_start(HwTime(0));
        m.force_clock_sync();
        m.view = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
        m.state = CreatorState::FailureFree;
        let d = Decision {
            sender: ProcessId(last_decider),
            send_ts: SyncTime(1_000),
            view: m.view.clone(),
            oal: Oal::new(),
            alive: AliveList::EMPTY,
        };
        let mut actions = Vec::new();
        m.handle_decision(SyncTime(1_001), d, &mut actions);
        m.decider_due = None; // tests drive duties explicitly
        m
    }

    fn nd(sender: u16, suspect: u16, ts: i64, view_id: ViewId) -> NoDecision {
        NoDecision {
            sender: ProcessId(sender),
            send_ts: SyncTime(ts),
            suspect: ProcessId(suspect),
            view_id,
            oal_view: Oal::new(),
            dpd: vec![],
            alive: AliveList::EMPTY,
        }
    }

    #[test]
    fn successor_of_suspect_opens_the_ring() {
        // Last decider p0; expected p1 fails silently. p2 = succ(p1).
        let mut m = member_after_decision(2, 0);
        let mut actions = Vec::new();
        let deadline = SyncTime(1_000) + cfg().decision_timeout;
        m.on_timeout_failure(deadline + Duration(1), ProcessId(1), &mut actions);
        assert_eq!(m.state(), CreatorState::OneFailureSend);
        assert_eq!(m.suspect, Some(ProcessId(1)));
        assert!(actions.iter().any(
            |a| matches!(a, Action::Broadcast(Msg::NoDecision(n)) if n.suspect == ProcessId(1))
        ));
        // Next expected ring member: p3.
        assert_eq!(m.watchdog.expected(), Some(ProcessId(3)));
    }

    #[test]
    fn non_successor_waits_in_receive_state() {
        let mut m = member_after_decision(3, 0);
        let mut actions = Vec::new();
        m.on_timeout_failure(SyncTime(100_000), ProcessId(1), &mut actions);
        assert_eq!(m.state(), CreatorState::OneFailureReceive);
        assert!(actions.is_empty());
        assert_eq!(m.watchdog.expected(), Some(ProcessId(2)));
    }

    #[test]
    fn ring_forwards_through_receive_members() {
        let mut m = member_after_decision(3, 0);
        let vid = m.view.id;
        m.on_timeout_failure(SyncTime(100_000), ProcessId(1), &mut vec![]);
        // p2's ND arrives; ring_succ(1, 2) = 3 = me → I forward.
        let mut actions = Vec::new();
        m.handle_no_decision(SyncTime(100_010), nd(2, 1, 100_005, vid), &mut actions);
        assert_eq!(m.state(), CreatorState::OneFailureSend);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::NoDecision(_)))));
        assert_eq!(m.watchdog.expected(), Some(ProcessId(4)));
    }

    #[test]
    fn predecessor_terminates_ring_and_removes_suspect() {
        // Suspect p1; its predecessor in {0..4} is p0.
        let mut m = member_after_decision(0, 4);
        let vid = m.view.id;
        m.on_timeout_failure(SyncTime(100_000), ProcessId(1), &mut vec![]);
        assert_eq!(m.state(), CreatorState::OneFailureReceive);
        // Ring: p2 → p3 → p4 → me.
        m.handle_no_decision(SyncTime(100_010), nd(2, 1, 100_005, vid), &mut vec![]);
        m.handle_no_decision(SyncTime(100_020), nd(3, 1, 100_015, vid), &mut vec![]);
        let mut actions = Vec::new();
        m.handle_no_decision(SyncTime(100_030), nd(4, 1, 100_025, vid), &mut actions);
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert_eq!(m.view().len(), 4);
        assert!(!m.view().contains(ProcessId(1)));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Decision(_)))));
    }

    #[test]
    fn exactly_majority_escalates_to_nfailure() {
        // 5-team but the current group is only {0,1,2} (= majority).
        let mut m = member_after_decision(0, 2);
        m.view = View::new(ViewId::new(2, ProcessId(0)), [0, 1, 2].map(ProcessId));
        let vid = m.view.id;
        m.on_timeout_failure(SyncTime(100_000), ProcessId(1), &mut vec![]);
        // Ring over {0,2}: p2 opens; I am pred(1).
        let mut actions = Vec::new();
        m.handle_no_decision(SyncTime(100_010), nd(2, 1, 100_005, vid), &mut actions);
        assert_eq!(m.state(), CreatorState::NFailure);
        assert_eq!(m.view().len(), 3, "no removal below majority");
    }

    #[test]
    fn wrong_suspicion_on_nd_from_expected() {
        // I have p0's decision; expected sender is p1. p1's ND (it missed
        // p0's decision) must move me to wrong-suspicion, not an election.
        let mut m = member_after_decision(3, 0);
        let vid = m.view.id;
        let mut actions = Vec::new();
        m.handle_no_decision(SyncTime(1_500), nd(1, 0, 1_400, vid), &mut actions);
        assert_eq!(m.state(), CreatorState::WrongSuspicion);
        assert_eq!(m.suspect, Some(ProcessId(0)));
        assert_eq!(m.view().len(), 5, "no membership change");
    }

    #[test]
    fn wrong_suspicion_rescue_becomes_decider() {
        // p2 holds p0's decision. p1's ND(suspect=p0) arrives from p2's
        // ring predecessor (ring over view\{p0}: p1 → p2 → …), so p2
        // rescues IMMEDIATELY: becomes decider with no membership change.
        let mut m = member_after_decision(2, 0);
        let vid = m.view.id;
        let mut rescue_actions = Vec::new();
        m.handle_no_decision(SyncTime(1_500), nd(1, 0, 1_400, vid), &mut rescue_actions);
        assert_eq!(m.state(), CreatorState::FailureFree);
        assert!(rescue_actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Decision(_)))));
        assert_eq!(m.view().len(), 5, "immediate rescue keeps membership");
        // A member further down the ring (p3) transitions to
        // wrong-suspicion first, then rescues when the ring reaches it.
        let mut m3 = member_after_decision(3, 0);
        m3.handle_no_decision(SyncTime(1_500), nd(1, 0, 1_400, vid), &mut vec![]);
        assert_eq!(m3.state(), CreatorState::WrongSuspicion);
        assert_eq!(m3.watchdog.expected(), Some(ProcessId(2)));
        let mut actions = Vec::new();
        m3.handle_no_decision(SyncTime(1_600), nd(2, 0, 1_550, vid), &mut actions);
        assert_eq!(m3.state(), CreatorState::FailureFree);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Decision(_)))));
        assert_eq!(m3.view().len(), 5, "rescue keeps the membership");
        let _ = m;
    }

    #[test]
    fn suspected_member_resends_last_control_message() {
        // p0 sent the last decision; p1 (its successor) missed it and
        // suspects p0. p0 receives p1's ND.
        let mut m = member_after_decision(0, 4);
        let vid = m.view.id;
        // p0 emits its own decision (it is succ(p4)): set up last_ctrl.
        let mut actions = Vec::new();
        m.emit_decision(SyncTime(2_000), &mut actions);
        actions.clear();
        m.handle_no_decision(SyncTime(2_500), nd(1, 0, 2_400, vid), &mut actions);
        assert_eq!(m.state(), CreatorState::WrongSuspicion);
        // The resent decision:
        assert!(actions.iter().any(
            |a| matches!(a, Action::Broadcast(Msg::Decision(d)) if d.send_ts == SyncTime(2_000))
        ));
    }

    #[test]
    fn timeout_in_election_escalates() {
        let mut m = member_after_decision(3, 0);
        m.on_timeout_failure(SyncTime(100_000), ProcessId(1), &mut vec![]);
        assert_eq!(m.state(), CreatorState::OneFailureReceive);
        let mut actions = Vec::new();
        m.on_timeout_failure(SyncTime(200_000), ProcessId(2), &mut actions);
        assert_eq!(m.state(), CreatorState::NFailure);
    }

    #[test]
    fn foreign_view_nds_ignored() {
        let mut m = member_after_decision(3, 0);
        let other = ViewId::new(9, ProcessId(4));
        m.handle_no_decision(SyncTime(1_500), nd(1, 0, 1_400, other), &mut vec![]);
        assert_eq!(m.state(), CreatorState::FailureFree);
    }
}
