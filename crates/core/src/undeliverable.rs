//! §4.3 — classification and marking of undeliverable proposals.
//!
//! When a membership change removes processes, some in-flight updates can
//! never be delivered without violating the ordering/atomicity semantics.
//! The *new decider*, holding the freshest oal (merged from the views in
//! the no-decision/reconfiguration messages that elected it), marks four
//! categories of descriptors undeliverable — after which every member
//! purges the corresponding proposals:
//!
//! 1. **lost** — proposed by a departed member and received by *no*
//!    member of the new group;
//! 2. **orphan-order** — total/time-ordered, from the same departed
//!    proposer as an earlier undeliverable update (FIFO would break);
//! 3. **orphan-atomicity** — strong/strict, depending (via `hdo`) on an
//!    undeliverable update (the dependency can never be satisfied);
//! 4. **unknown-dependency** — strong/strict with an `hdo` beyond the
//!    highest ordinal any surviving member knows (the departed decider
//!    ordered updates in a decision nobody received).
//!
//! The paper scopes categories 1–2 to departed proposers explicitly;
//! categories 3–4 are applied to *any* proposer here, because a surviving
//! member's update whose dependency is lost is just as undeliverable —
//! see DESIGN.md for the interpretation note.

use std::collections::{BTreeMap, BTreeSet};
use tw_proto::{DescriptorBody, Oal, Ordering, Ordinal, ProcessId, ProposalId, View};

/// What was marked, by category — reported by experiments (T9).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PurgeReport {
    /// Category 1.
    pub lost: Vec<(Ordinal, ProposalId)>,
    /// Category 2.
    pub orphan_order: Vec<(Ordinal, ProposalId)>,
    /// Category 3.
    pub orphan_atomicity: Vec<(Ordinal, ProposalId)>,
    /// Category 4.
    pub unknown_dependency: Vec<(Ordinal, ProposalId)>,
}

impl PurgeReport {
    /// Total marked descriptors.
    pub fn total(&self) -> usize {
        self.lost.len()
            + self.orphan_order.len()
            + self.orphan_atomicity.len()
            + self.unknown_dependency.len()
    }

    /// All marked proposal ids.
    pub fn all_ids(&self) -> impl Iterator<Item = ProposalId> + '_ {
        self.lost
            .iter()
            .chain(&self.orphan_order)
            .chain(&self.orphan_atomicity)
            .chain(&self.unknown_dependency)
            .map(|(_, id)| *id)
    }
}

/// Mark undeliverable descriptors in `oal` for a membership change from
/// which `departed` processes were removed and `new_group` survives.
///
/// Must be called on the merged oal (all new members' acknowledgement
/// views folded in) **before** the new decider appends `dpd` proposals or
/// the membership descriptor, so the "highest known ordinal" is the old
/// deciders' frontier.
pub fn mark_undeliverables(
    oal: &mut Oal,
    new_group: &View,
    departed: &BTreeSet<ProcessId>,
) -> PurgeReport {
    let mut report = PurgeReport::default();
    let highest_known = Ordinal(oal.next_ordinal().0 - 1);
    // Walk ordinals ascending, to a fixpoint. Honest proposers always
    // have hdo < their own assigned ordinal (they reference what they
    // knew when proposing), which makes a single ascending pass
    // sufficient — but a Byzantine-ish or corrupted hdo can point
    // forward, so we iterate until no new marks appear to stay total on
    // arbitrary input.
    let mut undeliv: BTreeSet<Ordinal> = BTreeSet::new();
    // Per departed proposer: smallest undeliverable ordinal so far.
    let mut first_undeliv_of: BTreeMap<ProcessId, Ordinal> = BTreeMap::new();
    // Pre-existing marks participate in the cascade.
    for (o, d) in oal.iter() {
        if d.undeliverable {
            undeliv.insert(o);
            if let DescriptorBody::Update { id, .. } = &d.body {
                first_undeliv_of.entry(id.proposer).or_insert(o);
            }
        }
    }

    let ordinals: Vec<Ordinal> = oal.iter().map(|(o, _)| o).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for o in ordinals.iter().copied() {
            let d = oal.get(o).expect("ordinal in window");
            if d.undeliverable {
                continue;
            }
            let DescriptorBody::Update {
                id, hdo, semantics, ..
            } = &d.body
            else {
                continue; // membership descriptors are never purged
            };
            let (id, hdo, semantics) = (*id, *hdo, *semantics);
            let from_departed = departed.contains(&id.proposer);

            let mut mark = None;
            // 1. lost: departed proposer, no surviving member has it.
            if from_departed && d.acks.count_in(new_group) == 0 {
                mark = Some(Cat::Lost);
            }
            // 2. orphan-order: ordered update behind an undeliverable update
            //    of the same (departed) proposer.
            if mark.is_none() && from_departed && semantics.ordering != Ordering::Unordered {
                if let Some(&first) = first_undeliv_of.get(&id.proposer) {
                    if first < o {
                        mark = Some(Cat::OrphanOrder);
                    }
                }
            }
            // 3. orphan-atomicity: strong/strict depending on an
            //    undeliverable ordinal.
            if mark.is_none()
                && semantics.atomicity.needs_acks()
                && undeliv.iter().any(|&u| u <= hdo)
            {
                mark = Some(Cat::OrphanAtomicity);
            }
            // 4. unknown dependency: strong/strict depending past the
            //    surviving frontier.
            if mark.is_none() && semantics.atomicity.needs_acks() && hdo > highest_known {
                mark = Some(Cat::UnknownDependency);
            }

            if let Some(cat) = mark {
                oal.mark_undeliverable(o);
                undeliv.insert(o);
                changed = true;
                let first = first_undeliv_of.entry(id.proposer).or_insert(o);
                *first = (*first).min(o);
                match cat {
                    Cat::Lost => report.lost.push((o, id)),
                    Cat::OrphanOrder => report.orphan_order.push((o, id)),
                    Cat::OrphanAtomicity => report.orphan_atomicity.push((o, id)),
                    Cat::UnknownDependency => report.unknown_dependency.push((o, id)),
                }
            }
        }
    }
    report
}

enum Cat {
    Lost,
    OrphanOrder,
    OrphanAtomicity,
    UnknownDependency,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_proto::{Descriptor, ProposalId, Semantics, SyncTime, ViewId};

    fn survivors() -> View {
        View::new(
            ViewId::new(2, ProcessId(0)),
            [ProcessId(0), ProcessId(1), ProcessId(2)],
        )
    }

    fn departed() -> BTreeSet<ProcessId> {
        [ProcessId(3)].into_iter().collect()
    }

    fn desc(proposer: u16, seq: u64, sem: Semantics, hdo: Ordinal, acks: &[u16]) -> Descriptor {
        let mut d = Descriptor::update(
            ProposalId::new(ProcessId(proposer), seq),
            hdo,
            sem,
            SyncTime::ZERO,
            ProcessId(proposer),
        );
        for &r in acks {
            d.acks.set(ProcessId(r));
        }
        d
    }

    #[test]
    fn lost_proposal_marked() {
        let mut oal = Oal::new();
        // Departed p3's proposal, acked only by p3 itself.
        let o = oal.append(desc(3, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, &[]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.lost, vec![(o, ProposalId::new(ProcessId(3), 1))]);
        assert!(oal.get(o).unwrap().undeliverable);
    }

    #[test]
    fn received_proposal_from_departed_not_lost() {
        let mut oal = Oal::new();
        // p1 (survivor) acked it.
        let o = oal.append(desc(3, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, &[1]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.total(), 0);
        assert!(!oal.get(o).unwrap().undeliverable);
    }

    #[test]
    fn orphan_order_cascades_from_lost() {
        let mut oal = Oal::new();
        let sem_total = Semantics::new(Ordering::Total, tw_proto::Atomicity::Weak);
        let o1 = oal.append(desc(3, 1, sem_total, Ordinal::ZERO, &[])); // lost
        let o2 = oal.append(desc(3, 2, sem_total, Ordinal::ZERO, &[1])); // received!
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.lost.len(), 1);
        assert_eq!(r.orphan_order, vec![(o2, ProposalId::new(ProcessId(3), 2))]);
        assert!(oal.get(o1).unwrap().undeliverable);
        assert!(oal.get(o2).unwrap().undeliverable);
    }

    #[test]
    fn unordered_sibling_not_orphaned() {
        let mut oal = Oal::new();
        oal.append(desc(3, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, &[])); // lost
        let o2 = oal.append(desc(3, 2, Semantics::UNORDERED_WEAK, Ordinal::ZERO, &[1]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.orphan_order.len(), 0);
        assert!(!oal.get(o2).unwrap().undeliverable);
    }

    #[test]
    fn orphan_atomicity_hits_survivor_proposals() {
        let mut oal = Oal::new();
        let o1 = oal.append(desc(3, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, &[])); // lost
                                                                                        // Survivor p1's strong update depends on o1.
        let sem = Semantics::new(Ordering::Unordered, tw_proto::Atomicity::Strong);
        let o2 = oal.append(desc(1, 1, sem, o1, &[0, 1, 2]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(
            r.orphan_atomicity,
            vec![(o2, ProposalId::new(ProcessId(1), 1))]
        );
    }

    #[test]
    fn weak_update_depending_on_lost_survives() {
        let mut oal = Oal::new();
        let o1 = oal.append(desc(3, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, &[])); // lost
        let o2 = oal.append(desc(1, 1, Semantics::UNORDERED_WEAK, o1, &[1]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.total(), 1);
        assert!(!oal.get(o2).unwrap().undeliverable);
    }

    #[test]
    fn unknown_dependency_detected() {
        let mut oal = Oal::new();
        let sem = Semantics::new(Ordering::Unordered, tw_proto::Atomicity::Strict);
        // hdo = 5, but only ordinal 1 exists: the departed decider's last
        // decision (assigning 2..=5) reached nobody.
        let o = oal.append(desc(3, 1, sem, Ordinal(5), &[1]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(
            r.unknown_dependency,
            vec![(o, ProposalId::new(ProcessId(3), 1))]
        );
    }

    #[test]
    fn membership_descriptors_never_marked() {
        let mut oal = Oal::new();
        let o = oal.append(Descriptor::membership(survivors(), ProcessId(0)));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.total(), 0);
        assert!(!oal.get(o).unwrap().undeliverable);
    }

    #[test]
    fn preexisting_marks_feed_cascade() {
        let mut oal = Oal::new();
        let sem_total = Semantics::new(Ordering::Total, tw_proto::Atomicity::Weak);
        let o1 = oal.append(desc(3, 1, sem_total, Ordinal::ZERO, &[1]));
        oal.mark_undeliverable(o1); // marked by an earlier election
        let o2 = oal.append(desc(3, 2, sem_total, Ordinal::ZERO, &[1]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.orphan_order, vec![(o2, ProposalId::new(ProcessId(3), 2))]);
        // o1 is not re-reported.
        assert_eq!(r.lost.len(), 0);
    }

    #[test]
    fn report_totals_and_ids() {
        let mut oal = Oal::new();
        oal.append(desc(3, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, &[]));
        let r = mark_undeliverables(&mut oal, &survivors(), &departed());
        assert_eq!(r.total(), 1);
        assert_eq!(r.all_ids().count(), 1);
    }
}
