//! Protocol constants and the slot/cycle arithmetic of the timewheel.
//!
//! The timed asynchronous model is parameterized by a handful of bounds
//! (paper §2): the one-way timeout δ of the datagram service, the maximum
//! scheduling delay σ, the hardware-clock drift bound ρ, and the
//! synchronized-clock deviation ε. The protocol adds `D`, the maximum
//! interval after which a decider must send its decision message.
//!
//! From these, the timewheel derives its *slots*: the synchronized time
//! base is divided into cycles of `N` slots, one per team member, each of
//! length at least `D + δ` (paper §4.2). All slot arithmetic lives here
//! so the ablation experiments (A1) can violate the bound deliberately
//! and observe the consequences.

use tw_clock::ClockSyncConfig;
use tw_proto::{Duration, ProcessId, SyncTime};

/// Static protocol parameters shared by every team member.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Team size `N` (2..=64).
    pub n: usize,
    /// One-way timeout δ of the datagram service.
    pub delta: Duration,
    /// Maximum decider interval `D`: a decider relinquishes its role by
    /// sending a decision message within `D` of assuming it.
    pub big_d: Duration,
    /// Maximum scheduling delay σ (used in slot sizing and margins).
    pub sigma: Duration,
    /// Hardware clock drift bound ρ.
    pub rho: f64, // tw-lint: allow(float-state) -- paper's drift *bound* parameter; never mixed into protocol arithmetic, which derives integral ε/Δ micros once at config time
    /// Synchronized clock deviation bound ε.
    pub epsilon: Duration,
    /// Granularity at which deadline predicates are evaluated. Detection
    /// latencies are quantized by this; keep it well below `D`.
    pub tick: Duration,
    /// When a decider actually emits its decision after assuming the
    /// role. Must be ≤ `D − σ` to honour the `D` bound under scheduling
    /// delays.
    pub decider_interval: Duration,
    /// How long after the last accepted control-message timestamp the
    /// failure detector waits for the next expected control message
    /// before suspecting its sender (paper §4.2 uses `2·D`).
    pub decision_timeout: Duration,
    /// Expected-sender timeout during single-failure elections (one ring
    /// hop: send within `D`, deliver within δ, clocks off by ε).
    pub election_timeout: Duration,
    /// Slot length of the reconfiguration/join timewheel. The paper
    /// requires ≥ `D + δ`; [`Config::for_team`] sets `D + δ + ε + σ`.
    /// Exposed so the A1 ablation can set an invalid length.
    pub slot_len: Duration,
    /// Delivery latency for *time-ordered* updates: delivered once the
    /// synchronized clock passes `send_ts + time_delivery_latency`.
    pub time_delivery_latency: Duration,
    /// Clock synchronization substrate parameters.
    pub clock: ClockSyncConfig,
    /// Enable the single-failure fast path (no-decision ring). Disabling
    /// it sends every timeout failure straight to the slotted
    /// reconfiguration election — the A2 ablation, quantifying what the
    /// paper's optimization buys.
    pub single_failure_fastpath: bool,
}

/// A violated configuration constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid timewheel config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// A conservative configuration for a team of `n` on a network with
    /// one-way timeout `delta`, choosing `D = 4δ` and deriving the rest.
    pub fn for_team(n: usize, delta: Duration) -> Config {
        let big_d = delta * 4;
        let sigma = delta / 4;
        let clock = ClockSyncConfig::for_team(n, delta);
        let epsilon = clock.epsilon();
        Config {
            n,
            delta,
            big_d,
            sigma,
            rho: clock.rho,
            epsilon,
            tick: delta / 2,
            decider_interval: big_d / 2,
            decision_timeout: big_d * 2,
            election_timeout: big_d * 2,
            slot_len: big_d + delta + epsilon + sigma,
            time_delivery_latency: delta * 2 + epsilon,
            clock,
            single_failure_fastpath: true,
        }
    }

    /// Check all model constraints; called by [`Member::new`]
    /// (`Member::new_unchecked` skips it for ablations).
    ///
    /// [`Member::new`]: crate::member::Member::new
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n < 2 || self.n > 64 {
            return Err(ConfigError(format!("team size {} not in 2..=64", self.n)));
        }
        if self.delta <= Duration::ZERO {
            return Err(ConfigError("delta must be positive".into()));
        }
        if self.big_d < self.delta {
            return Err(ConfigError(format!(
                "D ({}) must be at least delta ({})",
                self.big_d, self.delta
            )));
        }
        if self.decider_interval + self.sigma > self.big_d {
            return Err(ConfigError(format!(
                "decider_interval ({}) + sigma ({}) exceeds D ({})",
                self.decider_interval, self.sigma, self.big_d
            )));
        }
        if self.slot_len < self.big_d + self.delta {
            return Err(ConfigError(format!(
                "slot_len ({}) below the paper's bound D + delta ({})",
                self.slot_len,
                self.big_d + self.delta
            )));
        }
        if self.decision_timeout < self.big_d + self.delta {
            return Err(ConfigError(format!(
                "decision_timeout ({}) cannot cover one decider hop D + delta ({})",
                self.decision_timeout,
                self.big_d + self.delta
            )));
        }
        if self.tick <= Duration::ZERO || self.tick > self.big_d {
            return Err(ConfigError(format!(
                "tick ({}) must be in (0, D]",
                self.tick
            )));
        }
        Ok(())
    }

    /// Majority size: ⌊n/2⌋ + 1.
    #[inline]
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Cycle length: `n` slots.
    #[inline]
    pub fn cycle(&self) -> Duration {
        self.slot_len * self.n as i64
    }

    /// Index of the slot containing synchronized time `t` (global,
    /// monotone).
    #[inline]
    pub fn slot_index(&self, t: SyncTime) -> i64 {
        t.0.div_euclid(self.slot_len.0)
    }

    /// The team member owning the slot at `t`.
    #[inline]
    pub fn slot_owner(&self, t: SyncTime) -> ProcessId {
        ProcessId((self.slot_index(t).rem_euclid(self.n as i64)) as u16)
    }

    /// Is `t` inside `p`'s slot?
    #[inline]
    pub fn in_slot_of(&self, t: SyncTime, p: ProcessId) -> bool {
        self.slot_owner(t) == p
    }

    /// Start of the slot containing `t`.
    #[inline]
    pub fn slot_start(&self, t: SyncTime) -> SyncTime {
        SyncTime(self.slot_index(t) * self.slot_len.0)
    }

    /// Was timestamp `ts` within the most recent completed-or-current
    /// slot of `p` as seen from `now`? ("in p's last time slot",
    /// paper §4.2: join/reconfig messages must be fresh — sent in the
    /// sender's slot at most one cycle ago.)
    pub fn in_last_slot_of(&self, now: SyncTime, ts: SyncTime, p: ProcessId) -> bool {
        if !self.in_slot_of(ts, p) {
            return false;
        }
        let age = now - ts;
        age >= Duration::ZERO && age <= self.cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> Config {
        Config::for_team(n, Duration::from_millis(10))
    }

    #[test]
    fn default_config_is_valid() {
        for n in 2..=13 {
            cfg(n).validate().unwrap();
        }
    }

    #[test]
    fn rejects_tiny_and_huge_teams() {
        assert!(cfg(1).validate().is_err());
        assert!(cfg(65).validate().is_err());
    }

    #[test]
    fn rejects_short_slots() {
        let mut c = cfg(3);
        c.slot_len = c.big_d; // < D + delta
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_lazy_decider() {
        let mut c = cfg(3);
        c.decider_interval = c.big_d; // + sigma > D
        assert!(c.validate().is_err());
    }

    #[test]
    fn majority_math() {
        assert_eq!(cfg(3).majority(), 2);
        assert_eq!(cfg(4).majority(), 3);
        assert_eq!(cfg(5).majority(), 3);
        assert_eq!(cfg(7).majority(), 4);
    }

    #[test]
    fn slot_rotation_covers_all_members() {
        let c = cfg(3);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..3 {
            let t = SyncTime(c.slot_len.0 * i + 1);
            seen.insert(c.slot_owner(t));
        }
        assert_eq!(seen.len(), 3);
        // Wraps around.
        assert_eq!(
            c.slot_owner(SyncTime(c.slot_len.0 * 3 + 1)),
            c.slot_owner(SyncTime(1))
        );
    }

    #[test]
    fn slot_owner_handles_negative_time() {
        // Synchronized clocks can start anywhere, including below zero.
        let c = cfg(3);
        let t = SyncTime(-1);
        let owner = c.slot_owner(t);
        assert!(owner.rank() < 3);
        assert!(c.in_slot_of(t, owner));
    }

    #[test]
    fn slot_start_floors() {
        let c = cfg(3);
        let t = SyncTime(c.slot_len.0 + 17);
        assert_eq!(c.slot_start(t), SyncTime(c.slot_len.0));
    }

    #[test]
    fn in_last_slot_of_requires_right_owner_and_freshness() {
        let c = cfg(3);
        // p1 owns slot index 1.
        let ts = SyncTime(c.slot_len.0 + 5);
        let p1 = ProcessId(1);
        assert!(c.in_last_slot_of(ts + Duration(10), ts, p1));
        // Wrong owner.
        assert!(!c.in_last_slot_of(ts + Duration(10), ts, ProcessId(0)));
        // Too old (more than a cycle).
        let much_later = ts + c.cycle() + Duration(1);
        assert!(!c.in_last_slot_of(much_later, ts, p1));
        // From the future.
        assert!(!c.in_last_slot_of(ts - Duration(1), ts, p1));
    }

    #[test]
    fn cycle_is_n_slots() {
        let c = cfg(5);
        assert_eq!(c.cycle(), c.slot_len * 5);
    }

    #[test]
    fn config_error_display() {
        let e = cfg(1).validate().unwrap_err();
        assert!(e.to_string().contains("team size"));
    }
}
