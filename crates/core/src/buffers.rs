//! Proposal buffers (paper §2: "each member maintains two buffers — a
//! proposal buffer … and a proposal descriptor buffer").
//!
//! [`ProposalBuffer`] merges the paper's *pb* (full proposals awaiting
//! delivery) and the delivery-relevant parts of its *pdb* (what do I know
//! about each proposal: its ordinal once assigned, whether it was
//! delivered, whether it is locally marked undeliverable during an
//! election, §4.3). It also enforces the per-sender FIFO ("general")
//! delivery condition and incarnation-based stale-life rejection.

use std::collections::{BTreeMap, BTreeSet};
use tw_proto::{Incarnation, Ordinal, ProcessId, Proposal, ProposalId, SyncTime};

/// Per-sender FIFO cursor with out-of-order consumption support: purged
/// (undeliverable) proposals consume their sequence number without being
/// delivered, so later proposals from the same sender do not block.
#[derive(Debug, Clone, Default)]
struct FifoCursor {
    /// Next sequence number eligible for delivery.
    next: u64,
    /// Sequence numbers ≥ `next` already consumed out of order.
    consumed_ahead: BTreeSet<u64>,
}

impl FifoCursor {
    fn start_at(next: u64) -> Self {
        FifoCursor {
            next,
            consumed_ahead: BTreeSet::new(),
        }
    }

    fn ready(&self, seq: u64) -> bool {
        seq == self.next
    }

    fn consume(&mut self, seq: u64) {
        if seq == self.next {
            self.next += 1;
            while self.consumed_ahead.remove(&self.next) {
                self.next += 1;
            }
        } else if seq > self.next {
            self.consumed_ahead.insert(seq);
        }
        // seq < next: already consumed, ignore.
    }
}

/// The per-member store of received, delivered and purged proposals.
#[derive(Debug, Clone, Default)]
pub struct ProposalBuffer {
    /// Received, not yet delivered, not purged.
    pending: BTreeMap<ProposalId, Proposal>,
    /// Ids delivered to the application.
    delivered: BTreeSet<ProposalId>,
    /// Ordinals learned from the oal (kept after the oal prunes them).
    ordinals: BTreeMap<ProposalId, Ordinal>,
    /// §4.3 local undeliverable marks, with their expiry (one cycle,
    /// unless renewed).
    local_marks: BTreeMap<ProposalId, SyncTime>,
    /// FIFO cursors per proposer.
    fifo: BTreeMap<ProcessId, FifoCursor>,
    /// Latest known incarnation per proposer.
    incarnations: BTreeMap<ProcessId, Incarnation>,
    /// Delivered proposals retained for retransmission until their
    /// descriptor is stable (pruned from the oal).
    archive: BTreeMap<ProposalId, Proposal>,
}

impl ProposalBuffer {
    /// Empty buffer; FIFO cursors start at sequence 1 for every sender.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a received proposal. Returns false (and ignores it) if it
    /// is a duplicate, already delivered, from a stale incarnation, or
    /// below the sender's FIFO cursor (already consumed).
    pub fn insert(&mut self, p: Proposal) -> bool {
        let id = p.id();
        if let Some(&known) = self.incarnations.get(&p.sender) {
            if p.incarnation < known {
                return false;
            }
        }
        if self.delivered.contains(&id) || self.pending.contains_key(&id) {
            return false;
        }
        if let Some(c) = self.fifo.get(&p.sender) {
            if p.seq < c.next || c.consumed_ahead.contains(&p.seq) {
                return false;
            }
        }
        self.pending.insert(id, p);
        true
    }

    /// Record `p`'s current incarnation (from a join message). Raising it
    /// purges pending proposals from older incarnations of `p` and moves
    /// `p`'s FIFO cursor to the start of the new incarnation's sequence
    /// band (sequence numbers are banded: `seq = incarnation << 32 | k`),
    /// so the recovered process's fresh proposals are not blocked behind
    /// its dead incarnation's stream.
    pub fn note_incarnation(&mut self, p: ProcessId, inc: Incarnation) {
        let prev = self.incarnations.get(&p).copied();
        self.incarnations.insert(p, inc);
        if prev.map_or(inc.0 > 0, |old| inc > old) {
            self.pending
                .retain(|id, pr| id.proposer != p || pr.incarnation >= inc);
            let band_start = ((inc.0 as u64) << 32) + 1;
            let cur = self
                .fifo
                .entry(p)
                .or_insert_with(|| FifoCursor::start_at(1));
            if cur.next < band_start {
                *cur = FifoCursor::start_at(band_start);
            }
        }
    }

    /// The pending proposal with this id, if any.
    pub fn get(&self, id: ProposalId) -> Option<&Proposal> {
        self.pending.get(&id)
    }

    /// Is this proposal in the pending buffer?
    pub fn has_pending(&self, id: ProposalId) -> bool {
        self.pending.contains_key(&id)
    }

    /// Has this proposal been received at some point (pending or
    /// delivered)?
    pub fn has_received(&self, id: ProposalId) -> bool {
        self.pending.contains_key(&id) || self.delivered.contains(&id)
    }

    /// Has it been delivered?
    pub fn is_delivered(&self, id: ProposalId) -> bool {
        self.delivered.contains(&id)
    }

    /// Iterate pending proposals in id order.
    pub fn pending(&self) -> impl Iterator<Item = &Proposal> {
        self.pending.values()
    }

    /// Number of pending proposals.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Record an ordinal assignment learned from the oal.
    pub fn learn_ordinal(&mut self, id: ProposalId, o: Ordinal) {
        self.ordinals.insert(id, o);
    }

    /// The ordinal of `id`, if learned.
    pub fn ordinal_of(&self, id: ProposalId) -> Option<Ordinal> {
        self.ordinals.get(&id).copied()
    }

    /// Forget every learned ordinal assignment. Called when the member
    /// adopts an oal from a *diverged* lineage (a new group re-ordered
    /// in-flight updates): the old assignments are void and must be
    /// re-learned from the new window, or re-assigned by a future
    /// decider.
    pub fn clear_ordinals(&mut self) {
        self.ordinals.clear();
    }

    /// Does the sender's FIFO cursor permit delivering `id` now?
    pub fn fifo_ready(&self, id: ProposalId) -> bool {
        match self.fifo.get(&id.proposer) {
            Some(c) => c.ready(id.seq),
            None => id.seq == 1,
        }
    }

    /// Initialize a FIFO cursor (state transfer at join). Pending
    /// proposals below the cursor are dropped: the transferred
    /// application state already covers them. Cursors never move
    /// backwards — a late or duplicate transfer must not rewind FIFO.
    pub fn set_fifo_cursor(&mut self, p: ProcessId, next: u64) {
        let next = next.max(1);
        if let Some(cur) = self.fifo.get(&p) {
            if cur.next >= next {
                return;
            }
        }
        self.fifo.insert(p, FifoCursor::start_at(next));
        self.pending
            .retain(|id, _| id.proposer != p || id.seq >= next);
    }

    /// Current FIFO cursors (for state transfer to a joiner).
    pub fn fifo_cursors(&self) -> Vec<(ProcessId, u64)> {
        self.fifo.iter().map(|(p, c)| (*p, c.next)).collect()
    }

    fn cursor_mut(&mut self, p: ProcessId) -> &mut FifoCursor {
        self.fifo
            .entry(p)
            .or_insert_with(|| FifoCursor::start_at(1))
    }

    /// Deliver `id`: move from pending to delivered, consuming its FIFO
    /// slot. Returns the proposal. Panics if not pending (callers check
    /// delivery conditions first). The proposal is archived for
    /// retransmission until its descriptor becomes stable.
    pub fn deliver(&mut self, id: ProposalId) -> Proposal {
        let p = self.pending.remove(&id).expect("deliver of non-pending");
        self.cursor_mut(id.proposer).consume(id.seq);
        self.delivered.insert(id);
        self.archive.insert(id, p.clone());
        p
    }

    /// Retrieve a proposal we still hold (pending or archived) for
    /// retransmission.
    pub fn retrieve(&self, id: ProposalId) -> Option<&Proposal> {
        self.pending.get(&id).or_else(|| self.archive.get(&id))
    }

    /// Drop archived proposals whose ordinals fell below the stable
    /// frontier `base` — everyone has them, no retransmission possible.
    pub fn gc_archive(&mut self, base: tw_proto::Ordinal) {
        let ordinals = &self.ordinals;
        self.archive.retain(|id, _| match ordinals.get(id) {
            Some(&o) => o >= base,
            None => true, // not ordered yet: keep
        });
    }

    /// Purge `id` as undeliverable (decider verdict, §4.3): drop it from
    /// pending and consume its FIFO slot so successors can proceed
    /// (unless they are orphaned — the decider marks those too).
    pub fn purge(&mut self, id: ProposalId) {
        self.pending.remove(&id);
        self.local_marks.remove(&id);
        self.cursor_mut(id.proposer).consume(id.seq);
    }

    /// §4.3: locally mark `id` undeliverable until `until` (one cycle).
    /// Marked proposals are neither delivered nor acknowledged while the
    /// mark is live; it expires automatically ("an undeliverable mark on
    /// a proposal is automatically cleared after one cycle, unless it was
    /// set again").
    pub fn mark_local(&mut self, id: ProposalId, until: SyncTime) {
        let e = self.local_marks.entry(id).or_insert(until);
        *e = (*e).max(until);
    }

    /// Is `id` currently locally marked?
    pub fn is_locally_marked(&self, id: ProposalId, now: SyncTime) -> bool {
        match self.local_marks.get(&id) {
            Some(&until) => now <= until,
            None => false,
        }
    }

    /// Drop expired local marks.
    pub fn expire_marks(&mut self, now: SyncTime) {
        self.local_marks.retain(|_, &mut until| now <= until);
    }

    /// Delivered proposals that still lack an ordinal — the paper's `dpd`
    /// field content. Requires the original descriptors, which we keep in
    /// pending → so we reconstruct from delivered set ∩ recorded descs;
    /// the member records descriptors of delivered-without-ordinal
    /// updates separately via [`ProposalBuffer::learn_ordinal`] absence.
    pub fn delivered_without_ordinal(&self) -> Vec<ProposalId> {
        self.delivered
            .iter()
            .filter(|id| !self.ordinals.contains_key(id))
            .copied()
            .collect()
    }

    /// Wipe everything (crash).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tw_proto::Semantics;

    fn prop(sender: u16, seq: u64) -> Proposal {
        Proposal {
            sender: ProcessId(sender),
            incarnation: Incarnation(0),
            seq,
            send_ts: SyncTime(seq as i64),
            hdo: Ordinal::ZERO,
            semantics: Semantics::UNORDERED_WEAK,
            payload: Bytes::from_static(b"p"),
        }
    }

    #[test]
    fn insert_rejects_duplicates() {
        let mut b = ProposalBuffer::new();
        assert!(b.insert(prop(0, 1)));
        assert!(!b.insert(prop(0, 1)));
        assert_eq!(b.pending_len(), 1);
    }

    #[test]
    fn fifo_order_enforced() {
        let mut b = ProposalBuffer::new();
        b.insert(prop(0, 1));
        b.insert(prop(0, 2));
        assert!(b.fifo_ready(ProposalId::new(ProcessId(0), 1)));
        assert!(!b.fifo_ready(ProposalId::new(ProcessId(0), 2)));
        b.deliver(ProposalId::new(ProcessId(0), 1));
        assert!(b.fifo_ready(ProposalId::new(ProcessId(0), 2)));
    }

    #[test]
    fn purge_unblocks_successors() {
        let mut b = ProposalBuffer::new();
        b.insert(prop(0, 1));
        b.insert(prop(0, 2));
        b.purge(ProposalId::new(ProcessId(0), 1));
        assert!(b.fifo_ready(ProposalId::new(ProcessId(0), 2)));
        assert!(!b.has_pending(ProposalId::new(ProcessId(0), 1)));
    }

    #[test]
    fn out_of_order_purge_then_delivery() {
        let mut b = ProposalBuffer::new();
        b.insert(prop(0, 1));
        b.insert(prop(0, 2));
        b.insert(prop(0, 3));
        // Purge #2 first (e.g. marked undeliverable by a new decider).
        b.purge(ProposalId::new(ProcessId(0), 2));
        assert!(b.fifo_ready(ProposalId::new(ProcessId(0), 1)));
        b.deliver(ProposalId::new(ProcessId(0), 1));
        // Cursor must have skipped over consumed #2 to #3.
        assert!(b.fifo_ready(ProposalId::new(ProcessId(0), 3)));
    }

    #[test]
    fn delivered_proposals_rejected_on_reinsert() {
        let mut b = ProposalBuffer::new();
        b.insert(prop(0, 1));
        b.deliver(ProposalId::new(ProcessId(0), 1));
        assert!(!b.insert(prop(0, 1)), "retransmission of delivered");
        assert!(b.is_delivered(ProposalId::new(ProcessId(0), 1)));
    }

    #[test]
    fn stale_incarnation_rejected() {
        let mut b = ProposalBuffer::new();
        b.note_incarnation(ProcessId(0), Incarnation(2));
        let mut old = prop(0, 1);
        old.incarnation = Incarnation(1);
        assert!(!b.insert(old));
        // Fresh proposals live in the incarnation's sequence band.
        let band = (2u64 << 32) + 1;
        let mut fresh = prop(0, band);
        fresh.incarnation = Incarnation(2);
        assert!(b.insert(fresh));
        assert!(b.fifo_ready(ProposalId::new(ProcessId(0), band)));
    }

    #[test]
    fn raising_incarnation_purges_old_pending() {
        let mut b = ProposalBuffer::new();
        b.insert(prop(0, 1)); // incarnation 0
        b.note_incarnation(ProcessId(0), Incarnation(1));
        assert!(!b.has_pending(ProposalId::new(ProcessId(0), 1)));
    }

    #[test]
    fn ordinals_survive_and_gate_dpd() {
        let mut b = ProposalBuffer::new();
        b.insert(prop(0, 1));
        b.insert(prop(0, 2));
        b.deliver(ProposalId::new(ProcessId(0), 1));
        b.learn_ordinal(ProposalId::new(ProcessId(0), 2), Ordinal(7));
        assert_eq!(
            b.delivered_without_ordinal(),
            vec![ProposalId::new(ProcessId(0), 1)]
        );
        b.learn_ordinal(ProposalId::new(ProcessId(0), 1), Ordinal(3));
        assert!(b.delivered_without_ordinal().is_empty());
        assert_eq!(
            b.ordinal_of(ProposalId::new(ProcessId(0), 1)),
            Some(Ordinal(3))
        );
    }

    #[test]
    fn local_marks_expire() {
        let mut b = ProposalBuffer::new();
        let id = ProposalId::new(ProcessId(0), 1);
        b.mark_local(id, SyncTime(100));
        assert!(b.is_locally_marked(id, SyncTime(50)));
        assert!(b.is_locally_marked(id, SyncTime(100)));
        assert!(!b.is_locally_marked(id, SyncTime(101)));
        b.expire_marks(SyncTime(101));
        assert!(!b.is_locally_marked(id, SyncTime(50)), "expired mark gone");
    }

    #[test]
    fn mark_extension_keeps_latest_expiry() {
        let mut b = ProposalBuffer::new();
        let id = ProposalId::new(ProcessId(0), 1);
        b.mark_local(id, SyncTime(100));
        b.mark_local(id, SyncTime(200));
        b.mark_local(id, SyncTime(150)); // does not shorten
        assert!(b.is_locally_marked(id, SyncTime(200)));
    }

    #[test]
    fn joiner_fifo_cursor_setup() {
        let mut b = ProposalBuffer::new();
        b.set_fifo_cursor(ProcessId(3), 42);
        assert!(!b.insert(prop(3, 41)), "below cursor: already consumed");
        assert!(b.insert(prop(3, 42)));
        assert!(b.fifo_ready(ProposalId::new(ProcessId(3), 42)));
        let cursors = b.fifo_cursors();
        assert!(cursors.contains(&(ProcessId(3), 42)));
    }

    #[test]
    fn clear_wipes_state() {
        let mut b = ProposalBuffer::new();
        b.insert(prop(0, 1));
        b.deliver(ProposalId::new(ProcessId(0), 1));
        b.clear();
        assert!(!b.is_delivered(ProposalId::new(ProcessId(0), 1)));
        assert!(b.insert(prop(0, 1)));
    }
}
