//! The delivery conditions of the timewheel atomic broadcast.
//!
//! An update is handed to the application only when three conditions hold
//! (paper §2, detailed in \[19]):
//!
//! * **general** — per-sender FIFO: a proposer's updates are delivered in
//!   proposal order (enforced via [`ProposalBuffer`]'s cursors);
//! * **atomicity** — *weak*: none beyond receipt; *strong*: every update
//!   the proposal can depend on (ordinal ≤ its `hdo`) has been received
//!   by a majority of the group; *strict*: by *all* of the group
//!   (stability);
//! * **order** — *unordered*: none; *total*: the update's ordinal is
//!   known and every ordered update with a smaller ordinal has been
//!   delivered (or ruled undeliverable); *time*: the synchronized clock
//!   has passed `send_ts + Δ_deliv` and every known time-ordered update
//!   with a smaller timestamp has been delivered (or ruled out).
//!
//! All functions here are pure predicates over the member's oal, buffers
//! and clock reading — the `Member` drives them to a fixpoint after every
//! state change.

use crate::buffers::ProposalBuffer;
use crate::config::Config;
use tw_proto::{Atomicity, DescriptorBody, Oal, Ordering, Ordinal, Proposal, SyncTime, View};

/// Is every descriptor with ordinal ≤ `through` acknowledged by a
/// majority of `group` (or already pruned, which implies full stability)?
pub fn majority_through(oal: &Oal, through: Ordinal, group: &View) -> bool {
    if through >= oal.next_ordinal() {
        // Depends on ordinals nobody we know has assigned yet.
        return false;
    }
    let mut o = oal.base();
    while o <= through {
        match oal.get(o) {
            Some(d) => {
                if !d.undeliverable && !d.acks.majority_of(group) {
                    return false;
                }
            }
            None => return false,
        }
        o = o.next();
    }
    true
}

/// Is every descriptor with ordinal ≤ `through` stable (acknowledged by
/// all of `group`, or pruned, or undeliverable)?
pub fn stable_through(oal: &Oal, through: Ordinal, group: &View) -> bool {
    if through >= oal.next_ordinal() {
        return false;
    }
    oal.stable_through(through, group)
}

/// Does the atomicity condition hold for `p`?
pub fn atomicity_ok(oal: &Oal, group: &View, p: &Proposal) -> bool {
    match p.semantics.atomicity {
        Atomicity::Weak => true,
        Atomicity::Strong => majority_through(oal, p.hdo, group),
        Atomicity::Strict => stable_through(oal, p.hdo, group),
    }
}

/// Does the order condition hold for `p`?
///
/// `buf` supplies delivery/ordinal knowledge; `now` drives time-ordered
/// release.
pub fn order_ok(
    oal: &Oal,
    buf: &ProposalBuffer,
    cfg: &Config,
    now: SyncTime,
    p: &Proposal,
) -> bool {
    let id = p.id();
    match p.semantics.ordering {
        Ordering::Unordered => true,
        Ordering::Total => {
            let Some(o) = buf.ordinal_of(id).or_else(|| oal.ordinal_of(id)) else {
                return false; // not ordered yet
            };
            // Every ordered update at a smaller ordinal (still in the
            // window) must be delivered or undeliverable. Pruned entries
            // were stable, hence delivered everywhere that matters.
            for (oo, d) in oal.iter() {
                if oo >= o {
                    break;
                }
                if d.undeliverable {
                    continue;
                }
                if let DescriptorBody::Update {
                    id: did, semantics, ..
                } = &d.body
                {
                    if semantics.ordering == Ordering::Total && !buf.is_delivered(*did) {
                        return false;
                    }
                }
            }
            true
        }
        Ordering::Time => {
            if now < p.send_ts + cfg.time_delivery_latency {
                return false;
            }
            // No known time-ordered update with a smaller (ts, id) may be
            // outstanding: check both the oal window and the pending
            // buffer (a received-but-unordered earlier update blocks).
            let key = (p.send_ts, id);
            for (_, d) in oal.iter() {
                if d.undeliverable {
                    continue;
                }
                if let DescriptorBody::Update {
                    id: did,
                    semantics,
                    send_ts,
                    ..
                } = &d.body
                {
                    if semantics.ordering == Ordering::Time
                        && (*send_ts, *did) < key
                        && !buf.is_delivered(*did)
                    {
                        return false;
                    }
                }
            }
            for q in buf.pending() {
                if q.semantics.ordering == Ordering::Time
                    && (q.send_ts, q.id()) < key
                    && q.id() != id
                {
                    return false;
                }
            }
            true
        }
    }
}

/// Full deliverability check for a pending proposal.
pub fn deliverable(
    oal: &Oal,
    buf: &ProposalBuffer,
    group: &View,
    cfg: &Config,
    now: SyncTime,
    p: &Proposal,
) -> bool {
    let id = p.id();
    if !buf.fifo_ready(id) {
        return false;
    }
    if buf.is_locally_marked(id, now) {
        return false;
    }
    // A descriptor marked undeliverable by a decider is never delivered.
    if let Some(o) = buf.ordinal_of(id).or_else(|| oal.ordinal_of(id)) {
        if let Some(d) = oal.get(o) {
            if d.undeliverable {
                return false;
            }
        }
    }
    atomicity_ok(oal, group, p) && order_ok(oal, buf, cfg, now, p)
}

/// The first deliverable pending proposal, if any (the member delivers it
/// and re-evaluates until a fixpoint).
pub fn next_deliverable(
    oal: &Oal,
    buf: &ProposalBuffer,
    group: &View,
    cfg: &Config,
    now: SyncTime,
) -> Option<tw_proto::ProposalId> {
    buf.pending()
        .find(|p| deliverable(oal, buf, group, cfg, now, p))
        .map(|p| p.id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tw_proto::{Descriptor, Duration, Incarnation, ProcessId, Semantics, ViewId};

    fn cfg() -> Config {
        Config::for_team(3, Duration::from_millis(10))
    }

    fn group() -> View {
        View::new(
            ViewId::new(1, ProcessId(0)),
            [ProcessId(0), ProcessId(1), ProcessId(2)],
        )
    }

    fn prop(sender: u16, seq: u64, sem: Semantics, hdo: Ordinal, ts: i64) -> Proposal {
        Proposal {
            sender: ProcessId(sender),
            incarnation: Incarnation(0),
            seq,
            send_ts: SyncTime(ts),
            hdo,
            semantics: sem,
            payload: Bytes::from_static(b"u"),
        }
    }

    /// Append `p` to the oal with acks from the given ranks.
    fn ordered(oal: &mut Oal, p: &Proposal, acks: &[u16]) -> Ordinal {
        let o = oal.append(Descriptor::update(
            p.id(),
            p.hdo,
            p.semantics,
            p.send_ts,
            p.sender,
        ));
        for &r in acks {
            oal.ack(o, ProcessId(r));
        }
        o
    }

    #[test]
    fn weak_unordered_delivers_on_receipt() {
        let oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let p = prop(0, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        buf.insert(p.clone());
        assert!(deliverable(&oal, &buf, &group(), &cfg(), SyncTime(1), &p));
    }

    #[test]
    fn fifo_blocks_out_of_order() {
        let oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let p2 = prop(0, 2, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        buf.insert(p2.clone());
        assert!(!deliverable(&oal, &buf, &group(), &cfg(), SyncTime(1), &p2));
    }

    #[test]
    fn strong_waits_for_majority_of_dependencies() {
        let mut oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let dep = prop(1, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        let o_dep = ordered(&mut oal, &dep, &[]); // only proposer's ack
        let p = prop(
            0,
            1,
            Semantics::new(Ordering::Unordered, Atomicity::Strong),
            o_dep,
            1,
        );
        buf.insert(p.clone());
        assert!(!deliverable(&oal, &buf, &g, &cfg(), SyncTime(2), &p));
        // One more ack → 2/3 majority.
        oal.ack(o_dep, ProcessId(2));
        assert!(deliverable(&oal, &buf, &g, &cfg(), SyncTime(2), &p));
    }

    #[test]
    fn strict_waits_for_full_stability() {
        let mut oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let dep = prop(1, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        let o_dep = ordered(&mut oal, &dep, &[2]); // 2/3 acks
        let p = prop(
            0,
            1,
            Semantics::new(Ordering::Unordered, Atomicity::Strict),
            o_dep,
            1,
        );
        buf.insert(p.clone());
        assert!(!deliverable(&oal, &buf, &g, &cfg(), SyncTime(2), &p));
        oal.ack(o_dep, ProcessId(0));
        assert!(deliverable(&oal, &buf, &g, &cfg(), SyncTime(2), &p));
    }

    #[test]
    fn unknown_dependency_blocks_strong() {
        let oal = Oal::new(); // next ordinal = 1, nothing assigned
        let mut buf = ProposalBuffer::new();
        let p = prop(
            0,
            1,
            Semantics::new(Ordering::Unordered, Atomicity::Strong),
            Ordinal(5),
            0,
        );
        buf.insert(p.clone());
        assert!(
            !deliverable(&oal, &buf, &group(), &cfg(), SyncTime(1), &p),
            "hdo beyond known ordinals must block"
        );
    }

    #[test]
    fn total_order_respects_ordinals() {
        let mut oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let c = cfg();
        let first = prop(
            1,
            1,
            Semantics::new(Ordering::Total, Atomicity::Weak),
            Ordinal::ZERO,
            0,
        );
        let second = prop(
            0,
            1,
            Semantics::new(Ordering::Total, Atomicity::Weak),
            Ordinal::ZERO,
            1,
        );
        let o1 = ordered(&mut oal, &first, &[]);
        let o2 = ordered(&mut oal, &second, &[]);
        buf.learn_ordinal(first.id(), o1);
        buf.learn_ordinal(second.id(), o2);
        // Only `second` received so far: blocked behind undelivered o1.
        buf.insert(second.clone());
        assert!(!deliverable(&oal, &buf, &g, &c, SyncTime(2), &second));
        // Receive and deliver first → second unblocks.
        buf.insert(first.clone());
        assert!(deliverable(&oal, &buf, &g, &c, SyncTime(2), &first));
        buf.deliver(first.id());
        assert!(deliverable(&oal, &buf, &g, &c, SyncTime(2), &second));
    }

    #[test]
    fn total_order_skips_undeliverable_predecessors() {
        let mut oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let c = cfg();
        let first = prop(
            1,
            1,
            Semantics::new(Ordering::Total, Atomicity::Weak),
            Ordinal::ZERO,
            0,
        );
        let second = prop(
            0,
            1,
            Semantics::new(Ordering::Total, Atomicity::Weak),
            Ordinal::ZERO,
            1,
        );
        let o1 = ordered(&mut oal, &first, &[]);
        let o2 = ordered(&mut oal, &second, &[]);
        oal.mark_undeliverable(o1);
        buf.learn_ordinal(second.id(), o2);
        buf.insert(second.clone());
        assert!(deliverable(&oal, &buf, &g, &c, SyncTime(2), &second));
    }

    #[test]
    fn unordered_updates_do_not_block_total() {
        let mut oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let c = cfg();
        // An unordered update sits at a smaller ordinal, undelivered.
        let u = prop(1, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        ordered(&mut oal, &u, &[]);
        let t = prop(
            0,
            1,
            Semantics::new(Ordering::Total, Atomicity::Weak),
            Ordinal::ZERO,
            1,
        );
        let ot = ordered(&mut oal, &t, &[]);
        buf.learn_ordinal(t.id(), ot);
        buf.insert(t.clone());
        assert!(deliverable(&oal, &buf, &g, &c, SyncTime(2), &t));
    }

    #[test]
    fn time_order_waits_for_latency() {
        let oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let c = cfg();
        let p = prop(
            0,
            1,
            Semantics::new(Ordering::Time, Atomicity::Weak),
            Ordinal::ZERO,
            1_000,
        );
        buf.insert(p.clone());
        let before = SyncTime(1_000) + c.time_delivery_latency - Duration(1);
        let after = SyncTime(1_000) + c.time_delivery_latency;
        assert!(!deliverable(&oal, &buf, &g, &c, before, &p));
        assert!(deliverable(&oal, &buf, &g, &c, after, &p));
    }

    #[test]
    fn time_order_is_timestamp_ordered() {
        let oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let c = cfg();
        let early = prop(
            1,
            1,
            Semantics::new(Ordering::Time, Atomicity::Weak),
            Ordinal::ZERO,
            500,
        );
        let late = prop(
            0,
            1,
            Semantics::new(Ordering::Time, Atomicity::Weak),
            Ordinal::ZERO,
            1_000,
        );
        buf.insert(early.clone());
        buf.insert(late.clone());
        let t = SyncTime(1_000) + c.time_delivery_latency;
        // `late` blocked behind undelivered `early`.
        assert!(!deliverable(&oal, &buf, &g, &c, t, &late));
        assert!(deliverable(&oal, &buf, &g, &c, t, &early));
        buf.deliver(early.id());
        assert!(deliverable(&oal, &buf, &g, &c, t, &late));
    }

    #[test]
    fn locally_marked_blocks_delivery() {
        let oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let p = prop(0, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        buf.insert(p.clone());
        buf.mark_local(p.id(), SyncTime(100));
        assert!(!deliverable(&oal, &buf, &group(), &cfg(), SyncTime(50), &p));
        assert!(deliverable(&oal, &buf, &group(), &cfg(), SyncTime(101), &p));
    }

    #[test]
    fn decider_undeliverable_mark_blocks_forever() {
        let mut oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let p = prop(0, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        let o = ordered(&mut oal, &p, &[]);
        buf.learn_ordinal(p.id(), o);
        oal.mark_undeliverable(o);
        buf.insert(p.clone());
        assert!(!deliverable(
            &oal,
            &buf,
            &group(),
            &cfg(),
            SyncTime(9_999_999),
            &p
        ));
    }

    #[test]
    fn next_deliverable_walks_pending() {
        let oal = Oal::new();
        let mut buf = ProposalBuffer::new();
        let g = group();
        let c = cfg();
        let a = prop(0, 1, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0);
        let b = prop(1, 2, Semantics::UNORDERED_WEAK, Ordinal::ZERO, 0); // FIFO-blocked
        buf.insert(a.clone());
        buf.insert(b);
        assert_eq!(
            next_deliverable(&oal, &buf, &g, &c, SyncTime(1)),
            Some(a.id())
        );
        buf.deliver(a.id());
        assert_eq!(next_deliverable(&oal, &buf, &g, &c, SyncTime(1)), None);
    }
}
