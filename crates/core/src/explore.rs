//! Protocol-level schedule exploration: wire the real [`Member`] state
//! machine into the exhaustive explorer (`tw_sim::explore`) and check
//! the paper's invariants at every terminal state.
//!
//! The timed world answers "does a *realistic* seeded run stay
//! correct?"; this module answers the sharper small-scope question
//! "does **any** schedule at all — every delivery interleaving, every
//! crash placement, every omission placement within the budgets — drive
//! the protocol into an invariant violation?". The scope is deliberately
//! tiny (N ≤ 4, bounded deliveries/timer fires) per the small-scope
//! hypothesis: protocol bugs that exist tend to have small witnesses.
//!
//! Two deliberate scoping choices keep the bounded search meaningful:
//!
//! * **Formed groups, forced-sync clocks.** Scenario members are born
//!   into an installed majority view ([`Member::new_in_view`]) with
//!   synchronized clocks, except the `reconfiguration` scenario which
//!   starts from scratch and explores the join phase itself. Start-up
//!   otherwise eats the whole step budget before anything interesting
//!   can happen.
//! * **Coarse ticks.** The explorer advances a process's clock only
//!   when it executes one of that process's events, so protocol
//!   deadlines (decider interval `D`, decision timeout `2D`) are crossed
//!   by *timer fires*, not wall time. The scenario config sets
//!   `tick = D` — a granularity, not a correctness parameter — so the
//!   bounded number of fires actually reaches the deadline-driven paths
//!   (suspicion, election, decision rotation).

use crate::harness::SimMember;
use crate::invariants::check_all_members;
use crate::member::Member;
use crate::Config;
use bytes::Bytes;
use tw_proto::{Duration, Msg, ProcessId, Semantics, View, ViewId};
use tw_sim::explore::{ExploreConfig, ExploreReport, Explorer};
use tw_sim::{Actor, Ctx};

/// A named small-scope scenario: how many members, which fault budgets.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (reports, CLI).
    pub name: &'static str,
    /// Team size (keep ≤ 4: the state space is exponential).
    pub members: usize,
    /// Crash placements explored (each at every point of every schedule).
    pub crashes: usize,
    /// Omission-fault placements explored.
    pub drops: usize,
    /// Start from the join phase instead of a formed group.
    pub from_scratch: bool,
    /// What the scenario demonstrates.
    pub about: &'static str,
}

/// The standard scenario set exercised by `cargo xtask explore`.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "reconfiguration",
        members: 3,
        crashes: 0,
        drops: 0,
        from_scratch: true,
        about: "all interleavings of the join/start-up phase (paper §4.5)",
    },
    Scenario {
        name: "single-failure",
        members: 3,
        crashes: 1,
        drops: 0,
        from_scratch: false,
        about: "every crash placement at every point of every schedule (paper §4.2)",
    },
    Scenario {
        name: "false-alarm",
        members: 3,
        crashes: 0,
        drops: 1,
        from_scratch: false,
        about: "every single-message omission: wrong suspicions must stay safe (paper §4.4)",
    },
];

/// Look up a standard scenario by name.
pub fn scenario(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// Budgets for one exploration run. Defaults are sized so the full
/// standard scenario set completes in seconds; raise them for deeper
/// (exponentially slower) sweeps.
#[derive(Debug, Clone)]
pub struct Budgets {
    /// Total message deliveries per schedule.
    pub deliveries: usize,
    /// Timer fires per process per schedule.
    pub timer_fires: usize,
    /// Updates proposed by p0 (once it is in a view).
    pub proposals: usize,
    /// Hard cap on complete schedules per scenario.
    pub max_schedules: u64,
    /// Sleep-set reduction on (off = exact enumeration).
    pub dpor: bool,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets {
            // Sized so even the from-scratch join scenario with a crash
            // budget finishes promptly (~100k schedules). The formed-
            // group scenarios saturate their whole bounded space well
            // inside these budgets; `--deliveries 6 --timer-fires 2`
            // deepens them (the join scenario then needs a schedule cap).
            deliveries: 4,
            timer_fires: 1,
            proposals: 1,
            max_schedules: 2_000_000,
            dpor: true,
        }
    }
}

/// The [`ExploreConfig`] a scenario runs under — exposed so tests can
/// drive [`Explorer`] directly with instrumented checkers.
pub fn config_for(sc: &Scenario, b: &Budgets) -> ExploreConfig {
    explore_config(sc, b)
}

fn explore_config(sc: &Scenario, b: &Budgets) -> ExploreConfig {
    ExploreConfig {
        max_deliveries: b.deliveries,
        max_timer_fires_per_proc: b.timer_fires,
        crash_budget: sc.crashes,
        drop_budget: sc.drops,
        min_latency: Duration::from_micros(1_000),
        max_skew: None,
        max_schedules: b.max_schedules,
        max_violations: 3,
        dpor: b.dpor,
    }
}

/// The protocol config scenarios run under: δ = 10 ms with the tick
/// coarsened to `D` (see module docs for why).
pub fn scenario_config(n: usize) -> Config {
    let mut cfg = Config::for_team(n, Duration::from_millis(10));
    cfg.tick = cfg.big_d;
    cfg
}

/// Build the initial team: all members in an installed seq-1 view
/// (`from_scratch = false`) or all in the join phase.
pub fn team(sc: &Scenario) -> Vec<ExploreMember> {
    let n = sc.members;
    let cfg = scenario_config(n);
    (0..n)
        .map(|i| {
            let pid = ProcessId(i as u16);
            let inner = if sc.from_scratch {
                let mut m = Member::new_unchecked(pid, cfg);
                m.force_clock_sync();
                SimMember::new(m)
            } else {
                let view = View::new(
                    ViewId::new(1, ProcessId(0)),
                    (0..n).map(|r| ProcessId(r as u16)),
                );
                let mut sm = SimMember::new(Member::new_in_view(pid, cfg, view.clone()));
                // The installed view is part of the log the invariant
                // checkers read.
                sm.views.push((tw_proto::HwTime::ZERO, view));
                sm
            };
            ExploreMember {
                inner,
                formed: !sc.from_scratch,
                proposals_left: 0,
                sabotage: false,
                sabotaged: false,
            }
        })
        .collect()
}

/// Explorer-side wrapper around [`SimMember`]: optionally proposes
/// updates (so the ordering/atomicity invariants are exercised, not
/// vacuous) and optionally sabotages its own delivery log (the
/// known-broken fixture that proves the pipeline can fail).
#[derive(Clone)]
pub struct ExploreMember {
    /// The adapted member with its logs.
    pub inner: SimMember,
    /// Born into a view ([`Member::new_in_view`]): skip the protocol's
    /// start-up on the first event, which would reset to the join phase.
    formed: bool,
    /// Updates still to propose; attempted after every event once the
    /// member sits in a view (proposing is a client call, so it rides
    /// on the member's own events rather than being a schedule step).
    proposals_left: usize,
    /// If set, duplicate the first delivery in the log (a "bug").
    sabotage: bool,
    sabotaged: bool,
}

impl ExploreMember {
    /// Let this member propose `n` updates (attempted after each of its
    /// events, once in a view).
    pub fn set_proposals(&mut self, n: usize) {
        self.proposals_left = n;
    }

    fn after_event(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.proposals_left > 0 {
            // The first proposal is UNORDERED_WEAK — deliverable on
            // receipt, so the delivery-side invariants (FIFO,
            // no-duplicates) are exercised within tiny step budgets.
            // Further proposals are TOTAL_STRONG: their ordinals and
            // acks drive the oal machinery under the explored faults,
            // even when the budget ends before their delivery
            // conditions can mature.
            let sem = if self.proposals_left == 1 {
                Semantics::UNORDERED_WEAK
            } else {
                Semantics::TOTAL_STRONG
            };
            let payload = Bytes::from_static(b"explored-update");
            if let Ok(actions) = self.inner.member.propose(ctx.now_hw(), payload, sem) {
                self.proposals_left -= 1;
                self.inner.apply(actions, ctx);
            }
        }
        if self.sabotage && !self.sabotaged {
            if let Some(first) = self.inner.deliveries.first().cloned() {
                let view = self.inner.delivery_views[0];
                self.inner.deliveries.push(first);
                self.inner.delivery_views.push(view);
                self.sabotaged = true;
            }
        }
    }
}

impl Actor for ExploreMember {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.formed {
            // `Member::on_start` would reset the fabricated view back to
            // the join phase; the member already started inside
            // `new_in_view`, so only the tick driver needs arming.
            self.inner.arm_tick(ctx);
        } else {
            self.inner.on_start(ctx);
        }
        self.after_event(ctx);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.inner.on_recover(ctx);
        self.after_event(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, msg: Msg) {
        self.inner.on_message(ctx, from, msg);
        self.after_event(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        self.inner.on_timer(ctx, token);
        self.after_event(ctx);
    }
}

fn check(actors: &[ExploreMember]) -> Vec<String> {
    let refs: Vec<&SimMember> = actors.iter().map(|m| &m.inner).collect();
    check_all_members(&refs).into_iter().map(|v| v.0).collect()
}

/// Exhaustively explore one scenario under the given budgets.
pub fn run_scenario(sc: &Scenario, budgets: &Budgets) -> ExploreReport {
    let mut actors = team(sc);
    if let Some(p0) = actors.first_mut() {
        p0.proposals_left = budgets.proposals;
    }
    Explorer::new(explore_config(sc, budgets), |a: &[ExploreMember]| check(a)).run(actors)
}

/// Explore the known-broken fixture: a formed 3-member group whose p1
/// duplicates its first delivery. The explorer must report a violation —
/// if it comes back clean, the *pipeline* (explorer → logs → checkers)
/// is broken, and trusting its green runs would be unfounded.
pub fn run_broken_fixture(budgets: &Budgets) -> ExploreReport {
    let sc = Scenario {
        name: "broken-fixture",
        members: 3,
        crashes: 0,
        drops: 0,
        from_scratch: false,
        about: "sabotaged member must be caught",
    };
    let mut actors = team(&sc);
    actors[0].proposals_left = budgets.proposals.max(1);
    actors[1].sabotage = true;
    Explorer::new(explore_config(&sc, budgets), |a: &[ExploreMember]| check(a)).run(actors)
}

/// The invariant checker over a team of [`ExploreMember`]s — exposed so
/// tests can wrap it (e.g. to count deliveries across terminal states
/// and prove a scenario is not vacuous).
pub fn check_team(actors: &[ExploreMember]) -> Vec<String> {
    check(actors)
}

/// Sum of deliveries currently in the team's logs.
pub fn deliveries_in(actors: &[ExploreMember]) -> usize {
    actors.iter().map(|m| m.inner.deliveries.len()).sum()
}
