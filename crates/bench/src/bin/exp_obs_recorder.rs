//! Flight-recorder overhead, against the `exp_obs_baseline` numbers.
//!
//! The recorder sits on the same hot path as any other [`TraceSink`]:
//! every traced transition encodes one wire frame into an in-memory
//! buffer, and a segment spill (CRC + buffered write) runs once per
//! `capacity` events plus once per view install. This binary measures:
//!
//! * per-operation costs — `record()` into a large buffer, `record()`
//!   with spills amortized in, and a forced `flush()`;
//! * end-to-end — the T1 failure-free workload (5 members, 200 cycles)
//!   with a recorder attached to every member, vs. tracing disabled,
//!   median of 3 runs each; the claim in EXPERIMENTS.md is < 5%
//!   overhead, with the T1 shape (zero membership messages) preserved.
//!
//! Writes `BENCH_obs_recorder.json` next to `BENCH_obs_baseline.json`.

use std::sync::Arc;
use std::time::Instant;
use timewheel::harness::TeamParams;
use tw_bench::{formed_team, median, Table};
use tw_obs::{ClockStamp, FlightRecorder, RecorderConfig, TraceEvent, TraceSink, Tracer};
use tw_proto::{Duration, HwTime, ProcessId, SyncTime, ViewId};

fn sample_event() -> TraceEvent {
    TraceEvent::DecisionSent {
        pid: ProcessId(1),
        at: ClockStamp {
            hw: HwTime::from_micros(42),
            sync: SyncTime::from_micros(40),
        },
        send_ts: SyncTime::from_micros(40),
        view: ViewId::new(7, ProcessId(0)),
    }
}

/// Nanoseconds per call of `f`, averaged over `iters` calls.
fn per_op_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-bench-rec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Median wall-clock ms of `runs` T1 workloads (5 members, `cycles`
/// failure-free cycles), with or without recorders attached. Asserts
/// the T1 shape — zero membership messages — every run.
fn sim_run_ms(runs: usize, cycles: i64, recorded: bool) -> f64 {
    let params = TeamParams::new(5);
    let cfg = params.protocol_config();
    let mut samples = Vec::with_capacity(runs);
    for r in 0..runs {
        let (mut w, _) = formed_team(&params);
        let mut recorders = Vec::new();
        if recorded {
            for i in 0..5u16 {
                let pid = ProcessId(i);
                let rc = RecorderConfig::new(pid, 5, cfg.epsilon);
                let rec = Arc::new(
                    FlightRecorder::create(tmp(&format!("e2e-{r}-{i}.twrec")), rc)
                        .expect("create recording"),
                );
                w.actor_mut(pid)
                    .member
                    .set_tracer(Tracer::new(rec.clone() as Arc<dyn TraceSink>));
                recorders.push(rec);
            }
        }
        w.reset_stats();
        let wall = Instant::now();
        w.run_for(cfg.cycle() * cycles);
        for rec in &recorders {
            rec.flush();
        }
        samples.push(wall.elapsed().as_secs_f64() * 1000.0);
        let membership = w.stats().sends_of(&["no-decision", "join", "reconfig"]);
        assert_eq!(
            membership, 0,
            "failure-free run grew membership traffic (recorded={recorded})"
        );
        for rec in &recorders {
            assert!(rec.spilled_events() > 0, "recorder never spilled");
            assert!(rec.take_error().is_none(), "recorder hit an I/O error");
        }
    }
    median(&mut samples)
}

fn main() {
    const ITERS: u64 = 500_000;

    // record() into a buffer that never spills during the measurement.
    let rec = FlightRecorder::create(
        tmp("perop-nospill.twrec"),
        RecorderConfig::new(ProcessId(1), 5, Duration::from_micros(100))
            .capacity(ITERS as usize + 1),
    )
    .expect("create recording");
    let record_buffered_ns = per_op_ns(ITERS, || rec.record(&sample_event()));

    // record() with segment spills amortized in (capacity 1024).
    let rec = FlightRecorder::create(
        tmp("perop-spill.twrec"),
        RecorderConfig::new(ProcessId(1), 5, Duration::from_micros(100)),
    )
    .expect("create recording");
    let record_spilling_ns = per_op_ns(ITERS, || rec.record(&sample_event()));

    // One-event flush (spill + write of a minimal segment).
    let rec = FlightRecorder::create(
        tmp("perop-flush.twrec"),
        RecorderConfig::new(ProcessId(1), 5, Duration::from_micros(100)),
    )
    .expect("create recording");
    let flush_ns = per_op_ns(ITERS / 10, || {
        rec.record(&sample_event());
        rec.flush();
    });

    const RUNS: usize = 3;
    const CYCLES: i64 = 200;
    let baseline_ms = sim_run_ms(RUNS, CYCLES, false);
    let recorded_ms = sim_run_ms(RUNS, CYCLES, true);
    let overhead_pct = (recorded_ms - baseline_ms) / baseline_ms * 100.0;

    let mut table = Table::new(&["metric", "value"]);
    let rows: &[(&str, String)] = &[
        ("record_buffered_ns", format!("{record_buffered_ns:.1}")),
        ("record_spilling_ns", format!("{record_spilling_ns:.1}")),
        ("record_plus_flush_ns", format!("{flush_ns:.1}")),
        ("sim_baseline_ms", format!("{baseline_ms:.1}")),
        ("sim_recorded_ms", format!("{recorded_ms:.1}")),
        ("overhead_pct", format!("{overhead_pct:.2}")),
    ];
    for (k, val) in rows {
        table.row(&[k.to_string(), val.clone()]);
    }
    table.print("OBS-REC: flight recorder overhead (vs tracing disabled)");
    println!("\nclaim check: end-to-end overhead < 5% with the T1 shape preserved");
    println!("(zero membership messages asserted in every run, recorded or not).");

    let json = serde_json::json!({
        "experiment": "obs_recorder",
        "iters": ITERS,
        "record_buffered_ns": record_buffered_ns,
        "record_spilling_ns": record_spilling_ns,
        "record_plus_flush_ns": flush_ns,
        "sim": {
            "team": 5,
            "cycles": CYCLES,
            "runs": RUNS,
            "baseline_ms": baseline_ms,
            "recorded_ms": recorded_ms,
            "overhead_pct": overhead_pct,
        },
        "baseline_file": "BENCH_obs_baseline.json",
    });
    let path = "BENCH_obs_recorder.json";
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serialize"))
        .expect("write results");
    println!("\nwrote {path}");
}
