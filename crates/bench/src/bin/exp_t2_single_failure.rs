//! T2 — single-failure recovery latency.
//!
//! Paper claim: a single process crash is handled by "a very simple and
//! fast algorithm" — the no-decision ring — completing in at most one
//! ring round after detection: detection ≤ 2D, then one no-decision hop
//! per surviving member (each ≤ D + δ).
//!
//! We crash one member of a stable group and measure, per team size and
//! over several seeds: time to first suspicion evidence (first
//! no-decision message), time until every survivor has installed the
//! 4-member group, both in ms and in D units, against the analytic bound
//! `2D + (N−1)(D+δ)` plus the tick quantization.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, median, ms, Table};
use tw_proto::{Duration, ProcessId};

fn main() {
    let mut table = Table::new(&[
        "N",
        "recovery_ms(median)",
        "recovery_in_D",
        "bound_ms",
        "within_bound",
    ]);
    for n in [3usize, 5, 7, 9, 13] {
        let params_base = TeamParams::new(n);
        let cfg = params_base.protocol_config();
        let mut samples = Vec::new();
        let mut all_within = true;
        for seed in 0..5u64 {
            let params = TeamParams::new(n).seed(100 + seed);
            let (mut w, _) = formed_team(&params);
            let victim = ProcessId(1);
            let crash_at = w.now() + Duration::from_secs(1);
            w.crash_at(crash_at, victim);
            let recovered = timewheel::harness::run_until_pred(
                &mut w,
                crash_at + Duration::from_secs(60),
                |w| {
                    (0..n as u16).filter(|&i| i != 1).all(|i| {
                        let m = &w.actor(ProcessId(i)).member;
                        m.state() == timewheel::CreatorState::FailureFree
                            && m.view().len() == n - 1
                            && !m.view().contains(victim)
                    })
                },
            )
            .expect("survivors never reformed");
            let elapsed = ms(recovered, crash_at + Duration::ZERO);
            samples.push(elapsed);
            // Analytic bound: the crash can happen right after the victim's
            // decision (wait ~2D for the next expected), + detection
            // timeout 2D, + ring (N−2 hops of ≤ D+δ each), + tick slack.
            let bound = (cfg.decision_timeout * 2
                + (cfg.big_d + cfg.delta) * (n as i64 - 2)
                + cfg.tick * 4)
                .as_micros() as f64
                / 1_000.0;
            if elapsed > bound {
                all_within = false;
            }
        }
        let med = median(&mut samples);
        let bound =
            (cfg.decision_timeout * 2 + (cfg.big_d + cfg.delta) * (n as i64 - 2) + cfg.tick * 4)
                .as_micros() as f64
                / 1_000.0;
        table.row(&[
            n.to_string(),
            format!("{med:.1}"),
            format!("{:.1}", med * 1_000.0 / cfg.big_d.as_micros() as f64),
            format!("{bound:.1}"),
            all_within.to_string(),
        ]);
    }
    table.print("T2: single-failure recovery (crash of one member, 5 seeds)");
    println!("\nclaim check: recovery grows ~linearly in N (one ND hop per member),");
    println!("and stays within the 2·2D + (N−2)(D+δ) analytic envelope.");
}
