//! T1 — failure-free message load.
//!
//! Paper claim: "this protocol does not cause any extra messages to be
//! exchanged during failure-free periods" and "incurs minimal processing
//! load". The only control traffic is the broadcast protocol's decision
//! rotation, whose load is evenly balanced by rotating the decider.
//!
//! For each team size, the group runs stable for 200 cycles; we count
//! every message by kind. Expected shape: membership messages
//! (no-decision/join/reconfig) ≡ 0; decisions ≈ cycles · (cycle/decider
//! interval); per-member decision load even (skew ≤ a couple messages).

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, Table};

fn main() {
    let mut table = Table::new(&[
        "N",
        "cycles",
        "decisions",
        "decisions/cycle",
        "membership_msgs",
        "clocksync/cycle",
        "decision_skew",
    ]);
    for n in [3usize, 5, 7, 9, 13] {
        let params = TeamParams::new(n);
        let cfg = params.protocol_config();
        let (mut w, _) = formed_team(&params);
        w.reset_stats();
        let cycles = 200i64;
        w.run_for(cfg.cycle() * cycles);
        let s = w.stats();
        let decisions = s.kind("decision").sends;
        let membership = s.sends_of(&["no-decision", "join", "reconfig"]);
        let clocksync = s.kind("clock-sync").sends;
        table.row(&[
            n.to_string(),
            cycles.to_string(),
            decisions.to_string(),
            format!("{:.1}", decisions as f64 / cycles as f64),
            membership.to_string(),
            format!("{:.1}", clocksync as f64 / cycles as f64),
            s.send_skew().to_string(),
        ]);
        assert_eq!(membership, 0, "membership traffic during failure-free run");
    }
    table.print("T1: failure-free message load (200 stable cycles)");
    println!("\nclaim check: membership_msgs column is identically zero ✓");
}
