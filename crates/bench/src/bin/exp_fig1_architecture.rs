//! FIG1 — the layered architecture of Fig. 1, as a running artifact.
//!
//! ```text
//!      ┌──────────────────────────────┐
//!      │  timewheel broadcast service │  proposal / decision / nack
//!      ├──────────────────────────────┤
//!      │  timewheel membership svc    │  no-decision / join / reconfig
//!      ├──────────────────────────────┤
//!      │  clock synchronization svc   │  clock-sync request/reply
//!      ├──────────────────────────────┤
//!      │  unreliable broadcast svc    │  (simulated datagrams)
//!      └──────────────────────────────┘
//! ```
//!
//! We run the full stack through formation, one failure and one rejoin,
//! and attribute every datagram to its layer — demonstrating that each
//! layer exists, is exercised, and speaks only its own messages.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, Table};
use tw_proto::{Duration, ProcessId};

fn main() {
    let n = 5;
    let params = TeamParams::new(n);
    let (mut w, formed) = formed_team(&params);
    // Exercise all layers: client load, a crash, a recovery.
    tw_bench::inject_proposals(
        &mut w,
        n,
        50,
        tw_proto::Semantics::TOTAL_STRONG,
        Duration::from_millis(50),
        Duration::from_millis(20),
    );
    let crash_at = w.now() + Duration::from_secs(2);
    w.crash_at(crash_at, ProcessId(2));
    w.recover_at(crash_at + Duration::from_secs(4), ProcessId(2));
    w.run_for(Duration::from_secs(15));
    timewheel::invariants::assert_all(&w);

    println!("Fig. 1 — system architecture of the timewheel group communication service");
    println!();
    println!("      ┌────────────────────────────────┐");
    println!("      │  timewheel broadcast service   │  proposal, decision, nack,");
    println!("      │                                │  state-transfer");
    println!("      ├────────────────────────────────┤");
    println!("      │  timewheel membership service  │  no-decision, join, reconfig");
    println!("      ├────────────────────────────────┤");
    println!("      │  clock synchronization service │  clock-sync request/reply");
    println!("      ├────────────────────────────────┤");
    println!("      │  unreliable broadcast service  │  (datagram substrate)");
    println!("      └────────────────────────────────┘");

    let s = w.stats();
    let layer = |kinds: &[&str]| -> (u64, u64) {
        (
            kinds.iter().map(|k| s.kind(k).sends).sum(),
            kinds.iter().map(|k| s.kind(k).delivered).sum(),
        )
    };
    let (b_s, b_d) = layer(&["proposal", "decision", "nack", "state-transfer"]);
    let (m_s, m_d) = layer(&["no-decision", "join", "reconfig"]);
    let (c_s, c_d) = layer(&["clock-sync"]);
    let mut table = Table::new(&["layer", "sends", "datagrams_delivered"]);
    table.row(&["broadcast".into(), b_s.to_string(), b_d.to_string()]);
    table.row(&["membership".into(), m_s.to_string(), m_d.to_string()]);
    table.row(&["clock-sync".into(), c_s.to_string(), c_d.to_string()]);
    table.print("FIG1: per-layer traffic over formation + crash + rejoin");
    println!(
        "\nformation at {formed}; the membership layer only spoke during the\n\
         crash/rejoin episodes ({m_s} sends), the broadcast layer carried the\n\
         service, and clock-sync ran continuously underneath."
    );
}
