//! T10 — what each semantics level costs (delivery latency by class).
//!
//! The timewheel service's selling point (§1) is offering multiple
//! ordering/atomicity semantics *simultaneously*, so each update pays
//! only for what it needs. This experiment prices the menu: propose→
//! deliver latency at a non-proposing member, per semantics class, in a
//! stable 5-group.
//!
//! Expected shape: weak/unordered ≈ one datagram delay (δ-ish);
//! total adds waiting for the next decision (ordinals), ≈ D/2;
//! strong adds majority acknowledgement of dependencies;
//! strict adds full stability (one ack rotation ≈ a cycle);
//! time is pinned at the configured Δ_deliv regardless.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, inject_proposals, mean, percentile, Table};
use tw_proto::{Duration, ProcessId, Semantics};

fn main() {
    let n = 5;
    let mut table = Table::new(&["semantics", "mean_ms", "p99_ms", "delivered"]);
    let cfg = TeamParams::new(n).protocol_config();
    for sem in Semantics::matrix() {
        let params = TeamParams::new(n).seed(4242);
        let (mut w, _) = formed_team(&params);
        let count = 40;
        inject_proposals(
            &mut w,
            n,
            count,
            sem,
            Duration::from_millis(100),
            Duration::from_millis(60),
        );
        w.run_for(Duration::from_secs(30));
        // Latency at p0 for updates proposed by others: delivery hw time
        // minus the proposal's synchronized send timestamp (clocks agree
        // to within ε ≪ the latencies measured).
        let mut lats: Vec<f64> = w
            .actor(ProcessId(0))
            .deliveries
            .iter()
            .filter(|(_, d)| d.id.proposer != ProcessId(0))
            .map(|(t, d)| (t.0 - d.send_ts.0) as f64 / 1_000.0)
            .collect();
        let delivered = w.actor(ProcessId(0)).deliveries.len();
        table.row(&[
            sem.to_string(),
            format!("{:.1}", mean(&lats)),
            format!("{:.1}", percentile(&mut lats, 99.0)),
            format!("{delivered}/{count}"),
        ]);
    }
    table.print("T10: delivery latency by semantics class (N = 5, stable group)");
    println!(
        "\nreference points: δ = {}, D/2 (decider interval) = {}, Δ_deliv (time\n\
         order) = {}, cycle (full ack rotation) = {}.",
        cfg.delta,
        cfg.decider_interval,
        cfg.time_delivery_latency,
        cfg.cycle()
    );
    println!("shape check: each step up the semantics ladder costs what its");
    println!("mechanism implies — the \"pay only for what you use\" design of §1.");
}
