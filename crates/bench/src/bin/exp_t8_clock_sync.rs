//! T8 — the fail-aware clock synchronization substrate.
//!
//! The membership protocol's slots only work if (a) synchronized clocks
//! of stable members deviate by at most a known ε, and (b) a process
//! that cannot synchronize *knows* it (fail-awareness). We sweep drift
//! rate ρ and one-way timeout δ, measuring the worst observed deviation
//! between any two synchronized members against the configured ε, and
//! the latency until a partitioned minority reports itself unsynced.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, ms, Table};
use tw_proto::{Duration, ProcessId};

fn main() {
    let n = 5;
    let mut table = Table::new(&[
        "delta_ms",
        "drift_ppm",
        "worst_deviation_us",
        "epsilon_us",
        "within_eps",
        "failaware_latency_ms",
    ]);
    for delta_ms in [2i64, 10, 50] {
        for drift_ppm in [1.0f64, 100.0] {
            let mut params = TeamParams::new(n).seed(77);
            params.delta = Duration::from_millis(delta_ms);
            params.drift_ppm = drift_ppm;
            let cfg = params.protocol_config();
            let (mut w, _) = formed_team(&params);
            // Sample pairwise deviations every 20 ms for 10 s.
            let mut worst: i64 = 0;
            for _ in 0..500 {
                w.run_for(Duration::from_millis(20));
                let readings: Vec<Option<i64>> = (0..n as u16)
                    .map(|i| {
                        let p = ProcessId(i);
                        let hw = w.hw_time(p);
                        w.actor(p).member.now_sync(hw).map(|t| t.0)
                    })
                    .collect();
                for a in 0..n {
                    for b in (a + 1)..n {
                        if let (Some(x), Some(y)) = (readings[a], readings[b]) {
                            worst = worst.max((x - y).abs());
                        }
                    }
                }
            }
            // Fail-awareness: partition off {3,4} and time their
            // unsynced report.
            let cut = w.now() + Duration::from_millis(100);
            w.partition_at(cut, &[&[0, 1, 2], &[3, 4]]);
            let noticed =
                timewheel::harness::run_until_pred(&mut w, cut + Duration::from_secs(120), |w| {
                    [3u16, 4].iter().all(|&i| {
                        let p = ProcessId(i);
                        let hw = w.hw_time(p);
                        w.actor(p).member.now_sync(hw).is_none()
                    })
                })
                .expect("minority never lost sync awareness");
            let eps = cfg.epsilon.as_micros();
            table.row(&[
                delta_ms.to_string(),
                format!("{drift_ppm:.0}"),
                worst.to_string(),
                eps.to_string(),
                (worst <= eps).to_string(),
                format!("{:.0}", ms(noticed, cut)),
            ]);
        }
    }
    table.print("T8: fail-aware clock synchronization (N = 5, 10 s sampled)");
    println!("\nclaim check: observed deviation stays within the configured ε for");
    println!("every (δ, ρ) point, and a partitioned minority reports itself");
    println!("unsynchronized within its sync-validity window.");
}
