//! T5 — the timed, fail-aware membership specification (paper §3).
//!
//! The five properties, measured rather than assumed:
//!
//! 1. a ∆-stable process acquires an up-to-date group within ∆;
//! 2. up-to-date groups at the same instant are identical;
//! 3. a ∆-stable process is included in every up-to-date group;
//! 4. a process whose group has been out of date for ∆ is excluded
//!    from all up-to-date groups;
//! 5. every up-to-date group contains a majority.
//!
//! ∆ here is instantiated as a small number of cycles (formation takes
//! ~2 cycles; exclusion one detection timeout + election).

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, ms, Table};
use tw_proto::{Duration, ProcessId};

fn main() {
    let n = 5;
    let params = TeamParams::new(n);
    let cfg = params.protocol_config();
    let cycle_ms = cfg.cycle().as_micros() as f64 / 1_000.0;
    let mut table = Table::new(&["property", "measured", "bound", "holds"]);

    // (1) stability → up-to-date group, from cold start.
    let (mut w, formed) = formed_team(&params);
    let t_up = timewheel::harness::run_until_pred(&mut w, tw_sim::SimTime::MAX, |w| {
        (0..n as u16).all(|i| {
            let p = ProcessId(i);
            w.actor(p).member.is_up_to_date(w.hw_time(p))
        })
    })
    .unwrap();
    let _ = formed;
    table.row(&[
        "(1) stable ⇒ up-to-date within ∆".into(),
        format!("{:.0} ms", ms(t_up, tw_sim::SimTime::ZERO)),
        format!("{:.0} ms (4 cycles)", 4.0 * cycle_ms),
        (ms(t_up, tw_sim::SimTime::ZERO) <= 4.0 * cycle_ms).to_string(),
    ]);

    // (2) identical up-to-date groups: sample every 50 ms for 20 s of
    // stable run plus one crash/recovery episode.
    let mut identical = true;
    w.crash_at(w.now() + Duration::from_secs(2), ProcessId(3));
    w.recover_at(w.now() + Duration::from_secs(8), ProcessId(3));
    let end = w.now() + Duration::from_secs(20);
    while w.now() < end {
        w.run_for(Duration::from_millis(50));
        let mut current: Option<tw_proto::ViewId> = None;
        for i in 0..n as u16 {
            let p = ProcessId(i);
            if w.status(p) != tw_sim::ProcessStatus::Up {
                continue;
            }
            let m = &w.actor(p).member;
            if m.is_up_to_date(w.hw_time(p)) {
                match current {
                    None => current = Some(m.view().id),
                    Some(v) if v != m.view().id => identical = false,
                    _ => {}
                }
            }
        }
    }
    table.row(&[
        "(2) up-to-date groups identical at any instant".into(),
        format!("{identical}"),
        "always".into(),
        identical.to_string(),
    ]);

    // (3) + (5): every sampled up-to-date group contained every stable
    // process and a majority — recheck on a fresh stable run.
    let (mut w2, _) = formed_team(&TeamParams::new(n).seed(11));
    let mut includes_all = true;
    let mut majority = true;
    for _ in 0..100 {
        w2.run_for(Duration::from_millis(50));
        for i in 0..n as u16 {
            let p = ProcessId(i);
            let m = &w2.actor(p).member;
            if m.is_up_to_date(w2.hw_time(p)) {
                majority &= m.view().is_majority_of(n);
                for j in 0..n as u16 {
                    includes_all &= m.view().contains(ProcessId(j));
                }
            }
        }
    }
    table.row(&[
        "(3) stable processes included".into(),
        format!("{includes_all}"),
        "always (while all stable)".into(),
        includes_all.to_string(),
    ]);
    table.row(&[
        "(5) up-to-date groups are majorities".into(),
        format!("{majority}"),
        "always".into(),
        majority.to_string(),
    ]);

    // (4) out-of-date for ∆ ⇒ excluded: partition off {3,4}; measure when
    // the minority members stop claiming up-to-date, and when the
    // majority's group excludes them.
    let (mut w3, _) = formed_team(&TeamParams::new(n).seed(13));
    let cut = w3.now() + Duration::from_millis(500);
    w3.partition_at(cut, &[&[0, 1, 2], &[3, 4]]);
    let minority_knows =
        timewheel::harness::run_until_pred(&mut w3, cut + Duration::from_secs(60), |w| {
            [3u16, 4].iter().all(|&i| {
                let p = ProcessId(i);
                !w.actor(p).member.is_up_to_date(w.hw_time(p))
            })
        })
        .expect("minority never noticed");
    let excluded =
        timewheel::harness::run_until_pred(&mut w3, cut + Duration::from_secs(60), |w| {
            [0u16, 1, 2].iter().all(|&i| {
                let m = &w.actor(ProcessId(i)).member;
                m.state() == timewheel::CreatorState::FailureFree
                    && !m.view().contains(ProcessId(3))
                    && !m.view().contains(ProcessId(4))
            })
        })
        .expect("majority never excluded the minority");
    table.row(&[
        "(4a) minority knows it is out of date".into(),
        format!("{:.0} ms after cut", ms(minority_knows, cut)),
        format!(
            "{:.0} ms (1 cycle + 2D)",
            cycle_ms + 2.0 * cfg.big_d.as_micros() as f64 / 1000.0
        ),
        (ms(minority_knows, cut) <= cycle_ms + 2.0 * cfg.big_d.as_micros() as f64 / 1000.0)
            .to_string(),
    ]);
    table.row(&[
        "(4b) out-of-date processes excluded".into(),
        format!("{:.0} ms after cut", ms(excluded, cut)),
        format!("{:.0} ms (4 cycles)", 4.0 * cycle_ms),
        (ms(excluded, cut) <= 4.0 * cycle_ms).to_string(),
    ]);

    table.print("T5: fail-aware membership specification, measured (N = 5)");
    println!("\ncycle = {cycle_ms:.0} ms; all properties hold within small-cycle bounds.");
}
