//! T6 — join protocol: initial group formation and re-integration.
//!
//! The paper's join state serves two purposes: forming the first group
//! (majority of identical join-lists, one join message per own slot) and
//! re-admitting recovered processes (decider integration once every
//! member's alive-list contains the joiner). Both should complete within
//! a few cycles.

use timewheel::harness::{all_in_group, run_until_pred, TeamParams};
use tw_bench::{formed_team, median, ms, Table};
use tw_proto::{Duration, ProcessId};
use tw_sim::SimTime;

fn main() {
    let mut table = Table::new(&[
        "N",
        "cold_start_ms",
        "cold_start_cycles",
        "rejoin_ms",
        "rejoin_cycles",
    ]);
    for n in [3usize, 5, 7, 9, 13] {
        let cfg = TeamParams::new(n).protocol_config();
        let cycle_us = cfg.cycle().as_micros() as f64;
        let mut cold = Vec::new();
        let mut rejoin = Vec::new();
        for seed in 0..5u64 {
            let params = TeamParams::new(n).seed(600 + seed);
            let (mut w, formed) = formed_team(&params);
            cold.push(ms(formed, SimTime::ZERO));
            // Crash + recover one member, measure re-integration.
            let crash_at = w.now() + Duration::from_secs(1);
            w.crash_at(crash_at, ProcessId(2));
            let recover_at = crash_at + Duration::from_secs(3);
            w.recover_at(recover_at, ProcessId(2));
            w.run_until(recover_at + Duration::from_millis(1));
            let back = run_until_pred(&mut w, recover_at + Duration::from_secs(240), |w| {
                all_in_group(w, n)
            })
            .expect("never rejoined");
            rejoin.push(ms(back, recover_at));
        }
        let cold_med = median(&mut cold);
        let rejoin_med = median(&mut rejoin);
        table.row(&[
            n.to_string(),
            format!("{cold_med:.0}"),
            format!("{:.2}", cold_med * 1_000.0 / cycle_us),
            format!("{rejoin_med:.0}"),
            format!("{:.2}", rejoin_med * 1_000.0 / cycle_us),
        ]);
    }
    table.print("T6: join — cold start and re-integration (5 seeds)");
    println!("\nclaim check: cold start needs ≈2 cycles (everyone must see one full");
    println!("round of matching join-lists); re-integration needs clock resync plus");
    println!("joins plus one decider rotation — a few cycles, independent of load.");
}
