//! Chaos harness for real clusters: run a seeded, deterministic fault
//! schedule against a live in-process cluster and check the paper's
//! guarantees under adversity.
//!
//! For the chosen scenario a [`ChaosSchedule`] is generated as a pure
//! function of `(seed, team, budget)`, executed step by step against a
//! flight-recorded [`ChaosCluster`] while the harness probes each
//! node's locally observable status (§6 fail-awareness), and the
//! recordings are then re-analyzed offline (`tw_obs::analyze`) exactly
//! like CI's trace job. The verdict contains only deterministic fields
//! — seed, schedule fingerprint, script text, guarantee booleans — so
//! two runs of the same seed must produce byte-identical verdicts
//! (`--repeat 2` asserts this).
//!
//! Guarantees checked:
//!
//! * the group forms before any fault fires;
//! * during a partition, some minority member *itself* reports
//!   out-of-date (fail-awareness, §6) while the majority side installs
//!   a minority-free view (progress, §4.2);
//! * during a crash, the survivors install a view without the victim;
//! * after the last fault is healed, every member — including restarted
//!   incarnations rejoining via the §5 join path — converges back to
//!   the full, up-to-date view;
//! * every completed recovery span in the merged recordings fits the
//!   §4.2 analytic envelope (scaled by the number of simultaneously
//!   disturbed members);
//! * the offline audit of the merged recordings is clean, and the
//!   recordings are self-describing (fault events present).
//!
//! Usage: tw-chaos [--scenario loss|partition|crash|random] [--seed N]
//!                 [--team N] [--executor event-loop|threaded|both]
//!                 [--out DIR] [--repeat K]
//!                 [--ops-base PORT] [--ops-addrs FILE]
//!
//! `--ops-base PORT` turns on the live telemetry plane: every node
//! binds an ops endpoint at `127.0.0.1:(PORT + rank)` (falling back to
//! an ephemeral port when the fixed one is taken), so an external
//! scraper or `tw-top` can watch the cluster mid-chaos. `--ops-addrs
//! FILE` writes the actual bound addresses (one per line, rank order)
//! once the group has formed — CI's live-smoke step waits on that file
//! before scraping.
//!
//! Exit codes: 0 all guarantees held, 1 a guarantee was violated,
//! 2 usage or I/O error.

use bytes::Bytes;
use std::fmt::Write as _;
use std::time::{Duration as StdDuration, Instant};
use timewheel::Config;
use tw_obs::{analyze, Analysis, Recording, TraceSet};
use tw_proto::{Duration, Semantics};
use tw_runtime::chaos::recovery_envelope;
use tw_runtime::{
    ChaosCluster, ChaosOp, ChaosSchedule, ExecutorKind, FaultBudget, LinkPlan, OpsSetup,
    RecorderSetup,
};

const USAGE: &str = "usage: tw-chaos [--scenario loss|partition|crash|random] [--seed N] \
[--team N] [--executor event-loop|threaded|both] [--out DIR] [--repeat K] \
[--ops-base PORT] [--ops-addrs FILE]";

#[derive(Clone)]
struct Opts {
    scenario: String,
    seed: u64,
    team: usize,
    executors: Vec<ExecutorKind>,
    out: std::path::PathBuf,
    repeat: usize,
    /// Base port for per-node ops endpoints; 0 = telemetry plane off.
    ops_base: u16,
    /// Where to write the bound ops addresses after formation.
    ops_addrs: Option<std::path::PathBuf>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        scenario: "random".into(),
        seed: 1,
        team: 5,
        executors: vec![ExecutorKind::EventLoop],
        out: "chaos-out".into(),
        repeat: 1,
        ops_base: 0,
        ops_addrs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--scenario" => {
                let s = val("--scenario")?;
                if !["loss", "partition", "crash", "random"].contains(&s.as_str()) {
                    return Err(format!("unknown scenario {s}"));
                }
                opts.scenario = s;
            }
            "--seed" => opts.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--team" => {
                opts.team = val("--team")?.parse().map_err(|e| format!("--team: {e}"))?;
                if opts.team < 3 || opts.team > 16 {
                    return Err("--team must be in 3..=16".into());
                }
            }
            "--executor" => {
                opts.executors = match val("--executor")?.as_str() {
                    "event-loop" => vec![ExecutorKind::EventLoop],
                    "threaded" => vec![ExecutorKind::Threaded],
                    "both" => vec![ExecutorKind::EventLoop, ExecutorKind::Threaded],
                    other => return Err(format!("unknown executor {other}")),
                };
            }
            "--out" => opts.out = val("--out")?.into(),
            "--ops-base" => {
                opts.ops_base =
                    val("--ops-base")?.parse().map_err(|e| format!("--ops-base: {e}"))?;
                if opts.ops_base == 0 {
                    return Err("--ops-base must be nonzero".into());
                }
            }
            "--ops-addrs" => opts.ops_addrs = Some(val("--ops-addrs")?.into()),
            "--repeat" => {
                opts.repeat = val("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?;
                if opts.repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// The budget a named scenario generates its schedule from. Each fixed
/// scenario is a single episode of one fault family; `random` mixes
/// all families over a longer script.
fn scenario_budget(scenario: &str) -> FaultBudget {
    let one_episode = FaultBudget {
        warmup_ms: 2_500,
        duration_ms: 12_000,
        hold_ms: 4_000,
        settle_ms: 4_000,
        episodes: 1,
        loss_plan: LinkPlan::clean(),
        partitions: false,
        crashes: false,
        pauses: false,
    };
    match scenario {
        // ≥10% loss plus duplication and reordering on every link.
        "loss" => FaultBudget {
            loss_plan: LinkPlan {
                drop_ppm: 120_000,
                dup_ppm: 30_000,
                reorder_ppm: 30_000,
                hold_ms: 30,
                ..LinkPlan::clean()
            },
            ..one_episode
        },
        "partition" => FaultBudget {
            partitions: true,
            ..one_episode
        },
        "crash" => FaultBudget {
            crashes: true,
            ..one_episode
        },
        _ => FaultBudget::default(),
    }
}

/// One disruptive interval of the schedule, with the members it
/// disturbs, reconstructed by pairing each fault step with its cleanup.
struct Episode {
    start_ms: u64,
    end_ms: u64,
    /// Ranks cut off / crashed / paused during the interval (empty for
    /// a loss episode, which disturbs links rather than members).
    minority: Vec<usize>,
    is_partition: bool,
    is_crash: bool,
}

fn episodes_of(schedule: &ChaosSchedule) -> Vec<Episode> {
    let mut eps: Vec<Episode> = Vec::new();
    let mut open: Vec<usize> = Vec::new(); // indices into eps
    for step in &schedule.steps {
        match &step.op {
            ChaosOp::Partition(sides) => {
                open.push(eps.len());
                eps.push(Episode {
                    start_ms: step.at_ms,
                    end_ms: u64::MAX,
                    minority: sides
                        .last()
                        .map(|s| s.iter().map(|p| p.rank()).collect())
                        .unwrap_or_default(),
                    is_partition: true,
                    is_crash: false,
                });
            }
            ChaosOp::Crash(p) => {
                open.push(eps.len());
                eps.push(Episode {
                    start_ms: step.at_ms,
                    end_ms: u64::MAX,
                    minority: vec![p.rank()],
                    is_partition: false,
                    is_crash: true,
                });
            }
            ChaosOp::Pause(p) => {
                open.push(eps.len());
                eps.push(Episode {
                    start_ms: step.at_ms,
                    end_ms: u64::MAX,
                    minority: vec![p.rank()],
                    is_partition: false,
                    is_crash: false,
                });
            }
            ChaosOp::SetPlan(plan) if !plan.is_clean() => {
                open.push(eps.len());
                eps.push(Episode {
                    start_ms: step.at_ms,
                    end_ms: u64::MAX,
                    minority: Vec::new(),
                    is_partition: false,
                    is_crash: false,
                });
            }
            ChaosOp::HealAll | ChaosOp::Restart(_) | ChaosOp::Resume(_) => {
                if let Some(i) = open.pop() {
                    eps[i].end_ms = step.at_ms;
                }
            }
            ChaosOp::SetPlan(_) => {
                if let Some(i) = open.pop() {
                    eps[i].end_ms = step.at_ms;
                }
            }
            _ => {}
        }
    }
    eps
}

/// What the in-flight probes observed, folded into booleans.
#[derive(Default)]
struct Probes {
    /// A partition episode ran and some minority member reported
    /// out-of-date by its own clock and watchdog.
    minority_fail_aware: Option<bool>,
    /// During every partition/crash episode the undisturbed majority
    /// installed a view excluding the disturbed members.
    majority_reconfigured: Option<bool>,
}

struct RunOutcome {
    formed: bool,
    reconverged: bool,
    probes: Probes,
    analysis: Option<Analysis>,
}

fn executor_name(kind: ExecutorKind) -> &'static str {
    match kind {
        ExecutorKind::EventLoop => "event-loop",
        ExecutorKind::Threaded => "threaded",
    }
}

/// Execute the schedule against a recorded cluster, probing statuses
/// between steps, then analyze the recordings offline.
fn run_once(
    kind: ExecutorKind,
    cfg: Config,
    schedule: &ChaosSchedule,
    episodes: &[Episode],
    dir: &std::path::Path,
    ops: Option<&OpsSetup>,
    ops_addrs: Option<&std::path::Path>,
) -> Result<RunOutcome, String> {
    let n = cfg.n;
    let setup = RecorderSetup::new(dir).capacity(4096);
    let mut cluster =
        ChaosCluster::spawn_recorded_observed(kind, cfg, schedule.seed, &setup, None, ops)
            .map_err(|e| format!("spawn recorded cluster: {e}"))?;

    let mut out = RunOutcome {
        formed: true,
        reconverged: false,
        probes: Probes::default(),
        analysis: None,
    };

    // Formation must precede adversity: every member sees the full view.
    for rank in 0..n {
        let node = cluster.node(rank).expect("freshly spawned");
        if node.wait_for_view(n, StdDuration::from_secs(30)).is_none() {
            out.formed = false;
        }
    }
    if !out.formed {
        cluster.shutdown();
        return Ok(out);
    }

    // The group is up: publish where the ops endpoints actually landed
    // (fixed base ports, or ephemeral fallbacks) so external scrapers
    // can find them mid-run.
    if let Some(path) = ops_addrs {
        let lines: Vec<String> = (0..n)
            .map(|r| {
                cluster
                    .ops_addr(r)
                    .map(|a| a.to_string())
                    .unwrap_or_default()
            })
            .collect();
        std::fs::write(path, lines.join("\n") + "\n")
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("  ops endpoints: {}", lines.join(" "));
    }

    // Sticky per-episode observations, resolved after the run.
    let mut minority_aware = vec![false; episodes.len()];
    let mut majority_shrank = vec![false; episodes.len()];

    let start = Instant::now();
    let mut proposal: u64 = 0;
    let mut last_proposal = Instant::now() - StdDuration::from_secs(1);
    let probe = |cluster: &ChaosCluster,
                     minority_aware: &mut [bool],
                     majority_shrank: &mut [bool],
                     proposal: &mut u64,
                     last_proposal: &mut Instant| {
        let elapsed = start.elapsed().as_millis() as u64;
        // Background traffic so decisions, deliveries and the oal keep
        // moving while faults fire.
        if last_proposal.elapsed() >= StdDuration::from_millis(100) {
            *last_proposal = Instant::now();
            let rank = (*proposal as usize) % cluster.config().n;
            if let Some(node) = cluster.node(rank) {
                node.propose(
                    Bytes::from(format!("chaos-{proposal}")),
                    Semantics::TOTAL_STRONG,
                );
            }
            *proposal += 1;
        }
        for (i, ep) in episodes.iter().enumerate() {
            if elapsed < ep.start_ms || elapsed >= ep.end_ms || ep.minority.is_empty() {
                continue;
            }
            if ep.is_partition {
                for &r in &ep.minority {
                    if let Some(s) = cluster.status(r) {
                        if !s.up_to_date {
                            minority_aware[i] = true;
                        }
                    }
                }
            }
            if ep.is_partition || ep.is_crash {
                let expected = cluster.config().n - ep.minority.len();
                let ok = (0..cluster.config().n)
                    .filter(|r| !ep.minority.contains(r))
                    .all(|r| cluster.status(r).is_some_and(|s| s.view_len == expected));
                if ok {
                    majority_shrank[i] = true;
                }
            }
        }
    };

    for (i, step) in schedule.steps.iter().enumerate() {
        let due = start + StdDuration::from_millis(step.at_ms);
        while Instant::now() < due {
            probe(
                &cluster,
                &mut minority_aware,
                &mut majority_shrank,
                &mut proposal,
                &mut last_proposal,
            );
            std::thread::sleep(StdDuration::from_millis(25));
        }
        println!("  +{:>6}ms {}", step.at_ms, step.op);
        cluster.apply(&step.op, i as u32);
    }

    // Convergence: every member — restarted incarnations included —
    // back in the full view and up to date.
    let deadline = Instant::now() + StdDuration::from_secs(30);
    while Instant::now() < deadline {
        probe(
            &cluster,
            &mut minority_aware,
            &mut majority_shrank,
            &mut proposal,
            &mut last_proposal,
        );
        let good = (0..n).all(|r| {
            cluster
                .status(r)
                .is_some_and(|s| s.up_to_date && s.view_len == n)
        });
        if good {
            out.reconverged = true;
            break;
        }
        std::thread::sleep(StdDuration::from_millis(50));
    }
    // A short quiet tail so post-recovery cycles reach the recordings.
    std::thread::sleep(StdDuration::from_millis(500));

    let partitions: Vec<usize> = (0..episodes.len())
        .filter(|&i| episodes[i].is_partition)
        .collect();
    if !partitions.is_empty() {
        out.probes.minority_fail_aware = Some(partitions.iter().all(|&i| minority_aware[i]));
    }
    let disruptive: Vec<usize> = (0..episodes.len())
        .filter(|&i| episodes[i].is_partition || episodes[i].is_crash)
        .collect();
    if !disruptive.is_empty() {
        out.probes.majority_reconfigured = Some(disruptive.iter().all(|&i| majority_shrank[i]));
    }

    cluster.flush_recorders();
    let paths = cluster.recording_paths();
    cluster.shutdown();

    let recordings = paths
        .iter()
        .map(|p| Recording::load(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect::<Result<Vec<_>, _>>()?;
    let set = TraceSet::new(recordings)?;
    out.analysis = Some(analyze(&set));
    Ok(out)
}

/// Render the verdict: deterministic fields only (no wall-clock
/// timings, no probabilistic fault counts), stable order, so equal
/// seeds yield byte-identical files.
#[allow(clippy::too_many_arguments)]
fn verdict_json(
    opts: &Opts,
    kind: ExecutorKind,
    schedule: &ChaosSchedule,
    envelope: Duration,
    max_disturbed: usize,
    outcome: &RunOutcome,
    checks: &[(&str, Option<bool>)],
    pass: bool,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"tool\": \"tw-chaos\",");
    let _ = writeln!(s, "  \"scenario\": \"{}\",", opts.scenario);
    let _ = writeln!(s, "  \"seed\": {},", schedule.seed);
    let _ = writeln!(s, "  \"team\": {},", opts.team);
    let _ = writeln!(s, "  \"executor\": \"{}\",", executor_name(kind));
    let _ = writeln!(s, "  \"fingerprint\": \"{:#018x}\",", schedule.fingerprint());
    let _ = writeln!(s, "  \"recovery_envelope_us\": {},", envelope.as_micros());
    let _ = writeln!(s, "  \"max_disturbed\": {max_disturbed},");
    let _ = writeln!(s, "  \"schedule\": [");
    for (i, step) in schedule.steps.iter().enumerate() {
        let comma = if i + 1 == schedule.steps.len() { "" } else { "," };
        let _ = writeln!(s, "    \"+{}ms {}\"{comma}", step.at_ms, step.op);
    }
    let _ = writeln!(s, "  ],");
    let faults: Vec<String> = outcome
        .analysis
        .as_ref()
        .map(|a| a.faults.keys().map(|k| format!("\"{k}\"")).collect())
        .unwrap_or_default();
    let _ = writeln!(s, "  \"fault_kinds_traced\": [{}],", faults.join(", "));
    let _ = writeln!(s, "  \"guarantees\": {{");
    for (i, (name, val)) in checks.iter().enumerate() {
        let comma = if i + 1 == checks.len() { "" } else { "," };
        let v = match val {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(s, "    \"{name}\": {v}{comma}");
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"verdict\": \"{}\"", if pass { "pass" } else { "fail" });
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tw-chaos: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let cfg = Config::for_team(opts.team, Duration::from_millis(10));
    let budget = scenario_budget(&opts.scenario);
    let schedule = ChaosSchedule::generate(opts.seed, opts.team, &budget);
    if schedule.steps.is_empty() {
        eprintln!("tw-chaos: empty schedule (team too small for the scenario?)");
        std::process::exit(2);
    }
    let episodes = episodes_of(&schedule);
    let max_disturbed = episodes
        .iter()
        .map(|e| e.minority.len().max(1))
        .max()
        .unwrap_or(1);
    let envelope = recovery_envelope(&cfg);

    println!(
        "tw-chaos scenario={} seed={} team={} fingerprint={:#018x}",
        opts.scenario,
        opts.seed,
        opts.team,
        schedule.fingerprint()
    );
    print!("{}", schedule.describe());

    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("tw-chaos: create {}: {e}", opts.out.display());
        std::process::exit(2);
    }

    let mut all_pass = true;
    for &kind in &opts.executors {
        let mut first_verdict: Option<String> = None;
        for rep in 0..opts.repeat {
            let dir = opts
                .out
                .join(format!("{}-{}-rep{rep}", opts.scenario, executor_name(kind)));
            println!(
                "== run scenario={} executor={} rep={rep} ==",
                opts.scenario,
                executor_name(kind)
            );
            let ops = (opts.ops_base != 0).then(|| OpsSetup::at(opts.ops_base));
            let outcome = match run_once(
                kind,
                cfg,
                &schedule,
                &episodes,
                &dir,
                ops.as_ref(),
                opts.ops_addrs.as_deref(),
            ) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("tw-chaos: {e}");
                    std::process::exit(2);
                }
            };

            // Envelope check: every completed recovery span fits the
            // §4.2 bound, scaled by the simultaneously disturbed count
            // (each disturbed member costs one detection + ring round).
            let allowed = envelope * max_disturbed as i64;
            let analysis = outcome.analysis.as_ref();
            let recovery_within = analysis.map(|a| {
                a.recoveries
                    .iter()
                    .filter_map(|r| r.total())
                    .all(|t| t <= allowed)
            });
            let spans_completed = if episodes.iter().any(|e| e.is_partition || e.is_crash) {
                Some(analysis.is_some_and(|a| a.recoveries.iter().any(|r| r.total().is_some())))
            } else {
                None
            };
            let audits_clean = analysis.map(|a| a.audits_clean());
            let faults_traced = analysis.map(|a| !a.faults.is_empty());

            let checks: Vec<(&str, Option<bool>)> = vec![
                ("formed", Some(outcome.formed)),
                ("minority_fail_aware", outcome.probes.minority_fail_aware),
                ("majority_reconfigured", outcome.probes.majority_reconfigured),
                ("reconverged", Some(outcome.reconverged)),
                ("recovery_spans_completed", spans_completed),
                ("recovery_within_envelope", recovery_within),
                ("audits_clean", audits_clean),
                ("faults_traced", faults_traced),
            ];
            let pass = checks.iter().all(|(_, v)| *v != Some(false));
            for (name, val) in &checks {
                let shown = match val {
                    Some(b) => b.to_string(),
                    None => "n/a".into(),
                };
                println!("  {name:<26} {shown}");
            }
            if let Some(a) = analysis {
                if !a.audit.is_empty() || !a.cross.is_empty() {
                    for v in a.audit.iter().chain(a.cross.iter()) {
                        eprintln!("  audit violation: {v:?}");
                    }
                }
            }

            let verdict = verdict_json(
                &opts,
                kind,
                &schedule,
                envelope,
                max_disturbed,
                &outcome,
                &checks,
                pass,
            );
            let vpath = dir.join("verdict.json");
            if let Err(e) = std::fs::write(&vpath, &verdict) {
                eprintln!("tw-chaos: write {}: {e}", vpath.display());
                std::process::exit(2);
            }
            println!("  verdict {} -> {}", if pass { "PASS" } else { "FAIL" }, vpath.display());
            all_pass &= pass;

            // Same seed, same schedule, same guarantees: the verdict
            // must be byte-identical across repeats.
            match &first_verdict {
                None => first_verdict = Some(verdict),
                Some(first) if *first == verdict => {
                    println!("  verdict identical to rep0 (deterministic)");
                }
                Some(_) => {
                    eprintln!("tw-chaos: verdict differs from rep0 — determinism violated");
                    all_pass = false;
                }
            }
        }
    }
    std::process::exit(if all_pass { 0 } else { 1 });
}
