//! Codec probe — v1 (`tw_proto::codec`) vs v2 framed (`tw_proto::frame`).
//!
//! Measures encode/decode cost and wire size over a seeded hot-path
//! message mix (proposals and decisions dominate, as on a loaded team),
//! plus the batched case the runtime actually exercises: eight messages
//! packed into one multi-frame datagram through a reused
//! [`FrameBuilder`].
//!
//! Deliberately self-contained — no serde_json, no rand, no criterion —
//! so the shadow harness can build and run it offline, and so the JSON
//! it emits is byte-stable given the same inputs. The emitted JSON is
//! the committed `BENCH_proto_codec.json` baseline consumed by
//! `cargo xtask bench-gate` (see DESIGN.md §12 for the refresh
//! procedure).
//!
//! Usage: `exp_proto_codec [--iters N] [--seed S] [--out FILE]`

#![forbid(unsafe_code)]

use bytes::Bytes;
use std::time::Instant;
use tw_proto::codec::{Decode, Encode};
use tw_proto::frame::{self, FrameBuilder};
use tw_proto::{
    AckBits, ClockSyncMsg, Decision, Descriptor, HwTime, Incarnation, Join, Msg, NoDecision, Oal,
    Ordinal, ProcessId, Proposal, Semantics, SyncTime, View, ViewId,
};

/// SplitMix64 — tiny, seedable, dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn team_view(n: u16) -> View {
    View::new(ViewId::new(7, ProcessId(0)), (0..n).map(ProcessId))
}

fn proposal(rng: &mut SplitMix64, n: u16) -> Proposal {
    let payload_len = 8 + rng.below(56) as usize;
    Proposal {
        sender: ProcessId(rng.below(n as u64) as u16),
        incarnation: Incarnation(1),
        seq: 1 + rng.below(1 << 16),
        send_ts: SyncTime(1_000_000 + rng.below(1 << 30) as i64),
        hdo: Ordinal(rng.below(1 << 10)),
        semantics: match rng.below(3) {
            0 => Semantics::TOTAL_STRONG,
            1 => Semantics::TIME_STRICT,
            _ => Semantics::UNORDERED_WEAK,
        },
        payload: Bytes::from(vec![rng.next() as u8; payload_len]),
    }
}

fn decision(rng: &mut SplitMix64, n: u16) -> Decision {
    let view = team_view(n);
    let mut oal = Oal::new();
    for _ in 0..8 {
        let p = proposal(rng, n);
        let ord = oal.append(Descriptor::update(
            p.id(),
            p.hdo,
            p.semantics,
            p.send_ts,
            p.sender,
        ));
        for rank in 0..n {
            if rng.below(2) == 0 {
                oal.ack(ord, ProcessId(rank));
            }
        }
    }
    let mut alive = AckBits::EMPTY;
    for rank in 0..n {
        alive.set(ProcessId(rank));
    }
    Decision {
        sender: ProcessId(rng.below(n as u64) as u16),
        send_ts: SyncTime(2_000_000 + rng.below(1 << 30) as i64),
        view,
        oal,
        alive,
    }
}

/// The hot-path mix: mostly proposals and decisions, a sprinkle of the
/// rest so every tag stays on the measured path.
fn workload(seed: u64, count: usize, n: u16) -> Vec<Msg> {
    let mut rng = SplitMix64(seed);
    let mut alive = AckBits::EMPTY;
    for rank in 0..n {
        alive.set(ProcessId(rank));
    }
    (0..count)
        .map(|_| match rng.below(100) {
            0..=59 => Msg::Proposal(proposal(&mut rng, n)),
            60..=84 => Msg::Decision(decision(&mut rng, n)),
            85..=89 => Msg::NoDecision(NoDecision {
                sender: ProcessId(rng.below(n as u64) as u16),
                send_ts: SyncTime(3_000_000),
                suspect: ProcessId(0),
                view_id: ViewId::new(7, ProcessId(0)),
                oal_view: Oal::new(),
                dpd: vec![proposal(&mut rng, n).desc()],
                alive,
            }),
            90..=94 => Msg::ClockSync(ClockSyncMsg::Reply {
                sender: ProcessId(rng.below(n as u64) as u16),
                rid: rng.next() & 0xFFFF,
                hw_send_echo: HwTime(rng.below(1 << 40) as i64),
                sync_at_reply: SyncTime(rng.below(1 << 40) as i64),
                synced: true,
            }),
            _ => Msg::Join(Join {
                sender: ProcessId(rng.below(n as u64) as u16),
                incarnation: Incarnation(2),
                send_ts: SyncTime(4_000_000),
                join_list: vec![(ProcessId(1), Incarnation(2))],
                alive,
            }),
        })
        .collect()
}

/// Time `f` over the workload; returns (ns/msg, black-box checksum).
fn measure(msgs: &[Msg], reps: usize, mut f: impl FnMut(&Msg) -> u64) -> (f64, u64) {
    let mut sum = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        for m in msgs {
            sum = sum.wrapping_add(f(m));
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / (reps * msgs.len()) as f64;
    (ns, sum)
}

struct Metric {
    name: &'static str,
    value: f64,
    /// "lower" or "higher" is better.
    better: &'static str,
    /// Machine-independent (sizes, ratios) vs timing-dependent. The
    /// bench gate only compares non-portable metrics when the machine
    /// tags match.
    portable: bool,
}

fn emit_json(bench: &str, seed: u64, iters: usize, metrics: &[Metric]) -> String {
    let machine = format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH);
    let rows: Vec<String> = metrics
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"value\": {:.4}, \"better\": \"{}\", \"portable\": {}}}",
                m.name, m.value, m.better, m.portable
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"schema\": 1,\n  \"machine\": \"{machine}\",\n  \
         \"seed\": {seed},\n  \"iters\": {iters},\n  \"metrics\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

fn main() {
    let mut iters = 2_000usize;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => iters = args.next().expect("--iters N").parse().expect("number"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("number"),
            "--out" => out = Some(args.next().expect("--out FILE")),
            other => {
                eprintln!("unknown arg {other}; usage: exp_proto_codec [--iters N] [--seed S] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let n = 5u16;
    let msgs = workload(seed, 512, n);
    let reps = iters.div_ceil(512).max(1);

    // Warm-up pass so first-touch page faults don't land in v1's column.
    for m in &msgs {
        let _ = m.to_bytes();
        let _ = frame::encode_single(m);
    }

    let (v1_enc_ns, _) = measure(&msgs, reps, |m| m.to_bytes().len() as u64);
    let v1_bytes: Vec<Bytes> = msgs.iter().map(|m| m.to_bytes()).collect();
    let mut i = 0usize;
    let (v1_dec_ns, _) = measure(&msgs, reps, |_| {
        let b = &v1_bytes[i % v1_bytes.len()];
        i += 1;
        Msg::from_bytes(b).expect("v1 decode").sender().0 as u64
    });

    // v2 single-message datagrams through one reused builder.
    let mut builder = FrameBuilder::new();
    let (v2_enc_ns, _) = measure(&msgs, reps, |m| {
        builder.reset();
        builder.push_msg(m);
        builder.bytes().len() as u64
    });
    let v2_dgrams: Vec<Vec<u8>> = msgs.iter().map(frame::encode_single).collect();
    let mut j = 0usize;
    let (v2_dec_ns, _) = measure(&msgs, reps, |_| {
        let d = &v2_dgrams[j % v2_dgrams.len()];
        j += 1;
        frame::decode_datagram(d).expect("v2 decode")[0].sender().0 as u64
    });

    // Batched: 8 messages per datagram, encode + decode per message.
    let mut batch_builder = FrameBuilder::new();
    let start = Instant::now();
    let mut batched_total = 0usize;
    for _ in 0..reps {
        for chunk in msgs.chunks(8) {
            batch_builder.reset();
            for m in chunk {
                batch_builder.push_msg(m);
            }
            batched_total += batch_builder.bytes().len();
        }
    }
    let v2_batch_enc_ns = start.elapsed().as_nanos() as f64 / (reps * msgs.len()) as f64;
    let batch_dgrams: Vec<Vec<u8>> = msgs
        .chunks(8)
        .map(|chunk| {
            let mut b = FrameBuilder::new();
            for m in chunk {
                b.push_msg(m);
            }
            b.bytes().to_vec()
        })
        .collect();
    let start = Instant::now();
    let mut decoded = 0usize;
    for _ in 0..reps {
        for d in &batch_dgrams {
            decoded += frame::decode_datagram(d).expect("v2 batch decode").len();
        }
    }
    let v2_batch_dec_ns = start.elapsed().as_nanos() as f64 / decoded as f64;

    let v1_total: usize = v1_bytes.iter().map(|b| b.len()).sum();
    let v2_total: usize = v2_dgrams.iter().map(|d| d.len()).sum();
    let v1_bpm = v1_total as f64 / msgs.len() as f64;
    let v2_bpm = v2_total as f64 / msgs.len() as f64;
    let batch_bpm = batched_total as f64 / (reps * msgs.len()) as f64;

    let metrics = [
        Metric { name: "v1_encode_ns_per_msg", value: v1_enc_ns, better: "lower", portable: false },
        Metric { name: "v1_decode_ns_per_msg", value: v1_dec_ns, better: "lower", portable: false },
        Metric { name: "v2_encode_ns_per_msg", value: v2_enc_ns, better: "lower", portable: false },
        Metric { name: "v2_decode_ns_per_msg", value: v2_dec_ns, better: "lower", portable: false },
        Metric { name: "v2_batch_encode_ns_per_msg", value: v2_batch_enc_ns, better: "lower", portable: false },
        Metric { name: "v2_batch_decode_ns_per_msg", value: v2_batch_dec_ns, better: "lower", portable: false },
        Metric { name: "v1_bytes_per_msg", value: v1_bpm, better: "lower", portable: true },
        Metric { name: "v2_bytes_per_msg", value: v2_bpm, better: "lower", portable: true },
        Metric { name: "v2_batch_bytes_per_msg", value: batch_bpm, better: "lower", portable: true },
    ];

    println!("== proto codec probe (seed {seed}, {} msgs x {reps} reps, team n={n}) ==", msgs.len());
    println!("{:<28} {:>12} {:>8}", "metric", "value", "better");
    for m in &metrics {
        println!("{:<28} {:>12.2} {:>8}", m.name, m.value, m.better);
    }
    println!(
        "\nv2 is {:.1}% smaller than v1 on the wire; batching amortizes the \
         version byte and builder reset across 8 frames.",
        100.0 * (1.0 - v2_bpm / v1_bpm)
    );

    let json = emit_json("proto_codec", seed, iters, &metrics);
    match out {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(&path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create --out dir");
                }
            }
            std::fs::write(&path, &json).expect("write --out file");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
