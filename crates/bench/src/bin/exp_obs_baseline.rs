//! Observability overhead baseline.
//!
//! The structured observability layer (tw-obs) sits on the protocol's hot
//! paths: every send bumps a registry counter, every dispatch records a
//! histogram sample, and every decision point runs one `Tracer::emit`
//! branch (constructing nothing when no sink is attached). This binary
//! measures those per-operation costs plus an end-to-end simulator run,
//! and writes `BENCH_obs_baseline.json` so CI can track regressions.

use std::time::Instant;
use timewheel::harness::TeamParams;
use tw_bench::{formed_team, Table};
use tw_obs::{ClockStamp, Registry, TraceEvent, Tracer, VecSink, LATENCY_BOUNDS_US};
use tw_proto::{HwTime, ProcessId, SyncTime, ViewId};

/// Nanoseconds per call of `f`, averaged over `iters` calls.
fn per_op_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn sample_event() -> TraceEvent {
    TraceEvent::DecisionSent {
        pid: ProcessId(1),
        at: ClockStamp {
            hw: HwTime::from_micros(42),
            sync: SyncTime::from_micros(40),
        },
        send_ts: SyncTime::from_micros(40),
        view: ViewId::new(7, ProcessId(0)),
    }
}

fn main() {
    const ITERS: u64 = 5_000_000;

    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let histogram = registry.histogram("bench.histogram", &LATENCY_BOUNDS_US);

    let counter_inc_ns = per_op_ns(ITERS, || counter.inc());
    let mut v = 0u64;
    let histogram_record_ns = per_op_ns(ITERS, || {
        v = (v + 37) % 2_000_000;
        histogram.record(v);
    });

    let disabled = Tracer::disabled();
    let tracer_disabled_emit_ns = per_op_ns(ITERS, || disabled.emit(sample_event));

    let sink = std::sync::Arc::new(VecSink::new());
    let attached = Tracer::new(sink.clone());
    // Fewer iterations: this one actually stores events.
    let tracer_vecsink_emit_ns = per_op_ns(ITERS / 10, || attached.emit(sample_event));

    // Snapshot cost on a realistically sized registry.
    let big = Registry::new();
    for i in 0..48 {
        big.counter(&format!("c{i}")).add(i);
    }
    for i in 0..4 {
        big.histogram(&format!("h{i}"), &LATENCY_BOUNDS_US).record(i);
    }
    let snapshot_us = per_op_ns(10_000, || {
        std::hint::black_box(big.snapshot());
    }) / 1000.0;

    // End-to-end: the registry-backed Stats ledger under the T1 workload.
    let params = TeamParams::new(5);
    let cfg = params.protocol_config();
    let (mut w, _) = formed_team(&params);
    w.reset_stats();
    let cycles = 200i64;
    let wall = Instant::now();
    w.run_for(cfg.cycle() * cycles);
    let sim_run_ms = wall.elapsed().as_secs_f64() * 1000.0;
    let total_sends = w.stats().total_sends();
    let membership = w.stats().sends_of(&["no-decision", "join", "reconfig"]);
    assert_eq!(membership, 0, "failure-free run grew membership traffic");

    let mut table = Table::new(&["metric", "value"]);
    let rows: &[(&str, String)] = &[
        ("counter_inc_ns", format!("{counter_inc_ns:.1}")),
        ("histogram_record_ns", format!("{histogram_record_ns:.1}")),
        (
            "tracer_disabled_emit_ns",
            format!("{tracer_disabled_emit_ns:.1}"),
        ),
        (
            "tracer_vecsink_emit_ns",
            format!("{tracer_vecsink_emit_ns:.1}"),
        ),
        ("registry_snapshot_us", format!("{snapshot_us:.2}")),
        ("sim_5x200cycles_ms", format!("{sim_run_ms:.1}")),
        ("sim_total_sends", total_sends.to_string()),
    ];
    for (k, val) in rows {
        table.row(&[k.to_string(), val.clone()]);
    }
    table.print("OBS: observability layer overhead baseline");

    let json = serde_json::json!({
        "experiment": "obs_baseline",
        "iters": ITERS,
        "counter_inc_ns": counter_inc_ns,
        "histogram_record_ns": histogram_record_ns,
        "tracer_disabled_emit_ns": tracer_disabled_emit_ns,
        "tracer_vecsink_emit_ns": tracer_vecsink_emit_ns,
        "registry_snapshot_us": snapshot_us,
        "sim": {
            "team": 5,
            "cycles": cycles,
            "run_ms": sim_run_ms,
            "total_sends": total_sends,
            "membership_msgs": membership,
        },
    });
    let path = "BENCH_obs_baseline.json";
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serialize"))
        .expect("write baseline");
    println!("\nwrote {path}");
}
