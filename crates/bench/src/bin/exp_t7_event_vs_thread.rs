//! T7 — event-based vs thread-based implementation (paper §5, ref \[22]).
//!
//! The paper reports that an initial thread-based implementation had
//! "significant performance overhead" from the large number of threads
//! and from scheduling them explicitly, and switched to a single-threaded
//! event handler. We reproduce the comparison on real threads: the same
//! protocol core, same in-process datagram mesh, hosted by the two
//! executors.
//!
//! Two workloads, both using unordered/weak updates so that delivery
//! happens at *receipt* (executor dispatch cost dominates, not the
//! decider rotation):
//!
//! * **throughput** — one node floods updates; time until another node
//!   has delivered them all;
//! * **latency** — paced updates carrying send timestamps; receiver-side
//!   propose→deliver latency distribution.

use bytes::Bytes;
use std::time::{Duration as StdDuration, Instant};
use timewheel::Config;
use tw_bench::{mean, percentile, Table};
use tw_proto::{Duration, Semantics};
use tw_runtime::{spawn_cluster, ExecutorKind, NodeOutput};

fn formed_nodes(kind: ExecutorKind) -> Vec<tw_runtime::Node> {
    let n = 3;
    let cfg = Config::for_team(n, Duration::from_millis(10));
    let nodes = spawn_cluster(kind, cfg);
    for node in &nodes {
        node.wait_for_view(n, StdDuration::from_secs(30))
            .expect("formation");
    }
    nodes
}

/// Offer weak updates from node 0 at `rate` updates/second for
/// `secs` seconds; return the delivered rate observed at node 1 (with a
/// bounded drain window after the offered load ends).
fn throughput(kind: ExecutorKind, rate: usize, secs: u64) -> f64 {
    let nodes = formed_nodes(kind);
    while nodes[1].outputs.try_recv().is_ok() {}
    let count = rate * secs as usize;
    let batch = (rate / 500).max(1); // one batch every ~2 ms
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < count {
        let due = start + StdDuration::from_micros((sent as u64 * 1_000_000) / rate as u64);
        if let Some(d) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(d);
        }
        for _ in 0..batch.min(count - sent) {
            nodes[0].propose(Bytes::from_static(b"x"), Semantics::UNORDERED_WEAK);
            sent += 1;
        }
    }
    let mut delivered = 0usize;
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while delivered < count && Instant::now() < deadline {
        match nodes[1].outputs.recv_timeout(StdDuration::from_millis(250)) {
            Ok(NodeOutput::Delivery(_)) => delivered += 1,
            Ok(_) => {}
            Err(_) => {}
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    for n in nodes {
        n.shutdown();
    }
    delivered as f64 / elapsed
}

/// Paced weak updates with embedded timestamps; receiver-side latency
/// (mean, p99) in microseconds.
fn latency(kind: ExecutorKind, count: usize) -> (f64, f64) {
    let nodes = formed_nodes(kind);
    while nodes[1].outputs.try_recv().is_ok() {}
    let epoch = Instant::now();
    let mut lats = Vec::with_capacity(count);
    for _ in 0..count {
        let t_us = epoch.elapsed().as_micros() as u64;
        nodes[0].propose(
            Bytes::from(t_us.to_le_bytes().to_vec()),
            Semantics::UNORDERED_WEAK,
        );
        // Collect while pacing at ~500/s.
        let pace_until = Instant::now() + StdDuration::from_millis(2);
        loop {
            let left = pace_until.saturating_duration_since(Instant::now());
            match nodes[1].outputs.recv_timeout(left) {
                Ok(NodeOutput::Delivery(d)) => {
                    let sent = u64::from_le_bytes(d.payload.as_ref().try_into().unwrap());
                    let now = epoch.elapsed().as_micros() as u64;
                    lats.push((now - sent) as f64);
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
    // Drain stragglers.
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while lats.len() < count && Instant::now() < deadline {
        match nodes[1].outputs.recv_timeout(StdDuration::from_millis(100)) {
            Ok(NodeOutput::Delivery(d)) => {
                let sent = u64::from_le_bytes(d.payload.as_ref().try_into().unwrap());
                let now = epoch.elapsed().as_micros() as u64;
                lats.push((now - sent) as f64);
            }
            Ok(_) => {}
            Err(_) => {}
        }
    }
    for n in nodes {
        n.shutdown();
    }
    (mean(&lats), percentile(&mut lats, 99.0))
}

fn main() {
    // Warm-up.
    let _ = throughput(ExecutorKind::EventLoop, 1_000, 1);

    let mut sweep = Table::new(&[
        "offered_upd/s",
        "event-loop_delivered/s",
        "threaded_delivered/s",
    ]);
    let mut last_pair = (0.0f64, 0.0f64);
    for rate in [1_000usize, 5_000, 20_000, 60_000] {
        let ev = throughput(ExecutorKind::EventLoop, rate, 3);
        let th = throughput(ExecutorKind::Threaded, rate, 3);
        last_pair = (ev, th);
        sweep.row(&[rate.to_string(), format!("{ev:.0}"), format!("{th:.0}")]);
    }
    sweep.print("T7a: sustained throughput vs offered load (N = 3, unordered/weak)");

    let mut lat = Table::new(&["executor", "mean_latency_us", "p99_latency_us"]);
    for (label, kind) in [
        ("event-loop (paper §5)", ExecutorKind::EventLoop),
        ("thread-per-event-type", ExecutorKind::Threaded),
    ] {
        let (m, p99) = latency(kind, 500);
        lat.row(&[label.into(), format!("{m:.0}"), format!("{p99:.0}")]);
    }
    lat.print("T7b: propose→deliver latency at low load (500 upd/s)");

    println!(
        "\nshape check: at low load both executors keep up; past saturation the\n\
         thread-per-event-type design collapses ({:.0} vs {:.0} delivered/s at the\n\
         highest offered load) under lock hand-offs and context switches —\n\
         the overhead paper §5 cites for rejecting the thread-based design.",
        last_pair.0, last_pair.1
    );
}
