//! Hot-path saturation probe — the T7-style throughput measurement that
//! backs the batching claims, plus the syscall ledger behind them.
//!
//! Two scenarios, both flooding unordered/weak updates (delivery at
//! receipt, so executor + wire cost dominates, not the decider
//! rotation):
//!
//! * **mem** — n = 3 event-loop cluster on the in-process mesh, load
//!   windowed at saturation: delivered updates/second at a
//!   non-proposing node.
//! * **udp** — n = 5 cluster on real UDP sockets with the v2 framed
//!   codec: delivered/second plus the sender's [`WireStats`] — how many
//!   `sendmmsg`/`send_to` syscalls, datagrams and messages the flood
//!   actually cost. `syscall_reduction` = messages per syscall: what an
//!   unbatched one-sendto-per-message runtime would have paid, divided
//!   by what the batched runtime paid.
//!
//! Self-contained (no serde_json/rand/criterion) so the shadow harness
//! can build it offline. Emits the `BENCH_hotpath.json` baseline for
//! `cargo xtask bench-gate`; see DESIGN.md §12 for the refresh
//! procedure.
//!
//! Usage: `exp_hotpath [--quick] [--updates N] [--out FILE] [--machine TAG]`
//!
//! `--machine` overrides the default `os-arch` tag in the emitted JSON.
//! Baselines measured off CI hardware (e.g. the single-vCPU dev
//! container) must carry a tag no CI runner matches, so the gate skips
//! their non-portable timings instead of comparing across machines.

#![forbid(unsafe_code)]

use bytes::Bytes;
use std::time::{Duration as StdDuration, Instant};
use timewheel::Config;
use tw_proto::{Duration, Semantics};
use tw_runtime::{spawn_cluster, spawn_udp_cluster, ExecutorKind, Node, NodeOutput, WireStats};

fn formed(nodes: &[Node], n: usize) {
    for node in nodes {
        node.wait_for_view(n, StdDuration::from_secs(30))
            .expect("group formation");
    }
}

fn drain(node: &Node) {
    while node.outputs.try_recv().is_ok() {}
}

/// Flood `count` weak updates from `nodes[0]`, count deliveries at
/// `nodes[1]`; returns (delivered, elapsed seconds up to the last
/// delivery).
///
/// The flood is windowed (at most `WINDOW` proposals outstanding, well
/// under `INBOX_CAPACITY` and the UDP socket buffers): an open-loop
/// burst would overrun the bounded inboxes on a slow machine and
/// measure the shed path instead of delivery throughput. A stall (no
/// delivery for 250 ms) re-opens the window: under overload the
/// membership protocol may briefly exclude a member — fail-awareness
/// working as designed — and weak updates in flight when the view
/// changed are gone, so waiting for them would deadlock the flood.
fn flood(nodes: &[Node], count: usize) -> (usize, f64) {
    const WINDOW: usize = 1024;
    drain(&nodes[1]);
    let start = Instant::now();
    let deadline = start + StdDuration::from_secs(60);
    let mut proposed = 0usize;
    let mut delivered = 0usize;
    // Deliveries plus proposals presumed lost to a view change.
    let mut acked = 0usize;
    let mut last_delivery = start;
    loop {
        while proposed < count && proposed - acked < WINDOW {
            nodes[0].propose(Bytes::from_static(b"x"), Semantics::UNORDERED_WEAK);
            proposed += 1;
        }
        if delivered >= count || Instant::now() >= deadline {
            break;
        }
        match nodes[1].outputs.recv_timeout(StdDuration::from_millis(250)) {
            Ok(NodeOutput::Delivery(_)) => {
                delivered += 1;
                acked += 1;
                last_delivery = Instant::now();
            }
            Ok(_) => {}
            Err(_) => {
                if proposed == count {
                    // Everything sent and the pipe has drained dry.
                    break;
                }
                acked = proposed;
            }
        }
    }
    (delivered, (last_delivery - start).as_secs_f64().max(1e-9))
}

fn mem_throughput(count: usize) -> f64 {
    let n = 3;
    let nodes = spawn_cluster(
        ExecutorKind::EventLoop,
        Config::for_team(n, Duration::from_millis(10)),
    );
    formed(&nodes, n);
    let (delivered, secs) = flood(&nodes, count);
    for node in nodes {
        node.shutdown();
    }
    assert!(
        delivered * 2 >= count,
        "mem flood lost more than half its updates: {delivered}/{count}"
    );
    delivered as f64 / secs
}

fn udp_throughput(count: usize) -> (f64, WireStats) {
    let n = 5;
    let nodes = spawn_udp_cluster(
        ExecutorKind::EventLoop,
        Config::for_team(n, Duration::from_millis(10)),
    )
    .expect("udp cluster");
    formed(&nodes, n);
    let (delivered, secs) = flood(&nodes, count);
    let wire = nodes[0].wire_stats().expect("udp node has wire stats");
    for node in nodes {
        node.shutdown();
    }
    assert!(
        delivered * 2 >= count,
        "udp flood lost more than half its updates: {delivered}/{count}"
    );
    (delivered as f64 / secs, wire)
}

struct Metric {
    name: &'static str,
    value: f64,
    better: &'static str,
    portable: bool,
}

fn emit_json(seed: u64, iters: usize, machine: &str, metrics: &[Metric]) -> String {
    let rows: Vec<String> = metrics
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"value\": {:.4}, \"better\": \"{}\", \"portable\": {}}}",
                m.name, m.value, m.better, m.portable
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"schema\": 1,\n  \"machine\": \"{machine}\",\n  \
         \"seed\": {seed},\n  \"iters\": {iters},\n  \"metrics\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

fn main() {
    let mut updates = 60_000usize;
    let mut out: Option<String> = None;
    let mut machine =
        format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => updates = 10_000,
            "--updates" => {
                updates = args.next().expect("--updates N").parse().expect("number")
            }
            "--out" => out = Some(args.next().expect("--out FILE")),
            "--machine" => machine = args.next().expect("--machine TAG"),
            other => {
                eprintln!(
                    "unknown arg {other}; usage: exp_hotpath [--quick] [--updates N] \
                     [--out FILE] [--machine TAG]"
                );
                std::process::exit(2);
            }
        }
    }

    // Warm-up: group formation + first flood touch every code path once.
    let _ = mem_throughput(updates / 10);

    let mem_rate = mem_throughput(updates);
    let (udp_rate, wire) = udp_throughput(updates);

    let syscall_reduction = wire.msgs_sent as f64 / wire.send_syscalls.max(1) as f64;
    let msgs_per_datagram = wire.msgs_sent as f64 / wire.datagrams_sent.max(1) as f64;

    let metrics = [
        Metric { name: "mem_delivered_per_s", value: mem_rate, better: "higher", portable: false },
        Metric { name: "udp_delivered_per_s", value: udp_rate, better: "higher", portable: false },
        Metric { name: "udp_syscall_reduction", value: syscall_reduction, better: "higher", portable: false },
        Metric { name: "udp_msgs_per_datagram", value: msgs_per_datagram, better: "higher", portable: false },
    ];

    println!("== hot-path saturation probe ({updates} weak updates, backend: {}) ==", tw_runtime::mmsg::backend());
    println!("{:<24} {:>14}", "metric", "value");
    for m in &metrics {
        println!("{:<24} {:>14.1}", m.name, m.value);
    }
    println!(
        "\nudp sender wire ledger (n=5): {} syscalls, {} datagrams, {} messages \
         ({} decode errors at receivers would show in their own ledgers)\n\
         an unbatched runtime pays one syscall per message: {:.1}x fewer syscalls here.",
        wire.send_syscalls, wire.datagrams_sent, wire.msgs_sent, wire.decode_errors,
        syscall_reduction
    );

    let json = emit_json(0, updates, &machine, &metrics);
    match out {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(&path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create --out dir");
                }
            }
            std::fs::write(&path, &json).expect("write --out file");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
