//! A2 — ablation: what does the single-failure fast path buy?
//!
//! The paper's headline optimization is handling the common case — one
//! crash or one lost decision — with the lightweight no-decision ring
//! instead of the heavyweight slotted reconfiguration. We disable the
//! fast path (every timeout failure goes straight to n-failure state)
//! and compare single-crash recovery latency and message cost.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, median, ms, Table};
use tw_proto::{Duration, ProcessId};

fn run(n: usize, fastpath: bool) -> (f64, f64, f64) {
    let mut samples = Vec::new();
    let mut nds = Vec::new();
    let mut reconfigs = Vec::new();
    for seed in 0..5u64 {
        let mut params = TeamParams::new(n).seed(800 + seed);
        let mut cfg = params.protocol_config();
        cfg.single_failure_fastpath = fastpath;
        params.config = Some(cfg);
        let (mut w, _) = formed_team(&params);
        let crash_at = w.now() + Duration::from_secs(1);
        w.crash_at(crash_at, ProcessId(1));
        w.reset_stats();
        let recovered =
            timewheel::harness::run_until_pred(&mut w, crash_at + Duration::from_secs(120), |w| {
                (0..n as u16).filter(|&i| i != 1).all(|i| {
                    let m = &w.actor(ProcessId(i)).member;
                    m.state() == timewheel::CreatorState::FailureFree && m.view().len() == n - 1
                })
            })
            .expect("never recovered");
        samples.push(ms(recovered, crash_at));
        nds.push(w.stats().kind("no-decision").sends as f64);
        reconfigs.push(w.stats().kind("reconfig").sends as f64);
    }
    (
        median(&mut samples),
        median(&mut nds),
        median(&mut reconfigs),
    )
}

fn main() {
    let mut table = Table::new(&[
        "N",
        "path",
        "recovery_ms(median)",
        "no-decision_msgs",
        "reconfig_msgs",
    ]);
    let mut pairs = Vec::new();
    for n in [5usize, 9, 13] {
        let fast = run(n, true);
        let slow = run(n, false);
        pairs.push((n, fast.0, slow.0));
        table.row(&[
            n.to_string(),
            "fast path (paper)".into(),
            format!("{:.0}", fast.0),
            format!("{:.0}", fast.1),
            format!("{:.0}", fast.2),
        ]);
        table.row(&[
            n.to_string(),
            "reconfig only".into(),
            format!("{:.0}", slow.0),
            format!("{:.0}", slow.1),
            format!("{:.0}", slow.2),
        ]);
    }
    table.print("A2: single-failure fast path vs reconfiguration-only (1 crash, 5 seeds)");
    println!("\nshape check: the no-decision ring recovers a single crash");
    for (n, f, s) in pairs {
        println!(
            "  N={n}: {:.1}× faster than going straight to reconfiguration ({f:.0} vs {s:.0} ms)",
            s / f
        );
    }
    println!("— the asymmetry the paper optimizes for (single failures are common).");
}
