//! T9 — §4.3: ordering/atomicity preservation across membership changes.
//!
//! When a member departs mid-stream, the new decider must classify and
//! discard undeliverable proposals (lost / orphan-order /
//! orphan-atomicity / unknown-dependency) so that no semantics are
//! violated. We run the full 3×3 semantics matrix as in-flight load
//! while crashing a proposer, then check:
//!
//! * every survivor delivers exactly the same set of updates per
//!   semantics class (agreement);
//! * all order invariants hold (total order, time order, FIFO);
//! * the purge report of the new decider accounts for the suppressed
//!   updates.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, inject_proposals, Table};
use tw_proto::{Duration, ProcessId, Semantics};

fn main() {
    let n = 5;
    let params = TeamParams::new(n).seed(909);
    let (mut w, _) = formed_team(&params);

    // Interleave the full semantics matrix as load (180 proposals from
    // all senders, including the soon-to-crash p2).
    let sems: Vec<Semantics> = Semantics::matrix().collect();
    for (i, sem) in sems.iter().enumerate() {
        inject_proposals(
            &mut w,
            n,
            20,
            *sem,
            Duration::from_millis(30 + 5 * i as i64),
            Duration::from_millis(45),
        );
    }
    // Crash p2 in the middle of the stream.
    let crash_at = w.now() + Duration::from_millis(450);
    w.crash_at(crash_at, ProcessId(2));
    w.run_for(Duration::from_secs(30));

    timewheel::invariants::assert_all(&w);

    let survivors = [0u16, 1, 3, 4];
    let mut table = Table::new(&["semantics", "p0", "p1", "p3", "p4", "agree"]);
    let mut all_agree = true;
    for sem in &sems {
        let sets: Vec<std::collections::BTreeSet<tw_proto::ProposalId>> = survivors
            .iter()
            .map(|&i| {
                w.actor(ProcessId(i))
                    .deliveries
                    .iter()
                    .filter(|(_, d)| d.semantics == *sem)
                    .map(|(_, d)| d.id)
                    .collect()
            })
            .collect();
        let agree = sets.windows(2).all(|p| p[0] == p[1]);
        all_agree &= agree;
        table.row(&[
            sem.to_string(),
            sets[0].len().to_string(),
            sets[1].len().to_string(),
            sets[2].len().to_string(),
            sets[3].len().to_string(),
            agree.to_string(),
        ]);
    }
    table.print("T9: per-semantics delivered counts at the survivors (p2 crashed mid-stream)");
    assert!(all_agree, "survivors disagree on a semantics class");

    // --- Part 2: a scripted scenario that forces the §4.3 categories ---
    //
    // p2's first proposal (total-ordered) is dropped to every other
    // member — including NACK retransmissions — but p2 itself orders it
    // into the oal when its decider turn comes. Its second total-ordered
    // proposal reaches everyone (orphan-order candidate), and a
    // survivor's strong proposal then depends on the lost ordinal
    // (orphan-atomicity candidate). Then p2 crashes.
    use bytes::Bytes;
    use tw_proto::{Atomicity, Msg, Ordering as Ord2};
    use tw_sim::{Fault, MsgMatcher};
    let params = TeamParams::new(n).seed(910);
    let (mut w, _) = formed_team(&params);
    // Swallow p2's first proposal forever (covers retransmissions).
    w.add_fault_at(
        w.now(),
        Fault::drop_all(MsgMatcher::any().matching(
            |m: &Msg| matches!(m, Msg::Proposal(p) if p.sender == ProcessId(2) && p.seq == 1),
        )),
    );
    let propose = |w: &mut tw_bench::TeamWorld, at_ms: i64, who: u16, sem: Semantics, tag: &str| {
        let t = w.now() + Duration::from_millis(at_ms);
        let payload = Bytes::from(tag.to_string());
        w.call_at(t, ProcessId(who), move |a, ctx| {
            if let Ok(actions) = a.member.propose(ctx.now_hw(), payload, sem) {
                for act in actions {
                    match act {
                        timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                        timewheel::Action::Send(to, m) => ctx.send(to, m),
                        timewheel::Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                        _ => {}
                    }
                }
            }
        });
    };
    let total_weak = Semantics::new(Ord2::Total, Atomicity::Weak);
    let strong = Semantics::new(Ord2::Unordered, Atomicity::Strong);
    propose(&mut w, 50, 2, total_weak, "lost-candidate"); // seq 1: swallowed
    propose(&mut w, 120, 2, total_weak, "orphan-order-candidate"); // seq 2: delivered to all
                                                                   // Give p2 a decider turn to order its own pending proposals, then a
                                                                   // survivor proposes a strong update depending on those ordinals.
    let cfg = params.protocol_config();
    w.run_for(cfg.cycle() * 2);
    propose(&mut w, 10, 0, strong, "orphan-atomicity-candidate");
    w.run_for(Duration::from_millis(100));
    w.crash_at(w.now() + Duration::from_millis(10), ProcessId(2));
    w.run_for(Duration::from_secs(20));
    timewheel::invariants::assert_all(&w);

    let mut purge_table = Table::new(&["category", "count", "proposals"]);
    let mut found = false;
    for &i in &survivors {
        if let Some(r) = w.actor(ProcessId(i)).member.last_purge() {
            if r.total() == 0 {
                continue;
            }
            let fmt = |v: &Vec<(tw_proto::Ordinal, tw_proto::ProposalId)>| {
                v.iter()
                    .map(|(o, id)| format!("{id}{o}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            purge_table.row(&["lost".into(), r.lost.len().to_string(), fmt(&r.lost)]);
            purge_table.row(&[
                "orphan-order".into(),
                r.orphan_order.len().to_string(),
                fmt(&r.orphan_order),
            ]);
            purge_table.row(&[
                "orphan-atomicity".into(),
                r.orphan_atomicity.len().to_string(),
                fmt(&r.orphan_atomicity),
            ]);
            purge_table.row(&[
                "unknown-dependency".into(),
                r.unknown_dependency.len().to_string(),
                fmt(&r.unknown_dependency),
            ]);
            found = true;
            break;
        }
    }
    assert!(found, "the forced-purge scenario produced no purge report");
    purge_table.print("T9 (part 2): §4.3 classification after the scripted loss scenario");
    // Neither suppressed update may have been delivered anywhere.
    for &i in &survivors {
        for (_, d) in &w.actor(ProcessId(i)).deliveries {
            assert!(
                d.payload != Bytes::from_static(b"lost-candidate")
                    && d.payload != Bytes::from_static(b"orphan-order-candidate"),
                "p{i} delivered a suppressed update"
            );
        }
    }
    println!("\nclaim check: identical per-semantics delivery sets at every survivor;");
    println!("the new decider classifies lost/orphan updates and no survivor ever");
    println!("delivers a suppressed update — FIFO/total/time invariants all hold.");
}
