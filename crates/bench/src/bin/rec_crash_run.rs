//! Produce a set of flight recordings for the `tw-trace` analyzer —
//! the input to CI's trace-analysis job.
//!
//! Runs the deterministic 5-node single-failure scenario (form, crash
//! p2, survivors reconfigure to 4, a few failure-free cycles after),
//! with a [`FlightRecorder`] attached to every member, and writes:
//!
//! * `node-{0..4}.twrec` — the per-node recordings;
//! * `meta.json` — the parameters the analyzer run is judged against
//!   (team size, ε, and the §4.2 analytic recovery envelope in µs).
//!
//! Usage: `rec_crash_run [out-dir]` (default `trace-out/`).

use std::sync::Arc;
use timewheel::harness::{run_until_pred, TeamParams};
use tw_bench::formed_team;
use tw_obs::{FlightRecorder, RecorderConfig, TraceSink, Tracer};
use tw_proto::{Duration, ProcessId};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace-out".to_string());
    let out = std::path::PathBuf::from(out);
    std::fs::create_dir_all(&out).expect("create output dir");

    const N: usize = 5;
    let params = TeamParams::new(N).seed(7);
    let cfg = params.protocol_config();

    let (mut w, _) = formed_team(&params);
    let recorders: Vec<Arc<FlightRecorder>> = (0..N)
        .map(|i| {
            let pid = ProcessId(i as u16);
            let rc = RecorderConfig::new(pid, N, cfg.epsilon).capacity(64);
            let rec = Arc::new(
                FlightRecorder::create(out.join(format!("node-{i}.twrec")), rc)
                    .expect("create recording"),
            );
            w.actor_mut(pid)
                .member
                .set_tracer(Tracer::new(rec.clone() as Arc<dyn TraceSink>));
            rec
        })
        .collect();

    let victim = ProcessId(2);
    let crash_at = w.now() + Duration::from_millis(5);
    w.crash_at(crash_at, victim);
    run_until_pred(&mut w, crash_at + Duration::from_secs(60), |w| {
        (0..N as u16).filter(|&i| i != victim.0).all(|i| {
            let m = &w.actor(ProcessId(i)).member;
            m.state() == timewheel::CreatorState::FailureFree
                && m.view().len() == N - 1
                && !m.view().contains(victim)
        })
    })
    .expect("survivors never reformed");
    // A few failure-free cycles after the install, so the recordings
    // also show the wheel turning in the recovered view.
    w.run_for(cfg.cycle() * 4);
    for rec in &recorders {
        rec.flush();
        if let Some(e) = rec.take_error() {
            panic!("recorder {} failed: {e}", rec.config().pid);
        }
    }

    // §4.2 analytic envelope for the recovery span (suspicion → last
    // survivor install), same expression experiment T2 asserts.
    let envelope = cfg.decision_timeout * 2
        + (cfg.big_d + cfg.delta) * (N as i64 - 2)
        + cfg.tick * 4;

    let meta = serde_json::json!({
        "scenario": "single_failure_crash",
        "team": N,
        "seed": 7,
        "victim": victim.0,
        "epsilon_us": cfg.epsilon.as_micros(),
        "recovery_envelope_us": envelope.as_micros(),
        "recordings": (0..N).map(|i| format!("node-{i}.twrec")).collect::<Vec<_>>(),
    });
    std::fs::write(
        out.join("meta.json"),
        serde_json::to_string_pretty(&meta).expect("serialize"),
    )
    .expect("write meta.json");

    for i in 0..N {
        let len = std::fs::metadata(out.join(format!("node-{i}.twrec")))
            .expect("recording exists")
            .len();
        println!("wrote {}/node-{i}.twrec ({len} bytes)", out.display());
    }
    println!(
        "wrote {}/meta.json (envelope {} us)",
        out.display(),
        envelope.as_micros()
    );
}
