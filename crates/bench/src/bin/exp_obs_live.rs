//! Live-telemetry overhead probe — the T1-style flood from the hot-path
//! probe, run twice: once on a plain cluster and once with the full
//! telemetry plane active (ops endpoints bound, a Prometheus scraper
//! hitting `/metrics` on every node, and a `LiveTail` draining node 0's
//! `/trace` stream), so the emitted ratio is the *measured* cost of
//! observing a running cluster, not the cost of having the code linked.
//!
//! Scenario (mirrors `exp_hotpath`'s mem arm): n = 3 event-loop cluster
//! on the in-process mesh, flooding unordered/weak updates unpaced and
//! counting delivered updates/second at a non-proposing node. Each arm
//! runs twice interleaved (off, on, off, on) and keeps its best rate,
//! which is robust against one arm eating a scheduler hiccup.
//!
//! Metrics: `obs_off_delivered_per_s`, `obs_on_delivered_per_s`, and
//! the gate-friendly `obs_on_off_ratio` (on ÷ off, 1.0 = free; the
//! 25 % gate threshold trips if the telemetry tax grows from the
//! baseline's ratio by more than a quarter). The acceptance target for
//! this PR is ≤ 5 % overhead on CI hardware.
//!
//! Self-contained (no serde_json/rand/criterion) so the shadow harness
//! can build it offline. Emits the `BENCH_obs_live.json` baseline for
//! `cargo xtask bench-gate`; refresh per DESIGN.md §12.5.
//!
//! Usage: `exp_obs_live [--quick] [--updates N] [--out FILE] [--machine TAG]`

#![forbid(unsafe_code)]

use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};
use timewheel::Config;
use tw_obs::{http_get, LiveTail};
use tw_proto::{Duration, Semantics};
use tw_runtime::{
    spawn_cluster, spawn_cluster_observed, ExecutorKind, Node, NodeOutput, OpsSetup,
};

fn cfg(n: usize) -> Config {
    Config::for_team(n, Duration::from_millis(10))
}

fn formed(nodes: &[Node], n: usize) {
    for node in nodes {
        node.wait_for_view(n, StdDuration::from_secs(30))
            .expect("group formation");
    }
}

fn drain(node: &Node) {
    while node.outputs.try_recv().is_ok() {}
}

/// Flood `count` weak updates from `nodes[0]`, count deliveries at
/// `nodes[1]`; returns delivered updates/second.
///
/// The flood is windowed (at most `WINDOW` proposals outstanding, well
/// under `INBOX_CAPACITY`): an open-loop burst would overrun the
/// bounded inboxes on a slow machine and measure the shed path instead
/// of delivery throughput. A stall (no delivery for 250 ms) re-opens
/// the window: under overload the membership protocol may briefly
/// exclude a member — fail-awareness working as designed — and weak
/// updates in flight when the view changed are gone, so waiting for
/// them would deadlock the flood. The rate counts only what was
/// delivered, over the span up to the last delivery.
fn flood(nodes: &[Node], count: usize) -> f64 {
    const WINDOW: usize = 1024;
    drain(&nodes[1]);
    let start = Instant::now();
    let deadline = start + StdDuration::from_secs(60);
    let mut proposed = 0usize;
    let mut delivered = 0usize;
    // Deliveries plus proposals presumed lost to a view change.
    let mut acked = 0usize;
    let mut last_delivery = start;
    loop {
        while proposed < count && proposed - acked < WINDOW {
            nodes[0].propose(Bytes::from_static(b"x"), Semantics::UNORDERED_WEAK);
            proposed += 1;
        }
        if delivered >= count || Instant::now() >= deadline {
            break;
        }
        match nodes[1].outputs.recv_timeout(StdDuration::from_millis(250)) {
            Ok(NodeOutput::Delivery(_)) => {
                delivered += 1;
                acked += 1;
                last_delivery = Instant::now();
            }
            Ok(_) => {}
            Err(_) => {
                if proposed == count {
                    // Everything sent and the pipe has drained dry.
                    break;
                }
                acked = proposed;
            }
        }
    }
    let secs = (last_delivery - start).as_secs_f64().max(1e-9);
    assert!(
        delivered * 2 >= count,
        "flood lost more than half its updates: {delivered}/{count}"
    );
    delivered as f64 / secs
}

/// Telemetry off: the plain cluster the hot-path probe measures.
fn off_throughput(count: usize) -> f64 {
    let n = 3;
    let nodes = spawn_cluster(ExecutorKind::EventLoop, cfg(n));
    formed(&nodes, n);
    let rate = flood(&nodes, count);
    for node in nodes {
        node.shutdown();
    }
    rate
}

/// Telemetry on: ops endpoints bound on every node, a scraper thread
/// pulling `/metrics` from all of them at a 100 ms cadence (a fast
/// Prometheus interval), and a `LiveTail` continuously draining node
/// 0's `/trace` stream while the flood runs.
fn on_throughput(count: usize) -> (f64, u64, usize) {
    let n = 3;
    let nodes = spawn_cluster_observed(ExecutorKind::EventLoop, cfg(n), &OpsSetup::ephemeral())
        .expect("bind ops endpoints");
    formed(&nodes, n);
    let addrs: Vec<_> = (0..n)
        .map(|r| nodes[r].ops_addr().expect("ops endpoint attached"))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = stop.clone();
        let addrs = addrs.clone();
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for a in &addrs {
                    if http_get(*a, "/metrics", StdDuration::from_secs(1))
                        .is_ok_and(|(code, _)| code == 200)
                    {
                        scrapes += 1;
                    }
                }
                std::thread::sleep(StdDuration::from_millis(100));
            }
            scrapes
        })
    };
    let mut tail =
        LiveTail::connect(addrs[0], StdDuration::from_secs(5)).expect("connect /trace");
    let tailer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut events = 0usize;
            while !stop.load(Ordering::Relaxed) {
                match tail.poll(StdDuration::from_millis(50)) {
                    Ok(es) => events += es.len(),
                    Err(_) => break,
                }
            }
            events
        })
    };

    let rate = flood(&nodes, count);

    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    let events = tailer.join().expect("tailer thread");
    for node in nodes {
        node.shutdown();
    }
    assert!(scrapes > 0, "scraper never completed a scrape mid-flood");
    (rate, scrapes, events)
}

struct Metric {
    name: &'static str,
    value: f64,
    better: &'static str,
    portable: bool,
}

fn emit_json(seed: u64, iters: usize, machine: &str, metrics: &[Metric]) -> String {
    let rows: Vec<String> = metrics
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"value\": {:.4}, \"better\": \"{}\", \"portable\": {}}}",
                m.name, m.value, m.better, m.portable
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"obs_live\",\n  \"schema\": 1,\n  \"machine\": \"{machine}\",\n  \
         \"seed\": {seed},\n  \"iters\": {iters},\n  \"metrics\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

fn main() {
    let mut updates = 40_000usize;
    let mut out: Option<String> = None;
    let mut machine =
        format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => updates = 8_000,
            "--updates" => {
                updates = args.next().expect("--updates N").parse().expect("number")
            }
            "--out" => out = Some(args.next().expect("--out FILE")),
            "--machine" => machine = args.next().expect("--machine TAG"),
            other => {
                eprintln!(
                    "unknown arg {other}; usage: exp_obs_live [--quick] [--updates N] \
                     [--out FILE] [--machine TAG]"
                );
                std::process::exit(2);
            }
        }
    }

    // Warm-up: group formation + one flood touch every code path once.
    let _ = off_throughput(updates / 10);

    // Interleave the arms so drift hits both equally; keep each arm's
    // best run.
    let mut off = 0f64;
    let mut on = 0f64;
    let mut scrapes = 0u64;
    let mut events = 0usize;
    for _ in 0..2 {
        off = off.max(off_throughput(updates));
        let (rate, s, e) = on_throughput(updates);
        on = on.max(rate);
        scrapes += s;
        events += e;
    }

    let ratio = on / off;
    let overhead_pct = (1.0 - ratio) * 100.0;

    let metrics = [
        Metric { name: "obs_off_delivered_per_s", value: off, better: "higher", portable: false },
        Metric { name: "obs_on_delivered_per_s", value: on, better: "higher", portable: false },
        Metric { name: "obs_on_off_ratio", value: ratio, better: "higher", portable: false },
    ];

    println!("== live-telemetry overhead probe ({updates} weak updates per arm) ==");
    println!("{:<26} {:>14}", "metric", "value");
    for m in &metrics {
        println!("{:<26} {:>14.1}", m.name, m.value);
    }
    println!(
        "\ntelemetry tax: {overhead_pct:.1}% (acceptance target: <= 5% on CI hardware)\n\
         observation pressure during the 'on' arms: {scrapes} /metrics scrapes, \
         {events} events drained off /trace."
    );

    let json = emit_json(0, updates, &machine, &metrics);
    match out {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(&path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create --out dir");
                }
            }
            std::fs::write(&path, &json).expect("write --out file");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
