//! T4 — multiple-failure recovery via the time-slotted reconfiguration
//! election.
//!
//! Paper claim: when several members fail within a cycle, the slotted
//! reconfiguration protocol forms the new group, "typically … in two
//! rounds" — i.e. about two cycles of slots after detection.
//!
//! We crash `f` members of an `N`-group simultaneously and measure the
//! time until every survivor runs failure-free in the (N−f)-group,
//! expressed in ms, in slots, and in cycles. Safety side-conditions
//! (majority views, single completed group per seq) are asserted.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, median, ms, Table};
use tw_proto::{Duration, ProcessId};

fn main() {
    let mut table = Table::new(&[
        "N",
        "f",
        "recovery_ms(median)",
        "in_slots",
        "in_cycles",
        "survivor_group",
    ]);
    for (n, fs) in [
        (5usize, vec![2usize]),
        (7, vec![2, 3]),
        (9, vec![2, 3, 4]),
        (13, vec![2, 4, 6]),
    ] {
        for f in fs {
            let params_base = TeamParams::new(n);
            let cfg = params_base.protocol_config();
            let mut samples = Vec::new();
            for seed in 0..5u64 {
                let params = TeamParams::new(n).seed(300 + seed);
                let (mut w, _) = formed_team(&params);
                // Crash f members spread over the ring (worst-ish case).
                let victims: Vec<ProcessId> = (0..f)
                    .map(|k| ProcessId((1 + 2 * k as u16) % n as u16))
                    .collect();
                let crash_at = w.now() + Duration::from_secs(1);
                for v in &victims {
                    w.crash_at(crash_at, *v);
                }
                let survivors: Vec<u16> = (0..n as u16)
                    .filter(|i| !victims.contains(&ProcessId(*i)))
                    .collect();
                let recovered = timewheel::harness::run_until_pred(
                    &mut w,
                    crash_at + Duration::from_secs(120),
                    |w| {
                        survivors.iter().all(|&i| {
                            let m = &w.actor(ProcessId(i)).member;
                            m.state() == timewheel::CreatorState::FailureFree
                                && m.view().len() == n - f
                                && victims.iter().all(|v| !m.view().contains(*v))
                        })
                    },
                )
                .expect("survivors never reformed");
                samples.push(ms(recovered, crash_at));
                timewheel::invariants::assert_all(&w);
            }
            let med = median(&mut samples);
            table.row(&[
                n.to_string(),
                f.to_string(),
                format!("{med:.0}"),
                format!("{:.1}", med * 1_000.0 / cfg.slot_len.as_micros() as f64),
                format!("{:.2}", med * 1_000.0 / cfg.cycle().as_micros() as f64),
                (n - f).to_string(),
            ]);
        }
    }
    table.print("T4: multiple-failure recovery (f simultaneous crashes, 5 seeds)");
    println!("\nclaim check: recovery completes in ≈1–3 cycles — the paper's");
    println!("\"a new decider is typically elected in two rounds\" of slots.");
}
