//! A1 — ablation: the slot-length bound.
//!
//! Paper §4.2: "the length of each time slot has to be at least D + δ".
//! A reconfiguration message must be *sendable and deliverable* within
//! its sender's slot for the freshness clauses of the creation condition
//! to line up. We sweep the slot length as a fraction of `D + δ` and
//! measure multi-failure recovery (2 crashes in a 5-group): recovery
//! time and success rate within a generous deadline, in benign runs and
//! under 5% uniform loss. The measurable effect of the bound is the
//! linear slot-length → recovery-latency relationship; the safety margin
//! it buys is analytic (worst-case message timing), not a cliff at the
//! parameters tested — the experiment reports both honestly.

use timewheel::harness::TeamParams;
use tw_bench::{median, ms, Table};
use tw_proto::{Duration, ProcessId};
use tw_sim::SimTime;

fn main() {
    let n = 5;
    let mut table = Table::new(&[
        "slot_len/(D+delta)",
        "slot_ms",
        "recoveries",
        "recovery_ms(median)",
        "valid_per_paper",
    ]);
    for factor in [0.25f64, 0.5, 0.75, 1.0, 1.3, 2.0] {
        let mut params = TeamParams::new(n).seed(40);
        let mut cfg = params.protocol_config();
        let base = cfg.big_d + cfg.delta;
        cfg.slot_len = Duration((base.as_micros() as f64 * factor) as i64);
        params.config = Some(cfg);
        let mut successes = 0usize;
        let mut samples = Vec::new();
        let runs = 5;
        for seed in 0..runs as u64 {
            let params = {
                let mut p = params.clone();
                p.seed = 700 + seed;
                p
            };
            // Formation itself may fail with invalid slots; bound it.
            let mut w = timewheel::harness::team_world(&params);
            let formed = timewheel::harness::run_until_pred(&mut w, SimTime::from_secs(60), |w| {
                timewheel::harness::all_in_group(w, n)
            });
            if formed.is_none() {
                continue;
            }
            let crash_at = w.now() + Duration::from_secs(1);
            w.crash_at(crash_at, ProcessId(1));
            w.crash_at(crash_at, ProcessId(3));
            let recovered = timewheel::harness::run_until_pred(
                &mut w,
                crash_at + Duration::from_secs(60),
                |w| {
                    [0u16, 2, 4].iter().all(|&i| {
                        let m = &w.actor(ProcessId(i)).member;
                        m.state() == timewheel::CreatorState::FailureFree && m.view().len() == 3
                    })
                },
            );
            if let Some(t) = recovered {
                successes += 1;
                samples.push(ms(t, crash_at));
            }
        }
        let med = if samples.is_empty() {
            f64::NAN
        } else {
            median(&mut samples)
        };
        table.row(&[
            format!("{factor:.2}"),
            format!("{:.1}", (cfg.slot_len.as_micros() as f64) / 1_000.0),
            format!("{successes}/{runs}"),
            if med.is_nan() {
                "—".into()
            } else {
                format!("{med:.0}")
            },
            (factor >= 1.0).to_string(),
        ]);
    }
    table.print("A1 (benign): slot-length ablation (N = 5, two crashes, 5 seeds)");

    // Part 2: the bound's real job is safety margin. Short slots shrink
    // the election cool-down ((N−1) slots) and the message-validity
    // window below the (N−1)·D the at-most-one-decider argument needs.
    // Under message loss during elections, sub-bound slots must show
    // agreement violations (two completed groups at one seq) and/or
    // failed recoveries that the paper-valid configuration never shows.
    let mut stress = Table::new(&[
        "slot_len/(D+delta)",
        "runs",
        "recovered",
        "safety_violations",
    ]);
    for factor in [0.25f64, 0.5, 1.0, 1.3] {
        let mut recovered_count = 0usize;
        let mut violations = 0usize;
        let runs = 8;
        for seed in 0..runs as u64 {
            let mut params = TeamParams::new(n).seed(7_000 + seed);
            let mut cfg = params.protocol_config();
            let base = cfg.big_d + cfg.delta;
            cfg.slot_len = Duration((base.as_micros() as f64 * factor) as i64);
            params.config = Some(cfg);
            params.link = tw_sim::LinkModel::default().with_drop_prob(0.05);
            let mut w = timewheel::harness::team_world(&params);
            if timewheel::harness::run_until_pred(&mut w, SimTime::from_secs(60), |w| {
                timewheel::harness::all_in_group(w, n)
            })
            .is_none()
            {
                continue;
            }
            let crash_at = w.now() + Duration::from_secs(1);
            w.crash_at(crash_at, ProcessId(1));
            w.crash_at(crash_at, ProcessId(3));
            let rec = timewheel::harness::run_until_pred(
                &mut w,
                crash_at + Duration::from_secs(45),
                |w| {
                    [0u16, 2, 4].iter().all(|&i| {
                        let m = &w.actor(ProcessId(i)).member;
                        m.state() == timewheel::CreatorState::FailureFree && m.view().len() == 3
                    })
                },
            );
            if rec.is_some() {
                recovered_count += 1;
            }
            violations += timewheel::invariants::check_all(&w).len();
        }
        stress.row(&[
            format!("{factor:.2}"),
            runs.to_string(),
            recovered_count.to_string(),
            violations.to_string(),
        ]);
    }
    stress.print("A1 (stress): same scenario + 5% uniform loss during the election");
    println!("\nfindings: (a) reconfiguration latency scales linearly with the slot");
    println!("length — the paper's bound directly prices recovery time; (b) in the");
    println!("scenarios tested, sub-bound slots did NOT produce safety violations:");
    println!("this implementation's election guards (one election per cycle, message");
    println!("validity windows) are expressed in D as well as slots, so the paper's");
    println!("D + δ bound is the analytic worst-case requirement rather than an");
    println!("empirically sharp cliff at these parameters. See EXPERIMENTS.md.");
}
