//! T3 — false alarms do not interrupt the service.
//!
//! Paper claim: "the group communication service is not interrupted, if a
//! failure suspicion turns out to be a false alarm" — a lost decision
//! message triggers the suspicion machinery, but a member that holds the
//! decision rescues the rotation (wrong-suspicion state) and the
//! membership never changes.
//!
//! Method: a steady stream of unordered/weak updates flows while we drop
//! a decision message to a subset of members. Measured: whether any view
//! changed, the worst inter-delivery gap at a correct member during the
//! episode vs. the failure-free baseline, and how many election messages
//! the false alarm cost.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, inject_proposals, ms, Table};
use tw_proto::{Duration, Msg, ProcessId, Semantics};
use tw_sim::{Fault, MsgMatcher};

/// Worst gap (ms) between consecutive deliveries at member 0, over the
/// window starting at `from_hw_us`.
fn worst_gap_ms(w: &tw_bench::TeamWorld, from_hw_us: i64) -> f64 {
    let ds = &w.actor(ProcessId(0)).deliveries;
    let mut last = None;
    let mut worst: f64 = 0.0;
    for (t, _) in ds {
        if t.0 < from_hw_us {
            continue;
        }
        if let Some(prev) = last {
            worst = worst.max((t.0 - prev) as f64 / 1_000.0);
        }
        last = Some(t.0);
    }
    worst
}

fn run(n: usize, drop_targets: &[u16]) -> (bool, bool, f64, u64) {
    let params = TeamParams::new(n).seed(7);
    let (mut w, _) = formed_team(&params);
    let view_seq_before = w.actor(ProcessId(0)).member.view().id.seq;
    // Steady client load: one update every 10 ms for 8 s.
    inject_proposals(
        &mut w,
        n,
        800,
        Semantics::UNORDERED_WEAK,
        Duration::from_millis(10),
        Duration::from_millis(10),
    );
    let episode = w.now() + Duration::from_secs(2);
    for &target in drop_targets {
        w.add_fault_at(
            episode,
            Fault::drop_next(
                MsgMatcher::any()
                    .to(ProcessId(target))
                    .matching(|m: &Msg| matches!(m, Msg::Decision(_))),
                1,
            ),
        );
    }
    let from_hw = episode.0; // hw ≈ real here (tiny drift)
    w.reset_stats();
    w.run_for(Duration::from_secs(10));
    // "Interrupted" means a live member was actually excluded: some
    // installed view has fewer than n members.
    let member_removed =
        (0..n as u16).any(|i| w.actor(ProcessId(i)).views.iter().any(|(_, v)| v.len() < n));
    let reformed =
        (0..n as u16).any(|i| w.actor(ProcessId(i)).member.view().id.seq != view_seq_before);
    let gap = worst_gap_ms(&w, from_hw);
    let election_msgs = w.stats().sends_of(&["no-decision", "reconfig"]);
    let _ = ms; // (helper exercised elsewhere)
    (member_removed, reformed, gap, election_msgs)
}

fn main() {
    let n = 5;
    let mut table = Table::new(&[
        "scenario",
        "member_removed",
        "view_reformed",
        "worst_delivery_gap_ms",
        "election_msgs",
    ]);
    for (label, targets) in [
        ("baseline (no fault)", &[][..]),
        ("decision lost to 2 of 5", &[3u16, 4][..]),
        ("decision lost to 3 of 5", &[1u16, 3, 4][..]),
    ] {
        let (removed, reformed, gap, msgs) = run(n, targets);
        table.row(&[
            label.into(),
            removed.to_string(),
            reformed.to_string(),
            format!("{gap:.1}"),
            msgs.to_string(),
        ]);
        assert!(
            !removed,
            "{label}: a live member was excluded on a false alarm"
        );
    }
    table.print("T3: false alarm behaviour (N = 5, steady update load)");
    println!("\nclaim check: no live member is ever removed by a false alarm.");
    println!("A lost decision to a minority is masked silently (the rotation outruns");
    println!("the 2D timeout); a loss hitting the next decider stalls the rotation and");
    println!("is repaired by the election — still with the full membership intact.");
}
