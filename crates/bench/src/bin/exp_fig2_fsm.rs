//! FIG2 — the group creator's state-transition diagram, recovered from
//! execution.
//!
//! We drive the protocol through every scenario class (formation, single
//! crash, false alarm, multiple crashes, partition + heal, recovery +
//! rejoin), polling each member's creator state after every simulation
//! event. The observed transition relation must be a subset of the
//! paper's Fig. 2 edge set, and the interesting edges must all be
//! exercised.

use std::collections::BTreeSet;
use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::CreatorState;
use tw_bench::Table;
use tw_proto::{Duration, Msg, ProcessId};
use tw_sim::{Fault, MsgMatcher, SimTime};

type Edge = (&'static str, &'static str);

/// The paper's Fig. 2, as an edge list (labels per CreatorState::label).
/// Transitions back to `join` exist from every non-join state: exclusion
/// from a new group (wrong-suspicion/n-failure arrows in the figure) and
/// loss of clock synchronization (§2).
fn allowed_edges() -> BTreeSet<Edge> {
    let mut e = BTreeSet::new();
    // join
    e.insert(("join", "failure-free")); // D received / group created (Dsend)
                                        // failure-free
    e.insert(("failure-free", "1-failure-send")); // timeout & NDsend
    e.insert(("failure-free", "1-failure-receive")); // timeout
    e.insert(("failure-free", "wrong-suspicion")); // ND from expected
    e.insert(("failure-free", "n-failure")); // R from expected
    e.insert(("failure-free", "join")); // excluded / lost sync
                                        // wrong-suspicion
    e.insert(("wrong-suspicion", "failure-free")); // D / rescue (Dsend)
    e.insert(("wrong-suspicion", "n-failure")); // timeout, R
    e.insert(("wrong-suspicion", "join")); // D with me excluded
                                           // 1-failure-receive
    e.insert(("1-failure-receive", "1-failure-send")); // ND from pred, NDsend
    e.insert(("1-failure-receive", "failure-free")); // D / removal (Dsend)
    e.insert(("1-failure-receive", "wrong-suspicion")); // D from suspect
    e.insert(("1-failure-receive", "n-failure")); // timeout, R, majority edge
    e.insert(("1-failure-receive", "join"));
    // 1-failure-send
    e.insert(("1-failure-send", "failure-free")); // D
    e.insert(("1-failure-send", "n-failure")); // timeout, R
    e.insert(("1-failure-send", "join"));
    // n-failure
    e.insert(("n-failure", "failure-free")); // created / D with me
    e.insert(("n-failure", "join")); // excluded, after all decisions
    e
}

fn observe(
    w: &mut tw_bench::TeamWorld,
    until: SimTime,
    n: usize,
    last: &mut [CreatorState],
    seen: &mut BTreeSet<Edge>,
) {
    while w.now() < until {
        if !w.step() {
            break;
        }
        for i in 0..n as u16 {
            if w.status(ProcessId(i)) != tw_sim::ProcessStatus::Up {
                continue;
            }
            let s = w.actor(ProcessId(i)).member.state();
            let prev = last[i as usize];
            if s != prev {
                seen.insert((prev.label(), s.label()));
                last[i as usize] = s;
            }
        }
    }
}

fn main() {
    let n = 5;
    let allowed = allowed_edges();
    let mut seen: BTreeSet<Edge> = BTreeSet::new();

    // Scenario battery.
    for scenario in 0..5 {
        let params = TeamParams::new(n).seed(2000 + scenario);
        let mut w = team_world(&params);
        let mut last = vec![CreatorState::Join; n];
        run_until_pred(&mut w, SimTime::from_secs(60), |w| all_in_group(w, n)).unwrap();
        // catch the join → failure-free edges we skipped over:
        for s in last.iter_mut() {
            seen.insert(("join", "failure-free"));
            *s = CreatorState::FailureFree;
        }
        match scenario {
            0 => {
                // stable run
                let until = w.now() + Duration::from_secs(5);
                observe(&mut w, until, n, &mut last, &mut seen);
            }
            1 => {
                // single crash + recovery + rejoin
                let t0 = w.now();
                w.crash_at(t0 + Duration::from_millis(300), ProcessId(1));
                w.recover_at(t0 + Duration::from_secs(4), ProcessId(1));
                let until = t0 + Duration::from_secs(20);
                // a recovered process restarts in join state:
                observe(&mut w, until, n, &mut last, &mut seen);
                last[1] = w.actor(ProcessId(1)).member.state();
            }
            2 => {
                // false alarm: decision dropped to two members
                let t = w.now() + Duration::from_millis(300);
                for target in [3u16, 4] {
                    w.add_fault_at(
                        t,
                        Fault::drop_next(
                            MsgMatcher::any()
                                .to(ProcessId(target))
                                .matching(|m: &Msg| matches!(m, Msg::Decision(_))),
                            1,
                        ),
                    );
                }
                let until = t + Duration::from_secs(5);
                observe(&mut w, until, n, &mut last, &mut seen);
            }
            3 => {
                // two simultaneous crashes → reconfiguration
                let t = w.now() + Duration::from_millis(300);
                w.crash_at(t, ProcessId(1));
                w.crash_at(t, ProcessId(3));
                let until = t + Duration::from_secs(15);
                observe(&mut w, until, n, &mut last, &mut seen);
            }
            _ => {
                // partition + heal
                let t = w.now() + Duration::from_millis(300);
                w.partition_at(t, &[&[0, 1, 2], &[3, 4]]);
                w.heal_at(t + Duration::from_secs(8));
                let until = t + Duration::from_secs(40);
                observe(&mut w, until, n, &mut last, &mut seen);
            }
        }
    }

    let mut table = Table::new(&["from", "to", "observed", "allowed_by_fig2"]);
    let states = [
        "join",
        "failure-free",
        "wrong-suspicion",
        "1-failure-receive",
        "1-failure-send",
        "n-failure",
    ];
    let mut violations = 0;
    for from in states {
        for to in states {
            if from == to {
                continue;
            }
            let o = seen.contains(&(from, to));
            let a = allowed.contains(&(from, to));
            if o || a {
                table.row(&[from.into(), to.into(), o.to_string(), a.to_string()]);
            }
            if o && !a {
                violations += 1;
            }
        }
    }
    table.print("FIG2: observed vs allowed group-creator transitions (5 scenario classes)");
    assert_eq!(violations, 0, "observed a transition outside Fig. 2");
    let coverage = seen.len();
    println!(
        "\nshape check: every observed transition is a Fig. 2 edge; {coverage} of {}\n\
         edges exercised across the scenario battery.",
        allowed.len()
    );
}
