//! T11 — everything scales in δ (the timed-asynchronous scaling law).
//!
//! The whole protocol is parameterized by the one-way timeout δ: D = 4δ,
//! slots ≈ 5δ + ε, cycles = N slots. The paper's design promise is that
//! no constant is hidden — deploy on a faster or slower network and every
//! latency scales linearly. We sweep δ from LAN to WAN and measure the
//! three protocol latencies, normalized by δ.

use timewheel::harness::TeamParams;
use tw_bench::{formed_team, median, ms, Table};
use tw_proto::{Duration, ProcessId};
use tw_sim::{LinkModel, SimTime};

fn main() {
    let n = 5;
    let mut table = Table::new(&[
        "delta_ms",
        "formation_ms",
        "formation/delta",
        "1crash_recovery_ms",
        "recovery/delta",
        "2crash_recovery_ms",
        "reconfig/delta",
    ]);
    for delta_ms in [2i64, 10, 50, 200] {
        let mut formation = Vec::new();
        let mut single = Vec::new();
        let mut multi = Vec::new();
        for seed in 0..3u64 {
            let mut params = TeamParams::new(n).seed(1_100 + seed);
            params.delta = Duration::from_millis(delta_ms);
            // Scale the link to the δ regime (delays ≈ δ/2 ± 20%).
            params.link = LinkModel {
                base_delay: Duration::from_micros(delta_ms * 400),
                jitter: Duration::from_micros(delta_ms * 200),
                drop_prob: 0.0,
                late_prob: 0.0,
                late_extra: Duration::ZERO,
            };
            let (mut w, formed) = formed_team(&params);
            formation.push(ms(formed, SimTime::ZERO));
            // Single crash.
            let crash_at = w.now() + Duration::from_millis(delta_ms * 20);
            w.crash_at(crash_at, ProcessId(1));
            let rec = timewheel::harness::run_until_pred(
                &mut w,
                crash_at + Duration::from_millis(delta_ms * 4_000),
                |w| {
                    (0..n as u16).filter(|&i| i != 1).all(|i| {
                        let m = &w.actor(ProcessId(i)).member;
                        m.state() == timewheel::CreatorState::FailureFree
                            && m.view().len() == n - 1
                    })
                },
            )
            .expect("single recovery");
            single.push(ms(rec, crash_at));
            // Second crash (now a 4-group loses one more → reconfig
            // cannot run below majority… crash one more of the original
            // five: 3 remain = majority ✓ via single path again; to
            // force reconfig crash TWO at once on a fresh world instead).
            let mut params2 = params.clone();
            params2.seed += 50;
            let (mut w2, _) = formed_team(&params2);
            let crash2 = w2.now() + Duration::from_millis(delta_ms * 20);
            w2.crash_at(crash2, ProcessId(1));
            w2.crash_at(crash2, ProcessId(3));
            let rec2 = timewheel::harness::run_until_pred(
                &mut w2,
                crash2 + Duration::from_millis(delta_ms * 8_000),
                |w| {
                    [0u16, 2, 4].iter().all(|&i| {
                        let m = &w.actor(ProcessId(i)).member;
                        m.state() == timewheel::CreatorState::FailureFree
                            && m.view().len() == 3
                    })
                },
            )
            .expect("multi recovery");
            multi.push(ms(rec2, crash2));
        }
        let f = median(&mut formation);
        let s = median(&mut single);
        let m2 = median(&mut multi);
        table.row(&[
            delta_ms.to_string(),
            format!("{f:.0}"),
            format!("{:.0}", f / delta_ms as f64),
            format!("{s:.0}"),
            format!("{:.0}", s / delta_ms as f64),
            format!("{m2:.0}"),
            format!("{:.0}", m2 / delta_ms as f64),
        ]);
    }
    table.print("T11: latency scaling with the one-way timeout δ (N = 5, 3 seeds)");
    println!("\nshape check: the δ-normalized columns are near-constant across two");
    println!("orders of magnitude of network speed — the protocol has no hidden");
    println!("absolute time constants, as the timed-asynchronous model prescribes.");
}
