//! Shared machinery for the experiment binaries (`src/bin/exp_*`).
//!
//! Each binary regenerates one table or figure of EXPERIMENTS.md: it runs
//! the scenario on the deterministic simulator (or the real runtime, for
//! T7), aggregates over several seeds, and prints an aligned table plus a
//! machine-readable JSON line per row (`--json` filterable with grep).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use timewheel::harness::{all_in_group, run_until_pred, team_world, SimMember, TeamParams};
use tw_proto::{Duration, ProcessId, Semantics};
use tw_sim::{SimTime, World};

/// A simulated team world.
pub type TeamWorld = World<SimMember>;

/// Aligned console table with JSON side-channel.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Print the table, aligned, followed by one JSON object per row.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
        for row in &self.rows {
            let obj: serde_json::Map<String, serde_json::Value> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, c)| (h.clone(), serde_json::Value::String(c.clone())))
                .collect();
            println!("JSON {}", serde_json::Value::Object(obj));
        }
    }
}

/// Median of a set of samples (ms, latencies, …).
pub fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Mean of a set of samples.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// p-th percentile (0..=100) of a set of samples.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() - 1) as f64 * p / 100.0).round() as usize;
    samples[idx]
}

/// Build a team world and run it until the initial group has formed.
/// Returns the world and the formation time.
pub fn formed_team(params: &TeamParams) -> (TeamWorld, SimTime) {
    let mut w = team_world(params);
    let t = run_until_pred(&mut w, SimTime::from_secs(240), |w| {
        all_in_group(w, params.n)
    })
    .expect("initial group formation");
    (w, t)
}

/// Schedule `count` proposals from rotating senders starting `after` from
/// now, spaced `gap` apart.
pub fn inject_proposals(
    w: &mut TeamWorld,
    n: usize,
    count: usize,
    sem: Semantics,
    after: Duration,
    gap: Duration,
) {
    for k in 0..count {
        let sender = ProcessId((k % n) as u16);
        let t = w.now() + after + gap * k as i64;
        let payload = Bytes::from(format!("u{k}"));
        w.call_at(t, sender, move |a, ctx| {
            if let Ok(actions) = a.member.propose(ctx.now_hw(), payload, sem) {
                for act in actions {
                    match act {
                        timewheel::Action::Broadcast(m) => ctx.broadcast(m),
                        timewheel::Action::Send(to, m) => ctx.send(to, m),
                        timewheel::Action::Deliver(d) => a.deliveries.push((ctx.now_hw(), d)),
                        _ => {}
                    }
                }
            }
        });
    }
}

/// The live members currently in failure-free state with views of the
/// given size.
pub fn members_in_group(w: &TeamWorld, size: usize) -> usize {
    (0..w.len())
        .filter(|&i| {
            let p = ProcessId(i as u16);
            w.status(p) == tw_sim::ProcessStatus::Up && {
                let m = &w.actor(p).member;
                m.state() == timewheel::CreatorState::FailureFree && m.view().len() == size
            }
        })
        .count()
}

/// Milliseconds between two simulation instants.
pub fn ms(later: SimTime, earlier: SimTime) -> f64 {
    (later - earlier).as_micros() as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_percentile() {
        let mut s = vec![5.0, 1.0, 3.0];
        assert_eq!(median(&mut s), 3.0);
        let mut s = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&mut s), 2.5);
        let mut s: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&mut s, 99.0), 99.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print("smoke");
    }

    #[test]
    fn formed_team_smoke() {
        let (w, t) = formed_team(&TeamParams::new(3));
        assert!(t > SimTime::ZERO);
        assert_eq!(members_in_group(&w, 3), 3);
    }
}
