//! Criterion companion to experiment T7: isolates pure per-event
//! dispatch overhead of the two executor designs (paper §5), without the
//! protocol's own latencies.
//!
//! * `direct_dispatch` — the event-based model: the handler runs inline
//!   on the calling thread (what a single-threaded event loop does after
//!   demultiplexing).
//! * `mutex_hop_dispatch` — the thread-based model's unavoidable costs:
//!   a channel hand-off to a handler thread plus a lock around the
//!   shared state, per event.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parking_lot::Mutex;
use std::sync::Arc;

const BATCH: usize = 1_000;

/// A stand-in for protocol work per event (cheap, branchy).
#[inline(never)]
fn handle(state: &mut u64, ev: u64) {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(ev);
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_dispatch");
    g.throughput(Throughput::Elements(BATCH as u64));

    g.bench_function("direct_dispatch", |b| {
        let mut state = 0u64;
        b.iter(|| {
            for ev in 0..BATCH as u64 {
                handle(&mut state, ev);
            }
            std::hint::black_box(state)
        })
    });

    g.bench_function("mutex_hop_dispatch", |b| {
        // Persistent handler thread fed by a channel, state behind a
        // mutex — the per-event costs of the thread-per-event-type
        // design.
        let state = Arc::new(Mutex::new(0u64));
        let (tx, rx) = crossbeam::channel::bounded::<u64>(BATCH);
        let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
        let hstate = state.clone();
        let handler = std::thread::spawn(move || {
            let mut seen = 0usize;
            while let Ok(ev) = rx.recv() {
                handle(&mut hstate.lock(), ev);
                seen += 1;
                if seen.is_multiple_of(BATCH) {
                    let _ = done_tx.send(());
                }
            }
        });
        b.iter(|| {
            for ev in 0..BATCH as u64 {
                tx.send(ev).unwrap();
            }
            done_rx.recv().unwrap();
            std::hint::black_box(*state.lock())
        });
        drop(tx);
        let _ = handler.join();
    });

    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
