//! Criterion micro-benchmarks of the v2 framed codec against the v1
//! byte codec: single-message encode/decode, and the batched multi-frame
//! datagram path the runtime's `OutBatch` flush actually exercises
//! (reused `FrameBuilder` scratch, borrowed-slice decode).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tw_proto::frame::{self, FrameBuilder};
use tw_proto::{
    AckBits, Decision, Decode, Descriptor, Encode, Msg, Oal, Ordinal, ProcessId, Proposal,
    ProposalId, Semantics, SyncTime, View, ViewId,
};

fn loaded_decision(window: usize) -> Decision {
    let view = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
    let mut oal = Oal::new();
    for i in 0..window {
        let o = oal.append(Descriptor::update(
            ProposalId::new(ProcessId((i % 5) as u16), i as u64 + 1),
            Ordinal::ZERO,
            Semantics::TOTAL_STRONG,
            SyncTime(i as i64),
            ProcessId(0),
        ));
        oal.ack(o, ProcessId(1));
    }
    Decision {
        sender: ProcessId(0),
        send_ts: SyncTime(1_000),
        view,
        oal,
        alive: AckBits(0b11111),
    }
}

fn proposal(seq: u64) -> Proposal {
    Proposal {
        sender: ProcessId((seq % 5) as u16),
        incarnation: tw_proto::Incarnation(0),
        seq,
        send_ts: SyncTime(5 + seq as i64),
        hdo: Ordinal(3),
        semantics: Semantics::TOTAL_STRONG,
        payload: Bytes::from(vec![7u8; 64]),
    }
}

fn bench_v1_vs_v2(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_codec");
    for window in [0usize, 16, 64] {
        let msg = Msg::Decision(loaded_decision(window));
        let v1 = msg.to_bytes();
        let v2 = frame::encode_single(&msg);
        g.throughput(Throughput::Bytes(v2.len() as u64));
        g.bench_function(format!("v1_encode_decision_w{window}"), |b| {
            b.iter(|| std::hint::black_box(&msg).to_bytes())
        });
        let mut builder = FrameBuilder::new();
        g.bench_function(format!("v2_encode_decision_w{window}"), |b| {
            b.iter(|| {
                builder.reset();
                builder.push_msg(std::hint::black_box(&msg));
                builder.bytes().len()
            })
        });
        g.bench_function(format!("v1_decode_decision_w{window}"), |b| {
            b.iter(|| Msg::from_bytes(std::hint::black_box(&v1)).unwrap())
        });
        g.bench_function(format!("v2_decode_decision_w{window}"), |b| {
            b.iter(|| frame::decode_datagram(std::hint::black_box(&v2)).unwrap())
        });
    }
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_batch");
    for batch in [1usize, 8, 32] {
        let msgs: Vec<Msg> = (0..batch as u64).map(|i| Msg::Proposal(proposal(i))).collect();
        let mut builder = FrameBuilder::new();
        builder.reset();
        for m in &msgs {
            builder.push_msg(m);
        }
        let dgram = builder.bytes().to_vec();
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_function(format!("encode_proposals_x{batch}"), |b| {
            b.iter(|| {
                builder.reset();
                for m in &msgs {
                    builder.push_msg(std::hint::black_box(m));
                }
                builder.frames()
            })
        });
        g.bench_function(format!("decode_proposals_x{batch}"), |b| {
            b.iter(|| frame::decode_datagram(std::hint::black_box(&dgram)).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_v1_vs_v2, bench_batched);
criterion_main!(benches);
