//! Criterion micro-benchmarks of the protocol's hot paths: the wire
//! codec, oal algebra, member message dispatch, and whole-simulator
//! throughput.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use timewheel::harness::{all_in_group, run_until_pred, team_world, TeamParams};
use timewheel::{Config, Member};
use tw_proto::{
    AckBits, Decision, Decode, Descriptor, Duration, Encode, Msg, Oal, Ordinal, ProcessId,
    Proposal, ProposalId, Semantics, SyncTime, View, ViewId,
};
use tw_sim::SimTime;

fn loaded_decision(window: usize) -> Decision {
    let view = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
    let mut oal = Oal::new();
    for i in 0..window {
        let o = oal.append(Descriptor::update(
            ProposalId::new(ProcessId((i % 5) as u16), i as u64 + 1),
            Ordinal::ZERO,
            Semantics::TOTAL_STRONG,
            SyncTime(i as i64),
            ProcessId(0),
        ));
        oal.ack(o, ProcessId(1));
    }
    Decision {
        sender: ProcessId(0),
        send_ts: SyncTime(1_000),
        view,
        oal,
        alive: AckBits(0b11111),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for window in [0usize, 16, 64] {
        let msg = Msg::Decision(loaded_decision(window));
        let bytes = msg.to_bytes();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("encode_decision_w{window}"), |b| {
            b.iter(|| std::hint::black_box(&msg).to_bytes())
        });
        g.bench_function(format!("decode_decision_w{window}"), |b| {
            b.iter(|| Msg::from_bytes(std::hint::black_box(&bytes)).unwrap())
        });
    }
    let prop = Msg::Proposal(Proposal {
        sender: ProcessId(1),
        incarnation: tw_proto::Incarnation(0),
        seq: 1,
        send_ts: SyncTime(5),
        hdo: Ordinal(3),
        semantics: Semantics::TOTAL_STRONG,
        payload: Bytes::from(vec![7u8; 256]),
    });
    let pbytes = prop.to_bytes();
    g.throughput(Throughput::Bytes(pbytes.len() as u64));
    g.bench_function("encode_proposal_256B", |b| {
        b.iter(|| std::hint::black_box(&prop).to_bytes())
    });
    g.bench_function("decode_proposal_256B", |b| {
        b.iter(|| Msg::from_bytes(std::hint::black_box(&pbytes)).unwrap())
    });
    g.finish();
}

fn bench_oal(c: &mut Criterion) {
    let mut g = c.benchmark_group("oal");
    let group = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
    g.bench_function("append_ack_prune_64", |b| {
        b.iter(|| {
            let mut oal = Oal::new();
            for i in 0..64u64 {
                let o = oal.append(Descriptor::update(
                    ProposalId::new(ProcessId((i % 5) as u16), i + 1),
                    Ordinal::ZERO,
                    Semantics::UNORDERED_WEAK,
                    SyncTime(i as i64),
                    ProcessId(0),
                ));
                for r in 0..5u16 {
                    oal.ack(o, ProcessId(r));
                }
            }
            oal.prune_stable(&group)
        })
    });
    let big = loaded_decision(64).oal;
    g.bench_function("adopt_latest_w64", |b| {
        b.iter_batched(
            || (Oal::new(), big.clone()),
            |(mut mine, theirs)| {
                mine.adopt_latest(&theirs).unwrap();
                mine
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// A synced member of a 5-group, ready to process decisions.
fn ready_member() -> (Member, Decision) {
    let cfg = Config::for_team(5, Duration::from_millis(10));
    let mut m = Member::new(ProcessId(1), cfg).unwrap();
    m.on_start(tw_proto::HwTime(0));
    m.force_clock_sync();
    let view = View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId));
    let d0 = Decision {
        sender: ProcessId(0),
        send_ts: SyncTime(1),
        view,
        oal: Oal::new(),
        alive: AckBits(0b11111),
    };
    m.on_message(tw_proto::HwTime(2), ProcessId(0), Msg::Decision(d0.clone()));
    (m, d0)
}

fn bench_member_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("member");
    g.bench_function("handle_decision", |b| {
        let (proto_member, d0) = ready_member();
        let mut ts = 10i64;
        b.iter_batched(
            || proto_member.clone(),
            |mut m| {
                ts += 1;
                let d = Decision {
                    send_ts: SyncTime(ts),
                    sender: ProcessId(2),
                    ..d0.clone()
                };
                m.on_message(tw_proto::HwTime(ts), ProcessId(2), Msg::Decision(d))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("handle_proposal_weak", |b| {
        let (proto_member, _) = ready_member();
        b.iter_batched(
            || proto_member.clone(),
            |mut m| {
                let p = Proposal {
                    sender: ProcessId(2),
                    incarnation: tw_proto::Incarnation(0),
                    seq: 1,
                    send_ts: SyncTime(50),
                    hdo: Ordinal::ZERO,
                    semantics: Semantics::UNORDERED_WEAK,
                    payload: Bytes::from_static(b"x"),
                };
                m.on_message(tw_proto::HwTime(51), ProcessId(2), Msg::Proposal(p))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("tick_idle", |b| {
        let (proto_member, _) = ready_member();
        b.iter_batched(
            || proto_member.clone(),
            |mut m| m.on_tick(tw_proto::HwTime(100)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("five_member_group_one_second", |b| {
        b.iter(|| {
            let params = TeamParams::new(5);
            let mut w = team_world(&params);
            run_until_pred(&mut w, SimTime::from_secs(30), |w| all_in_group(w, 5)).unwrap();
            w.run_for(Duration::from_secs(1));
            w.stats().total_sends()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_oal,
    bench_member_dispatch,
    bench_simulation
);
criterion_main!(benches);
