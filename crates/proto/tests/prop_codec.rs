//! Property tests for the wire codec: arbitrary messages round-trip, and
//! arbitrary byte soup never panics the decoder.

use bytes::Bytes;
use proptest::prelude::*;
use tw_proto::*;

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u16..64).prop_map(ProcessId)
}

fn arb_sem() -> impl Strategy<Value = Semantics> {
    (
        prop_oneof![
            Just(tw_proto::Ordering::Unordered),
            Just(tw_proto::Ordering::Total),
            Just(tw_proto::Ordering::Time)
        ],
        prop_oneof![
            Just(Atomicity::Weak),
            Just(Atomicity::Strong),
            Just(Atomicity::Strict)
        ],
    )
        .prop_map(|(o, a)| Semantics::new(o, a))
}

fn arb_view() -> impl Strategy<Value = View> {
    (
        any::<u64>(),
        arb_pid(),
        proptest::collection::btree_set(arb_pid(), 0..8),
    )
        .prop_map(|(seq, creator, members)| View::new(ViewId::new(seq, creator), members))
}

fn arb_desc() -> impl Strategy<Value = Descriptor> {
    (
        prop_oneof![
            (
                arb_pid(),
                any::<u64>(),
                any::<u64>(),
                arb_sem(),
                any::<i64>()
            )
                .prop_map(|(p, seq, hdo, sem, ts)| DescriptorBody::Update {
                    id: ProposalId::new(p, seq),
                    hdo: Ordinal(hdo),
                    semantics: sem,
                    send_ts: SyncTime(ts),
                }),
            arb_view().prop_map(DescriptorBody::Membership),
        ],
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(body, acks, undeliverable)| Descriptor {
            body,
            acks: AckBits(acks),
            undeliverable,
        })
}

fn arb_oal() -> impl Strategy<Value = Oal> {
    proptest::collection::vec(arb_desc(), 0..6).prop_map(|descs| {
        let mut oal = Oal::new();
        for d in descs {
            oal.append(d);
        }
        oal
    })
}

fn arb_update_desc() -> impl Strategy<Value = UpdateDesc> {
    (
        arb_pid(),
        any::<u64>(),
        any::<u64>(),
        arb_sem(),
        any::<i64>(),
    )
        .prop_map(|(p, seq, hdo, sem, ts)| UpdateDesc {
            id: ProposalId::new(p, seq),
            hdo: Ordinal(hdo),
            semantics: sem,
            send_ts: SyncTime(ts),
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (
            arb_pid(),
            any::<u32>(),
            any::<u64>(),
            any::<i64>(),
            any::<u64>(),
            arb_sem(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(p, inc, seq, ts, hdo, sem, payload)| {
                Msg::Proposal(Proposal {
                    sender: p,
                    incarnation: Incarnation(inc),
                    seq,
                    send_ts: SyncTime(ts),
                    hdo: Ordinal(hdo),
                    semantics: sem,
                    payload: Bytes::from(payload),
                })
            }),
        (arb_pid(), any::<i64>(), arb_view(), arb_oal(), any::<u64>()).prop_map(
            |(p, ts, view, oal, alive)| {
                Msg::Decision(Decision {
                    sender: p,
                    send_ts: SyncTime(ts),
                    view,
                    oal,
                    alive: AckBits(alive),
                })
            }
        ),
        (
            arb_pid(),
            any::<i64>(),
            arb_pid(),
            any::<u64>(),
            arb_pid(),
            arb_oal(),
            proptest::collection::vec(arb_update_desc(), 0..4),
            any::<u64>()
        )
            .prop_map(|(p, ts, suspect, seq, creator, oal, dpd, alive)| {
                Msg::NoDecision(NoDecision {
                    sender: p,
                    send_ts: SyncTime(ts),
                    suspect,
                    view_id: ViewId::new(seq, creator),
                    oal_view: oal,
                    dpd,
                    alive: AckBits(alive),
                })
            }),
        (
            arb_pid(),
            any::<u32>(),
            any::<i64>(),
            proptest::collection::vec((arb_pid(), any::<u32>().prop_map(Incarnation)), 0..8),
            any::<u64>()
        )
            .prop_map(|(p, inc, ts, join_list, alive)| {
                Msg::Join(Join {
                    sender: p,
                    incarnation: Incarnation(inc),
                    send_ts: SyncTime(ts),
                    join_list,
                    alive: AckBits(alive),
                })
            }),
        (
            arb_pid(),
            any::<i64>(),
            proptest::collection::vec(arb_pid(), 0..8),
            any::<i64>(),
            (any::<u64>(), arb_pid()),
            arb_oal(),
            proptest::collection::vec(arb_update_desc(), 0..4),
            any::<u64>()
        )
            .prop_map(|(p, ts, list, dts, (vseq, vc), oal, dpd, alive)| {
                Msg::Reconfig(Reconfig {
                    sender: p,
                    send_ts: SyncTime(ts),
                    reconfig_list: list,
                    last_decision_ts: SyncTime(dts),
                    last_view: ViewId::new(vseq, vc),
                    oal_view: oal,
                    dpd,
                    alive: AckBits(alive),
                })
            }),
        (arb_pid(), any::<u64>(), any::<i64>()).prop_map(|(p, rid, hw)| {
            Msg::ClockSync(ClockSyncMsg::Request {
                sender: p,
                rid,
                hw_send: HwTime(hw),
            })
        }),
        (
            arb_pid(),
            any::<u64>(),
            any::<i64>(),
            any::<i64>(),
            any::<bool>()
        )
            .prop_map(|(p, rid, hw, sync, synced)| {
                Msg::ClockSync(ClockSyncMsg::Reply {
                    sender: p,
                    rid,
                    hw_send_echo: HwTime(hw),
                    sync_at_reply: SyncTime(sync),
                    synced,
                })
            }),
        (
            arb_pid(),
            arb_pid(),
            (any::<u64>(), arb_pid()),
            proptest::collection::vec(any::<u8>(), 0..32),
            proptest::collection::vec((arb_pid(), any::<u64>()), 0..4)
        )
            .prop_map(|(p, to, (vseq, vc), state, fifo)| {
                Msg::StateTransfer(StateTransfer {
                    sender: p,
                    to,
                    view_id: ViewId::new(vseq, vc),
                    app_state: Bytes::from(state),
                    proposals: vec![],
                    fifo: fifo.clone(),
                    ordinals: fifo
                        .iter()
                        .map(|(pid, s)| (ProposalId::new(*pid, *s), Ordinal(*s)))
                        .collect(),
                })
            }),
        (
            arb_pid(),
            any::<i64>(),
            proptest::collection::vec(
                (arb_pid(), any::<u64>()).prop_map(|(p, s)| ProposalId::new(p, s)),
                0..8
            )
        )
            .prop_map(|(p, ts, missing)| {
                Msg::Nack(Nack {
                    sender: p,
                    send_ts: SyncTime(ts),
                    missing,
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_message_round_trips(msg in arb_msg()) {
        let bytes = msg.to_bytes();
        let back = Msg::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; panicking or looping is not.
        let _ = Msg::from_bytes(&bytes);
    }

    #[test]
    fn truncation_always_detected(msg in arb_msg(), cut_frac in 0.0f64..1.0) {
        let bytes = msg.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Msg::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn encoding_is_deterministic(msg in arb_msg()) {
        prop_assert_eq!(msg.to_bytes(), msg.to_bytes());
    }
}
