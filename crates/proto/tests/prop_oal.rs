//! Property tests for the oal algebra: density, prefix agreement under
//! merging, stability monotonicity, pruning correctness.

use proptest::prelude::*;
use tw_proto::*;

#[derive(Debug, Clone)]
enum Op {
    Append { proposer: u16, seq: u64 },
    Ack { idx: usize, rank: u16 },
    Mark { idx: usize },
    Prune,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..5, 1u64..50).prop_map(|(proposer, seq)| Op::Append { proposer, seq }),
        (0usize..20, 0u16..5).prop_map(|(idx, rank)| Op::Ack { idx, rank }),
        (0usize..20).prop_map(|idx| Op::Mark { idx }),
        Just(Op::Prune),
    ]
}

fn group() -> View {
    View::new(ViewId::new(1, ProcessId(0)), (0..5).map(ProcessId))
}

fn apply(oal: &mut Oal, op: &Op, g: &View) {
    match op {
        Op::Append { proposer, seq } => {
            oal.append(Descriptor::update(
                ProposalId::new(ProcessId(*proposer), *seq),
                Ordinal::ZERO,
                Semantics::UNORDERED_WEAK,
                SyncTime::ZERO,
                ProcessId(*proposer),
            ));
        }
        Op::Ack { idx, rank } => {
            let o = Ordinal(oal.base().0 + *idx as u64);
            oal.ack(o, ProcessId(*rank));
        }
        Op::Mark { idx } => {
            let o = Ordinal(oal.base().0 + *idx as u64);
            oal.mark_undeliverable(o);
        }
        Op::Prune => {
            oal.prune_stable(g);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ordinals_stay_dense(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let g = group();
        let mut oal = Oal::new();
        for op in &ops {
            apply(&mut oal, op, &g);
            // Window arithmetic is consistent.
            prop_assert_eq!(oal.base().0 + oal.len() as u64, oal.next_ordinal().0);
            // Every window position is addressable, nothing else is.
            let mut o = oal.base();
            while o < oal.next_ordinal() {
                prop_assert!(oal.get(o).is_some());
                o = o.next();
            }
            prop_assert!(oal.get(oal.next_ordinal()).is_none());
            if oal.base().0 > 1 {
                prop_assert!(oal.get(Ordinal(oal.base().0 - 1)).is_none());
            }
        }
    }

    #[test]
    fn snapshot_always_agrees_with_evolved_copy(
        ops in proptest::collection::vec(arb_op(), 0..40),
        at in 0usize..40,
    ) {
        let g = group();
        let mut oal = Oal::new();
        for op in ops.iter().take(at) {
            apply(&mut oal, op, &g);
        }
        let snapshot = oal.clone();
        for op in ops.iter().skip(at) {
            apply(&mut oal, op, &g);
        }
        // A past snapshot is always a prefix-compatible view.
        prop_assert!(snapshot.agrees_with(&oal), "snapshot diverged");
        // Merging its (older) acks back in never fails.
        let mut evolved = oal.clone();
        prop_assert!(evolved.merge_acks(&snapshot).is_ok());
    }

    #[test]
    fn adopt_latest_is_upper_bound(
        ops in proptest::collection::vec(arb_op(), 0..30),
        extra in proptest::collection::vec(arb_op(), 0..10),
    ) {
        let g = group();
        let mut a = Oal::new();
        for op in &ops {
            apply(&mut a, op, &g);
        }
        let mut b = a.clone();
        for op in &extra {
            apply(&mut b, op, &g);
        }
        let mut merged = a.clone();
        prop_assert!(merged.adopt_latest(&b).is_ok());
        prop_assert!(merged.next_ordinal() >= a.next_ordinal());
        prop_assert!(merged.next_ordinal() >= b.next_ordinal());
        // Ack bits are unions on the overlap.
        for (o, d) in a.iter() {
            if let Some(m) = merged.get(o) {
                prop_assert_eq!(m.acks.0 & d.acks.0, d.acks.0, "lost acks at {}", o);
            }
        }
    }

    #[test]
    fn pruning_only_removes_stable_prefix(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let g = group();
        let mut oal = Oal::new();
        for op in &ops {
            apply(&mut oal, op, &g);
        }
        let base_before = oal.base();
        let pruned = oal.prune_stable(&g);
        for (i, (o, d)) in pruned.iter().enumerate() {
            prop_assert_eq!(o.0, base_before.0 + i as u64, "pruned out of order");
            prop_assert!(
                d.undeliverable || d.acks.all_of(&g),
                "pruned unstable descriptor"
            );
        }
        // Head of the remainder is not stable (or the window is empty).
        if let Some(head) = oal.get(oal.base()) {
            prop_assert!(!(head.undeliverable || head.acks.all_of(&g)));
        }
    }

    #[test]
    fn stability_frontier_is_monotone_under_acks(
        n_append in 1usize..10,
        acks in proptest::collection::vec((0usize..10, 0u16..5), 0..40),
    ) {
        let g = group();
        let mut oal = Oal::new();
        for i in 0..n_append {
            oal.append(Descriptor::update(
                ProposalId::new(ProcessId(0), i as u64 + 1),
                Ordinal::ZERO,
                Semantics::UNORDERED_WEAK,
                SyncTime::ZERO,
                ProcessId(0),
            ));
        }
        let mut prev = oal.stability_frontier(&g);
        for (idx, rank) in acks {
            let o = Ordinal(oal.base().0 + idx as u64);
            oal.ack(o, ProcessId(rank));
            let cur = oal.stability_frontier(&g);
            prop_assert!(cur >= prev, "frontier moved backwards");
            prev = cur;
        }
    }
}
