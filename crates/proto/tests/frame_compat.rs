//! v1 ↔ v2 codec compatibility — every message kind must survive both
//! codecs and come back identical, the v2 framing must reject foreign
//! version bytes outright (no silent v1 fallback), and a seeded
//! workload pins the two codecs against each other at scale.
//!
//! Deliberately proptest-free so the offline shadow harness runs it;
//! the randomized sweep uses a hand-rolled SplitMix64 with a fixed
//! seed, making failures reproducible by seed alone.

use bytes::Bytes;
use tw_proto::codec::{Decode, Encode, WireError};
use tw_proto::frame::{self, FrameBuilder, VERSION_BYTE};
use tw_proto::{
    AckBits, ClockSyncMsg, Decision, Descriptor, HwTime, Incarnation, Join, Msg, Nack,
    NoDecision, Oal, Ordinal, ProcessId, Proposal, ProposalId, Reconfig, Semantics, StateTransfer,
    SyncTime, View, ViewId,
};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn view(rng: &mut SplitMix64) -> View {
    let n = 2 + rng.below(6) as u16;
    View::new(
        ViewId::new(rng.below(100), ProcessId(rng.below(n as u64) as u16)),
        (0..n).map(ProcessId),
    )
}

fn alive(rng: &mut SplitMix64) -> AckBits {
    AckBits(rng.next() & 0xFF)
}

fn proposal(rng: &mut SplitMix64) -> Proposal {
    Proposal {
        sender: ProcessId(rng.below(8) as u16),
        incarnation: Incarnation(rng.below(4) as u32),
        seq: 1 + rng.below(1 << 20),
        send_ts: SyncTime(rng.below(1 << 40) as i64 - (1 << 39)),
        hdo: Ordinal(rng.below(1 << 12)),
        semantics: match rng.below(3) {
            0 => Semantics::TOTAL_STRONG,
            1 => Semantics::TIME_STRICT,
            _ => Semantics::UNORDERED_WEAK,
        },
        payload: Bytes::from(vec![rng.next() as u8; rng.below(64) as usize]),
    }
}

fn oal(rng: &mut SplitMix64) -> Oal {
    let mut o = Oal::new();
    for _ in 0..rng.below(12) {
        let p = proposal(rng);
        let ord = if rng.below(5) == 0 {
            o.append(Descriptor::membership(view(rng), p.sender))
        } else {
            o.append(Descriptor::update(
                p.id(),
                p.hdo,
                p.semantics,
                p.send_ts,
                p.sender,
            ))
        };
        for rank in 0..8 {
            if rng.below(2) == 0 {
                o.ack(ord, ProcessId(rank));
            }
        }
    }
    o
}

/// One pseudorandom message of each kind per call, driven by `rng`.
fn sample(rng: &mut SplitMix64, kind: usize) -> Msg {
    match kind {
        0 => Msg::Proposal(proposal(rng)),
        1 => Msg::Decision(Decision {
            sender: ProcessId(rng.below(8) as u16),
            send_ts: SyncTime(rng.below(1 << 40) as i64),
            view: view(rng),
            oal: oal(rng),
            alive: alive(rng),
        }),
        2 => Msg::NoDecision(NoDecision {
            sender: ProcessId(rng.below(8) as u16),
            send_ts: SyncTime(rng.below(1 << 40) as i64),
            suspect: ProcessId(rng.below(8) as u16),
            view_id: ViewId::new(rng.below(100), ProcessId(0)),
            oal_view: oal(rng),
            dpd: (0..rng.below(4)).map(|_| proposal(rng).desc()).collect(),
            alive: alive(rng),
        }),
        3 => Msg::Join(Join {
            sender: ProcessId(rng.below(8) as u16),
            incarnation: Incarnation(rng.below(8) as u32),
            send_ts: SyncTime(rng.below(1 << 40) as i64),
            join_list: (0..rng.below(5))
                .map(|_| (ProcessId(rng.below(8) as u16), Incarnation(rng.below(8) as u32)))
                .collect(),
            alive: alive(rng),
        }),
        4 => Msg::Reconfig(Reconfig {
            sender: ProcessId(rng.below(8) as u16),
            send_ts: SyncTime(rng.below(1 << 40) as i64),
            reconfig_list: (0..rng.below(5)).map(|_| ProcessId(rng.below(8) as u16)).collect(),
            last_decision_ts: SyncTime(rng.below(1 << 40) as i64),
            last_view: ViewId::new(rng.below(100), ProcessId(0)),
            oal_view: oal(rng),
            dpd: (0..rng.below(3)).map(|_| proposal(rng).desc()).collect(),
            alive: alive(rng),
        }),
        5 => {
            if rng.below(2) == 0 {
                Msg::ClockSync(ClockSyncMsg::Request {
                    sender: ProcessId(rng.below(8) as u16),
                    rid: rng.next(),
                    hw_send: HwTime(rng.next() as i64),
                })
            } else {
                Msg::ClockSync(ClockSyncMsg::Reply {
                    sender: ProcessId(rng.below(8) as u16),
                    rid: rng.next(),
                    hw_send_echo: HwTime(rng.next() as i64),
                    sync_at_reply: SyncTime(rng.next() as i64),
                    synced: rng.below(2) == 0,
                })
            }
        }
        6 => Msg::StateTransfer(StateTransfer {
            sender: ProcessId(rng.below(8) as u16),
            to: ProcessId(rng.below(8) as u16),
            view_id: ViewId::new(rng.below(100), ProcessId(0)),
            app_state: Bytes::from(vec![rng.next() as u8; rng.below(128) as usize]),
            proposals: (0..rng.below(4)).map(|_| proposal(rng)).collect(),
            fifo: (0..rng.below(4))
                .map(|_| (ProcessId(rng.below(8) as u16), rng.below(1 << 16)))
                .collect(),
            ordinals: (0..rng.below(4))
                .map(|_| {
                    (
                        ProposalId::new(ProcessId(rng.below(8) as u16), rng.below(1 << 16)),
                        Ordinal(rng.below(1 << 12)),
                    )
                })
                .collect(),
        }),
        _ => Msg::Nack(Nack {
            sender: ProcessId(rng.below(8) as u16),
            send_ts: SyncTime(rng.below(1 << 40) as i64),
            missing: (0..rng.below(6))
                .map(|_| ProposalId::new(ProcessId(rng.below(8) as u16), rng.below(1 << 16)))
                .collect(),
        }),
    }
}

const KINDS: usize = 8;

#[test]
fn every_kind_roundtrips_through_both_codecs_identically() {
    let mut rng = SplitMix64(0xC0FFEE);
    for kind in 0..KINDS {
        for _ in 0..50 {
            let msg = sample(&mut rng, kind);
            // v1: flat byte codec.
            let v1 = msg.to_bytes();
            let from_v1 = Msg::from_bytes(&v1).expect("v1 decode");
            assert_eq!(from_v1, msg, "v1 roundtrip, kind {kind}");
            // v2: framed datagram.
            let v2 = frame::encode_single(&msg);
            let from_v2 = frame::decode_datagram(&v2).expect("v2 decode");
            assert_eq!(from_v2.len(), 1);
            assert_eq!(from_v2[0], msg, "v2 roundtrip, kind {kind}");
            // Cross-check: the two decode paths agree on the message.
            assert_eq!(from_v1, from_v2[0]);
        }
    }
}

#[test]
fn v2_batches_preserve_order_across_mixed_kinds() {
    let mut rng = SplitMix64(0xBEEF);
    let mut builder = FrameBuilder::new();
    for _ in 0..20 {
        let batch: Vec<Msg> = (0..1 + rng.below(12) as usize)
            .map(|_| {
                let kind = rng.below(KINDS as u64) as usize;
                sample(&mut rng, kind)
            })
            .collect();
        builder.reset();
        for m in &batch {
            builder.push_msg(m);
        }
        assert_eq!(builder.frames(), batch.len());
        let decoded = frame::decode_datagram(builder.bytes()).expect("batch decode");
        assert_eq!(decoded, batch);
    }
}

#[test]
fn v1_datagrams_are_rejected_by_v2_with_bad_version() {
    let mut rng = SplitMix64(0x51DE);
    for kind in 0..KINDS {
        let msg = sample(&mut rng, kind);
        let v1 = msg.to_bytes();
        // v1 kind tags are small integers; they can never equal the v2
        // version byte, so a legacy datagram is rejected up front
        // instead of being half-decoded as framing.
        assert_ne!(v1[0], VERSION_BYTE);
        match frame::decode_datagram(&v1) {
            Err(WireError::BadVersion { found }) => assert_eq!(found, v1[0]),
            other => panic!("kind {kind}: expected BadVersion, got {other:?}"),
        }
    }
}

#[test]
fn future_version_bytes_are_rejected_not_guessed() {
    // A hypothetical v3 (0xD3) and arbitrary junk must both surface as
    // BadVersion — the decoder guesses nothing.
    for b in [0xD0u8, 0xD1, 0xD3, 0xD7, 0x00, 0xFF] {
        let dgram = [b, 0x01, 0x00];
        match frame::decode_datagram(&dgram) {
            Err(WireError::BadVersion { found }) => assert_eq!(found, b),
            other => panic!("version {b:#x}: expected BadVersion, got {other:?}"),
        }
    }
}

#[test]
fn seeded_workload_sizes_favor_v2() {
    // Not a perf claim (the probes own that) — a structural one: over a
    // large mixed workload the varint v2 framing never costs more than
    // a handful of bytes over v1, and wins overall.
    let mut rng = SplitMix64(7);
    let mut v1_total = 0usize;
    let mut v2_total = 0usize;
    for i in 0..400 {
        let msg = sample(&mut rng, i % KINDS);
        v1_total += msg.to_bytes().len();
        v2_total += frame::encode_single(&msg).len();
    }
    assert!(
        v2_total < v1_total,
        "v2 framed total {v2_total} should undercut v1 total {v1_total}"
    );
}
