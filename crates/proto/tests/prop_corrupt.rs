//! Corruption-focused codec properties: a datagram with flipped bits or
//! missing bytes — what a faulty network hands the receive path — must
//! never panic the decoder, and must never silently decode as a
//! *different message kind* unless the corruption hit the kind tag
//! itself (byte 0). The chaos harness's `FaultTransport` relies on
//! exactly this: it models corruption as flip-then-drop (a UDP checksum
//! failure), and these properties guarantee the decode attempt it makes
//! on the flipped bytes is safe.

use bytes::Bytes;
use proptest::prelude::*;
use tw_proto::*;

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u16..64).prop_map(ProcessId)
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (
            arb_pid(),
            any::<u32>(),
            any::<u64>(),
            any::<i64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(p, inc, seq, ts, hdo, payload)| {
                Msg::Proposal(Proposal {
                    sender: p,
                    incarnation: Incarnation(inc),
                    seq,
                    send_ts: SyncTime(ts),
                    hdo: Ordinal(hdo),
                    semantics: Semantics::TOTAL_STRONG,
                    payload: Bytes::from(payload),
                })
            }),
        (
            arb_pid(),
            any::<u32>(),
            any::<i64>(),
            proptest::collection::vec((arb_pid(), any::<u32>().prop_map(Incarnation)), 0..8),
            any::<u64>()
        )
            .prop_map(|(p, inc, ts, join_list, alive)| {
                Msg::Join(Join {
                    sender: p,
                    incarnation: Incarnation(inc),
                    send_ts: SyncTime(ts),
                    join_list,
                    alive: AckBits(alive),
                })
            }),
        (arb_pid(), any::<u64>(), any::<i64>()).prop_map(|(p, rid, hw)| {
            Msg::ClockSync(ClockSyncMsg::Request {
                sender: p,
                rid,
                hw_send: HwTime(hw),
            })
        }),
        (
            arb_pid(),
            any::<u64>(),
            any::<i64>(),
            any::<i64>(),
            any::<bool>()
        )
            .prop_map(|(p, rid, hw, sync, synced)| {
                Msg::ClockSync(ClockSyncMsg::Reply {
                    sender: p,
                    rid,
                    hw_send_echo: HwTime(hw),
                    sync_at_reply: SyncTime(sync),
                    synced,
                })
            }),
        (
            arb_pid(),
            any::<i64>(),
            proptest::collection::vec(
                (arb_pid(), any::<u64>()).prop_map(|(p, s)| ProposalId::new(p, s)),
                0..8
            )
        )
            .prop_map(|(p, ts, missing)| {
                Msg::Nack(Nack {
                    sender: p,
                    send_ts: SyncTime(ts),
                    missing,
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bit_flip_never_panics_and_never_changes_kind(
        msg in arb_msg(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = msg.to_bytes();
        let mut flipped = bytes.to_vec();
        let idx = (byte_pick % flipped.len() as u64) as usize;
        flipped[idx] ^= 1 << bit;
        match Msg::from_bytes(&flipped) {
            // The kind tag is byte 0: corruption anywhere else may
            // yield a different *message*, never a different *kind*.
            Ok(decoded) if idx != 0 => prop_assert_eq!(decoded.kind(), msg.kind()),
            Ok(_) | Err(_) => {}
        }
    }

    // ----- v2 framed datagrams: corruption across frame boundaries -----

    #[test]
    fn v2_bit_flip_never_panics(
        msgs in proptest::collection::vec(arb_msg(), 1..4),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut b = tw_proto::frame::FrameBuilder::new();
        for m in &msgs {
            b.push_msg(m);
        }
        let mut flipped = b.bytes().to_vec();
        let idx = (byte_pick % flipped.len() as u64) as usize;
        flipped[idx] ^= 1 << bit;
        match tw_proto::frame::decode_datagram(&flipped) {
            // A flip that leaves the version byte intact must never be
            // reported as a version problem.
            Err(tw_proto::codec::WireError::BadVersion { .. }) => prop_assert_eq!(idx, 0),
            Ok(_) | Err(_) => {}
        }
    }

    #[test]
    fn v2_truncation_yields_error_or_frame_prefix(
        msgs in proptest::collection::vec(arb_msg(), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut b = tw_proto::frame::FrameBuilder::new();
        for m in &msgs {
            b.push_msg(m);
        }
        let dgram = b.bytes().to_vec();
        let cut = ((dgram.len() as f64) * cut_frac) as usize;
        // Frames are length-prefixed, so cutting a datagram anywhere
        // either fails cleanly (mid-frame: the prefix overruns the
        // buffer) or decodes exactly the whole frames before the cut.
        match tw_proto::frame::decode_datagram(&dgram[..cut]) {
            Ok(decoded) => {
                prop_assert!(decoded.len() <= msgs.len());
                for (d, m) in decoded.iter().zip(&msgs) {
                    prop_assert_eq!(d, m);
                }
            }
            Err(_) => {}
        }
    }

    #[test]
    fn v2_length_prefix_flip_never_panics(
        msgs in proptest::collection::vec(arb_msg(), 1..4),
        prefix_byte in 0usize..4,
        bit in 0u8..8,
    ) {
        let mut b = tw_proto::frame::FrameBuilder::new();
        for m in &msgs {
            b.push_msg(m);
        }
        let mut flipped = b.bytes().to_vec();
        // Byte 0 is the version; the first frame's padded 4-byte LEB128
        // length prefix sits at bytes 1..5. Attacking it directly
        // exercises the framing bounds checks, not the message codec.
        flipped[1 + prefix_byte] ^= 1 << bit;
        let _ = tw_proto::frame::decode_datagram(&flipped);
    }

    #[test]
    fn truncated_then_flipped_never_panics(
        msg in arb_msg(),
        cut_frac in 0.0f64..1.0,
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = msg.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut mangled = bytes[..cut.min(bytes.len())].to_vec();
        let mut idx = usize::MAX;
        if !mangled.is_empty() {
            idx = (byte_pick % mangled.len() as u64) as usize;
            mangled[idx] ^= 1 << bit;
        }
        // Decoding may fail or — when the flip re-synchronized an
        // internal length with the shorter frame — succeed; it must
        // never panic, and an intact tag byte pins the kind.
        match Msg::from_bytes(&mangled) {
            Ok(decoded) if idx != 0 => prop_assert_eq!(decoded.kind(), msg.kind()),
            Ok(_) | Err(_) => {}
        }
    }
}
