//! # tw-proto — wire-level types for the timewheel group communication service
//!
//! This crate defines the identifiers, timestamps, the ordering and
//! acknowledgement list (*oal*), group views and every message exchanged by
//! the timewheel protocols (atomic broadcast, membership, clock
//! synchronization), together with a compact hand-rolled binary codec.
//!
//! The types here are deliberately *dumb data*: all protocol logic lives in
//! the [`timewheel`] core crate. Keeping the wire types in a leaf crate lets
//! the simulator, the real-socket runtime and the test harnesses share one
//! vocabulary without depending on protocol internals.
//!
//! [`timewheel`]: ../timewheel/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod ids;
pub mod messages;
pub mod oal;
pub mod semantics;
pub mod time;
pub mod view;

/// Commonly used items.
pub mod prelude {
    pub use crate::codec::{Decode, Encode, WireError};
    pub use crate::frame::{FrameBuilder, FrameRef, WireCursor, WIRE_VERSION};
    pub use crate::ids::{Incarnation, Ordinal, ProcessId, ProposalId};
    pub use crate::messages::{
        ClockSyncMsg, Decision, Join, Msg, NoDecision, Proposal, Reconfig, StateTransfer,
    };
    pub use crate::oal::{AckBits, Descriptor, DescriptorBody, Oal};
    pub use crate::semantics::{Atomicity, Ordering as DeliveryOrdering, Semantics};
    pub use crate::time::{Duration, HwTime, SyncTime};
    pub use crate::view::{View, ViewId};
}

pub use prelude::*;

pub use crate::messages::{AliveList, MsgKind, Nack, UpdateDesc};
pub use crate::semantics::Ordering;
